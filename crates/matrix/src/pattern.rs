//! Vote-pattern deduplication: grouping label-matrix rows by signature.
//!
//! At deployment scale (Snorkel DryBell: huge unlabeled corpora, a
//! handful of LFs) the posterior of the generative model depends only on
//! a row's vote signature `(cols, votes)` — millions of rows collapse
//! onto a few thousand distinct patterns. A [`PatternIndex`] groups the
//! rows of a [`LabelMatrix`] by unique signature in a single hash-consed
//! pass, recording each pattern's **multiplicity**, so inference and the
//! EM/Newton sufficient statistics can run once per *pattern* (weighted
//! by multiplicity) instead of once per *row*.
//!
//! The index is **incrementally maintainable** alongside
//! [`MatrixDelta`](crate::MatrixDelta) edits:
//!
//! * [`PatternIndex::extend_to`] interns newly appended rows only;
//! * [`PatternIndex::refresh_column`] re-signs exactly the rows whose
//!   signature a column splice could have changed (rows that voted in
//!   the old column or vote in the new one);
//! * [`PatternIndex::resign_rows`] is the generic "these rows changed"
//!   primitive;
//! * structural edits that shift column indices (column removal) need a
//!   [`PatternIndex::rebuild`] — every surviving signature changes.
//!
//! Pattern numbering is first-occurrence order within the covered row
//! range, so a freshly built index is deterministic; incremental
//! maintenance may leave zero-count tombstones (compacted automatically)
//! and number late-appearing patterns differently, but the row →
//! signature mapping and the multiplicity of every signature always
//! match a fresh rebuild — [`PatternIndex::validate`] checks exactly
//! that invariant against the backing matrix.

use std::collections::HashMap;

use snorkel_arena::ScratchVec;

use crate::csr::{LabelMatrix, Vote};

/// Reusable scratch for [`PatternIndex::refresh_column_with`]: the
/// pattern-touches-column bitmap and the affected-row list that a
/// column re-sign needs. Owned by long-lived callers (the incremental
/// session holds one per refresh loop) so that re-signing after every
/// delta edit stops allocating once the buffers reach the high-water
/// mark of the workload.
#[derive(Debug, Default)]
pub struct ResignScratch {
    pat_has: ScratchVec<bool>,
    affected: ScratchVec<usize>,
}

impl ResignScratch {
    /// Empty scratch (no allocation until first use).
    pub fn new() -> Self {
        ResignScratch::default()
    }

    /// High-water footprint in bytes across both buffers.
    pub fn bytes(&self) -> usize {
        self.pat_has.bytes() + self.affected.bytes()
    }
}

/// Hash of one row signature (the hash-consing key; collisions are
/// resolved by full slice comparison, so the hash only needs to spread
/// well). An FxHash-style rotate-xor-multiply over the packed
/// `(col, vote)` words: index construction is hash-bound at the
/// million-row scale, and SipHash's per-call overhead tripled the build
/// cost for no benefit here (no untrusted-key DoS surface — the table
/// is process-local and rebuilt per matrix).
fn sig_hash(cols: &[u32], votes: &[Vote]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h = cols.len() as u64;
    for (&c, &v) in cols.iter().zip(votes) {
        let word = ((c as u64) << 8) | (v as u8 as u64);
        h = (h.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
    h
}

/// Owned copy of a [`PatternIndex`]'s persistent state — the stable
/// encoding surface for on-disk snapshots. The derived structures (the
/// signature-hash lookup table and the live-pattern count) are *not*
/// part of the encoding; [`PatternIndex::from_parts`] rebuilds them
/// deterministically, so a round trip reproduces an index that behaves
/// identically to the original.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternIndexParts {
    /// First matrix row the index covers.
    pub start: usize,
    /// Concatenated column indices of every interned pattern.
    pub sig_cols: Vec<u32>,
    /// Votes parallel to `sig_cols`.
    pub sig_votes: Vec<Vote>,
    /// Per-pattern `(offset, len)` into the arenas.
    pub pat_bounds: Vec<(usize, usize)>,
    /// Rows currently carrying each pattern (0 = tombstone).
    pub counts: Vec<usize>,
    /// Local row → pattern id.
    pub row_pattern: Vec<u32>,
}

/// Groups the rows of one [`LabelMatrix`] row range by unique vote
/// signature, with multiplicity counts. See the module docs.
#[derive(Clone, Debug)]
pub struct PatternIndex {
    /// First matrix row this index covers.
    start: usize,
    /// Signature arena: concatenated column indices of every interned
    /// pattern.
    sig_cols: Vec<u32>,
    /// Signature arena: votes, parallel to `sig_cols`.
    sig_votes: Vec<Vote>,
    /// Per-pattern `(offset, len)` into the arenas.
    pat_bounds: Vec<(usize, usize)>,
    /// Rows currently carrying each pattern (0 = tombstone).
    counts: Vec<usize>,
    /// Local row → pattern id.
    row_pattern: Vec<u32>,
    /// Signature hash → candidate pattern ids.
    lookup: HashMap<u64, Vec<u32>>,
    /// Number of patterns with a non-zero count.
    live: usize,
}

impl PatternIndex {
    /// Index every row of `lambda` in one pass.
    pub fn build(lambda: &LabelMatrix) -> Self {
        Self::build_range(lambda, 0, lambda.num_points())
    }

    /// Index rows `start..end` of `lambda` (a shard's slice).
    pub fn build_range(lambda: &LabelMatrix, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= lambda.num_points(),
            "range {start}..{end} out of bounds ({} points)",
            lambda.num_points()
        );
        let mut idx = PatternIndex {
            start,
            sig_cols: Vec::new(),
            sig_votes: Vec::new(),
            pat_bounds: Vec::new(),
            counts: Vec::new(),
            row_pattern: Vec::with_capacity(end - start),
            lookup: HashMap::new(),
            live: 0,
        };
        idx.extend_to(lambda, end);
        idx
    }

    /// First matrix row this index covers.
    pub fn start_row(&self) -> usize {
        self.start
    }

    /// The covered row range of the backing matrix.
    pub fn row_range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.row_pattern.len()
    }

    /// Number of rows covered.
    pub fn num_rows(&self) -> usize {
        self.row_pattern.len()
    }

    /// Number of distinct signatures currently present (tombstones
    /// excluded).
    pub fn num_patterns(&self) -> usize {
        self.live
    }

    /// Rows per distinct pattern — the factor row-wise work shrinks by
    /// when run per-pattern. 1.0 when every row is unique (dedup loses
    /// to its own bookkeeping there); `num_rows` when all rows agree.
    pub fn dedup_ratio(&self) -> f64 {
        if self.live == 0 {
            1.0
        } else {
            self.row_pattern.len() as f64 / self.live as f64
        }
    }

    /// Signature of pattern `p` as `(cols, votes)` slices.
    pub fn pattern(&self, p: usize) -> (&[u32], &[Vote]) {
        let (off, len) = self.pat_bounds[p];
        (
            &self.sig_cols[off..off + len],
            &self.sig_votes[off..off + len],
        )
    }

    /// Multiplicity of pattern `p` (0 for tombstones).
    pub fn count(&self, p: usize) -> usize {
        self.counts[p]
    }

    /// Pattern id of a (global) matrix row in the covered range.
    pub fn pattern_of_row(&self, row: usize) -> usize {
        self.row_pattern[row - self.start] as usize
    }

    /// Total pattern slots including tombstones — the valid id range for
    /// [`Self::pattern`] / [`Self::count`].
    pub fn num_slots(&self) -> usize {
        self.pat_bounds.len()
    }

    /// Iterate the live patterns in id order as
    /// `(pattern_id, cols, votes, multiplicity)`.
    pub fn live_patterns(&self) -> impl Iterator<Item = (usize, &[u32], &[Vote], usize)> + '_ {
        self.pat_bounds
            .iter()
            .zip(&self.counts)
            .enumerate()
            .filter(|(_, (_, &c))| c > 0)
            .map(move |(p, (&(off, len), &c))| {
                (
                    p,
                    &self.sig_cols[off..off + len],
                    &self.sig_votes[off..off + len],
                    c,
                )
            })
    }

    /// Intern a signature, returning its pattern id (count untouched).
    fn intern(&mut self, cols: &[u32], votes: &[Vote]) -> u32 {
        let h = sig_hash(cols, votes);
        if let Some(cands) = self.lookup.get(&h) {
            for &p in cands {
                if self.pattern(p as usize) == (cols, votes) {
                    return p;
                }
            }
        }
        let p = self.pat_bounds.len() as u32;
        let off = self.sig_cols.len();
        self.sig_cols.extend_from_slice(cols);
        self.sig_votes.extend_from_slice(votes);
        self.pat_bounds.push((off, cols.len()));
        self.counts.push(0);
        self.lookup.entry(h).or_default().push(p);
        p
    }

    fn add_to_pattern(&mut self, p: u32) {
        self.counts[p as usize] += 1;
        if self.counts[p as usize] == 1 {
            self.live += 1;
        }
    }

    /// Intern rows `covered_end..new_end` (a freshly appended row batch).
    /// The tail shard calls this after a
    /// [`MatrixDelta::AppendRows`](crate::MatrixDelta::AppendRows).
    pub fn extend_to(&mut self, lambda: &LabelMatrix, new_end: usize) {
        let covered_end = self.start + self.row_pattern.len();
        assert!(
            (self.start..=lambda.num_points()).contains(&new_end) && new_end >= covered_end,
            "extend_to({new_end}) out of bounds (covered {covered_end}, {} points)",
            lambda.num_points()
        );
        for r in covered_end..new_end {
            let (cols, votes) = lambda.row(r);
            let p = self.intern(cols, votes);
            self.add_to_pattern(p);
            self.row_pattern.push(p);
        }
    }

    /// Re-sign the given (global, in-range) rows against the current
    /// matrix contents: the generic "these rows changed" primitive.
    pub fn resign_rows(&mut self, lambda: &LabelMatrix, rows: &[usize]) {
        for &r in rows {
            let local = r - self.start;
            let old = self.row_pattern[local] as usize;
            self.counts[old] -= 1;
            if self.counts[old] == 0 {
                self.live -= 1;
            }
            let (cols, votes) = lambda.row(r);
            let p = self.intern(cols, votes);
            self.add_to_pattern(p);
            self.row_pattern[local] = p;
        }
        self.maybe_compact();
    }

    /// Update the index after column `col` of the backing matrix was
    /// replaced or appended: exactly the rows that voted in the old
    /// column (known from the stored signatures) or vote in the new one
    /// (read from the patched matrix) are re-signed; every other row's
    /// signature is untouched.
    ///
    /// Not valid after a column *removal* — deleting a column shifts
    /// every higher column index, changing signatures the edited column
    /// never appeared in; use [`Self::rebuild`] there.
    pub fn refresh_column(&mut self, lambda: &LabelMatrix, col: usize) {
        self.refresh_column_with(lambda, col, &mut ResignScratch::new());
    }

    /// [`Self::refresh_column`] with caller-owned scratch: the bitmap
    /// and affected-row list live in `scratch` and are reset (not
    /// freed) here, so a warm caller re-signs without allocating for
    /// the selection pass. Interning a *new* pattern still grows the
    /// signature arenas — that is index state, not scratch.
    pub fn refresh_column_with(
        &mut self,
        lambda: &LabelMatrix,
        col: usize,
        scratch: &mut ResignScratch,
    ) {
        let jc = col as u32;
        scratch.pat_has.reset();
        scratch.pat_has.extend(
            (0..self.pat_bounds.len()).map(|p| self.pattern(p).0.binary_search(&jc).is_ok()),
        );
        scratch.affected.reset();
        for (local, &p) in self.row_pattern.iter().enumerate() {
            let r = self.start + local;
            if scratch.pat_has[p as usize] || lambda.row(r).0.binary_search(&jc).is_ok() {
                scratch.affected.push(r);
            }
        }
        self.resign_rows(lambda, &scratch.affected);
    }

    /// Rebuild from scratch over the same row range, extended/truncated
    /// to the matrix's current row count if this was the tail range.
    pub fn rebuild(&mut self, lambda: &LabelMatrix, end: usize) {
        *self = PatternIndex::build_range(lambda, self.start, end);
    }

    /// Drop tombstoned patterns once they dominate the slot table,
    /// renumbering the survivors in id order.
    fn maybe_compact(&mut self) {
        if self.pat_bounds.len() <= 2 * self.live + 16 {
            return;
        }
        let mut remap = vec![u32::MAX; self.pat_bounds.len()];
        let mut sig_cols = Vec::with_capacity(self.sig_cols.len());
        let mut sig_votes = Vec::with_capacity(self.sig_votes.len());
        let mut pat_bounds = Vec::with_capacity(self.live);
        let mut counts = Vec::with_capacity(self.live);
        let mut lookup: HashMap<u64, Vec<u32>> = HashMap::new();
        for (p, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let (cols, votes) = self.pattern(p);
            let new_id = pat_bounds.len() as u32;
            remap[p] = new_id;
            let off = sig_cols.len();
            sig_cols.extend_from_slice(cols);
            sig_votes.extend_from_slice(votes);
            lookup
                .entry(sig_hash(cols, votes))
                .or_default()
                .push(new_id);
            pat_bounds.push((off, cols.len()));
            counts.push(count);
        }
        for p in self.row_pattern.iter_mut() {
            *p = remap[*p as usize];
        }
        self.sig_cols = sig_cols;
        self.sig_votes = sig_votes;
        self.pat_bounds = pat_bounds;
        self.counts = counts;
        self.lookup = lookup;
    }

    /// Export the persistent state (see [`PatternIndexParts`]).
    pub fn to_parts(&self) -> PatternIndexParts {
        PatternIndexParts {
            start: self.start,
            sig_cols: self.sig_cols.clone(),
            sig_votes: self.sig_votes.clone(),
            pat_bounds: self.pat_bounds.clone(),
            counts: self.counts.clone(),
            row_pattern: self.row_pattern.clone(),
        }
    }

    /// Rebuild an index from exported parts, reconstructing the lookup
    /// table (in pattern-id order, matching a freshly built index's
    /// bucket ordering) and the live count. Structural invariants are
    /// validated here; consistency with a backing matrix is the caller's
    /// check ([`Self::validate`]).
    pub fn from_parts(parts: PatternIndexParts) -> Result<PatternIndex, String> {
        let PatternIndexParts {
            start,
            sig_cols,
            sig_votes,
            pat_bounds,
            counts,
            row_pattern,
        } = parts;
        if sig_cols.len() != sig_votes.len() {
            return Err(format!(
                "signature arenas differ in length ({} cols, {} votes)",
                sig_cols.len(),
                sig_votes.len()
            ));
        }
        if counts.len() != pat_bounds.len() {
            return Err(format!(
                "{} counts for {} patterns",
                counts.len(),
                pat_bounds.len()
            ));
        }
        for (p, &(off, len)) in pat_bounds.iter().enumerate() {
            let end = off.checked_add(len).filter(|&e| e <= sig_cols.len());
            if end.is_none() {
                return Err(format!("pattern {p}: bounds {off}+{len} exceed arena"));
            }
            if sig_cols[off..off + len].windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("pattern {p}: columns not strictly increasing"));
            }
        }
        let mut hist = vec![0usize; pat_bounds.len()];
        for (local, &p) in row_pattern.iter().enumerate() {
            if (p as usize) >= pat_bounds.len() {
                return Err(format!(
                    "row {}: pattern id {p} out of range",
                    start + local
                ));
            }
            hist[p as usize] += 1;
        }
        if hist != counts {
            return Err("multiplicity counts disagree with the row histogram".into());
        }
        let live = counts.iter().filter(|&&c| c > 0).count();
        let mut idx = PatternIndex {
            start,
            sig_cols,
            sig_votes,
            pat_bounds,
            counts,
            row_pattern,
            lookup: HashMap::new(),
            live,
        };
        for p in 0..idx.pat_bounds.len() {
            let (cols, votes) = idx.pattern(p);
            let h = sig_hash(cols, votes);
            idx.lookup.entry(h).or_default().push(p as u32);
        }
        Ok(idx)
    }

    /// Check every invariant against the backing matrix: each covered
    /// row's stored signature equals its matrix row, multiplicities
    /// equal the actual row→pattern histogram, counts sum to the row
    /// count, and `num_patterns` counts exactly the non-tombstones.
    /// Returns a description of the first violation.
    pub fn validate(&self, lambda: &LabelMatrix) -> Result<(), String> {
        if self.start + self.row_pattern.len() > lambda.num_points() {
            return Err(format!(
                "index covers {}..{} but matrix has {} points",
                self.start,
                self.start + self.row_pattern.len(),
                lambda.num_points()
            ));
        }
        let mut hist = vec![0usize; self.pat_bounds.len()];
        for (local, &p) in self.row_pattern.iter().enumerate() {
            let r = self.start + local;
            if self.pattern(p as usize) != lambda.row(r) {
                return Err(format!("row {r}: stored signature != matrix row"));
            }
            hist[p as usize] += 1;
        }
        if hist != self.counts {
            return Err("multiplicity counts drifted from the row histogram".into());
        }
        let live = self.counts.iter().filter(|&&c| c > 0).count();
        if live != self.live {
            return Err(format!("live count {} != actual {live}", self.live));
        }
        // No duplicate live signatures (hash-consing must have merged).
        let mut seen = HashMap::new();
        for (p, cols, votes, _) in self.live_patterns() {
            if let Some(prev) = seen.insert((cols.to_vec(), votes.to_vec()), p) {
                return Err(format!("patterns {prev} and {p} share a signature"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::LabelMatrixBuilder;
    use crate::MatrixDelta;

    fn sample() -> LabelMatrix {
        // Rows: [1,-1,_], [_,_,_], [1,-1,_], [_,1,_], [1,-1,_], [_,_,_]
        let mut b = LabelMatrixBuilder::new(6, 3);
        for i in [0, 2, 4] {
            b.set(i, 0, 1);
            b.set(i, 1, -1);
        }
        b.set(3, 1, 1);
        b.build()
    }

    #[test]
    fn build_groups_identical_rows() {
        let lambda = sample();
        let idx = PatternIndex::build(&lambda);
        idx.validate(&lambda).unwrap();
        assert_eq!(idx.num_rows(), 6);
        assert_eq!(idx.num_patterns(), 3); // {1,-1}, {}, {·,1}
        assert_eq!(idx.count(idx.pattern_of_row(0)), 3);
        assert_eq!(idx.count(idx.pattern_of_row(1)), 2);
        assert_eq!(idx.count(idx.pattern_of_row(3)), 1);
        assert!((idx.dedup_ratio() - 2.0).abs() < 1e-12);
        // First-occurrence numbering.
        assert_eq!(idx.pattern_of_row(0), 0);
        assert_eq!(idx.pattern_of_row(1), 1);
        assert_eq!(idx.pattern_of_row(3), 2);
    }

    #[test]
    fn range_build_covers_a_shard() {
        let lambda = sample();
        let idx = PatternIndex::build_range(&lambda, 2, 5);
        idx.validate(&lambda).unwrap();
        assert_eq!(idx.row_range(), 2..5);
        assert_eq!(idx.num_rows(), 3);
        assert_eq!(idx.num_patterns(), 2);
        assert_eq!(idx.pattern_of_row(2), idx.pattern_of_row(4));
    }

    #[test]
    fn extend_after_row_append() {
        let mut lambda = sample();
        let mut idx = PatternIndex::build(&lambda);
        lambda.apply_delta(&MatrixDelta::AppendRows {
            rows: vec![vec![(0, 1), (1, -1)], vec![(2, 1)]],
        });
        idx.extend_to(&lambda, lambda.num_points());
        idx.validate(&lambda).unwrap();
        assert_eq!(idx.num_rows(), 8);
        assert_eq!(idx.count(idx.pattern_of_row(6)), 4); // joins {1,-1}
        assert_eq!(idx.num_patterns(), 4); // {·,·,1} is new
    }

    #[test]
    fn refresh_column_resigns_only_touched_rows() {
        let mut lambda = sample();
        let mut idx = PatternIndex::build(&lambda);
        // Replace column 1: now only row 0 votes there.
        lambda.apply_delta(&MatrixDelta::ReplaceColumn {
            col: 1,
            entries: vec![(0, 1)],
        });
        idx.refresh_column(&lambda, 1);
        idx.validate(&lambda).unwrap();
        let fresh = PatternIndex::build(&lambda);
        assert_eq!(idx.num_patterns(), fresh.num_patterns());
        for r in 0..lambda.num_points() {
            assert_eq!(
                idx.pattern(idx.pattern_of_row(r)),
                fresh.pattern(fresh.pattern_of_row(r)),
                "row {r}"
            );
        }
    }

    #[test]
    fn refresh_column_handles_appended_column() {
        let mut lambda = sample();
        let mut idx = PatternIndex::build(&lambda);
        lambda.apply_delta(&MatrixDelta::AppendColumn {
            entries: vec![(1, 1), (4, -1)],
        });
        idx.refresh_column(&lambda, 3);
        idx.validate(&lambda).unwrap();
    }

    #[test]
    fn rebuild_after_column_removal() {
        let mut lambda = sample();
        let mut idx = PatternIndex::build(&lambda);
        lambda.apply_delta(&MatrixDelta::RemoveColumn { col: 0 });
        idx.rebuild(&lambda, lambda.num_points());
        idx.validate(&lambda).unwrap();
        assert_eq!(idx.num_rows(), 6);
    }

    #[test]
    fn tombstones_compact_away() {
        // Churn one row through many distinct signatures.
        let mut b = LabelMatrixBuilder::new(40, 2);
        for i in 0..40 {
            b.set(i, 0, 1);
        }
        let mut lambda = b.build();
        let mut idx = PatternIndex::build(&lambda);
        assert_eq!(idx.num_patterns(), 1);
        for round in 0..60u32 {
            let v = if round % 2 == 0 { 1 } else { -1 };
            let entries: Vec<(u32, Vote)> = (0..=(round % 37)).map(|r| (r, v)).collect();
            lambda.replace_column(1, &entries);
            idx.refresh_column(&lambda, 1);
        }
        idx.validate(&lambda).unwrap();
        assert!(
            idx.num_slots() <= 2 * idx.num_patterns() + 16,
            "tombstones kept: {} slots for {} live",
            idx.num_slots(),
            idx.num_patterns()
        );
    }

    #[test]
    fn parts_round_trip_behaves_identically() {
        let mut lambda = sample();
        let mut idx = PatternIndex::build(&lambda);
        // Churn a little so tombstones exist in the exported state.
        lambda.apply_delta(&MatrixDelta::ReplaceColumn {
            col: 1,
            entries: vec![(0, 1), (5, -1)],
        });
        idx.refresh_column(&lambda, 1);
        let back = PatternIndex::from_parts(idx.to_parts()).unwrap();
        back.validate(&lambda).unwrap();
        assert_eq!(back.num_patterns(), idx.num_patterns());
        for r in 0..lambda.num_points() {
            assert_eq!(back.pattern_of_row(r), idx.pattern_of_row(r), "row {r}");
        }
        // The rebuilt lookup must keep interning correctly: a further
        // column edit lands on the same patterns as the original index.
        let mut a = idx.clone();
        let mut b = back;
        lambda.apply_delta(&MatrixDelta::ReplaceColumn {
            col: 0,
            entries: vec![(2, -1)],
        });
        a.refresh_column(&lambda, 0);
        b.refresh_column(&lambda, 0);
        a.validate(&lambda).unwrap();
        b.validate(&lambda).unwrap();
        for r in 0..lambda.num_points() {
            assert_eq!(
                a.pattern(a.pattern_of_row(r)),
                b.pattern(b.pattern_of_row(r)),
                "row {r} after post-import edit"
            );
        }
    }

    #[test]
    fn from_parts_rejects_corruption() {
        let lambda = sample();
        let idx = PatternIndex::build(&lambda);
        // Out-of-range pattern id.
        let mut parts = idx.to_parts();
        parts.row_pattern[0] = 99;
        assert!(PatternIndex::from_parts(parts).is_err());
        // Drifted multiplicity counts.
        let mut parts = idx.to_parts();
        parts.counts[0] += 1;
        assert!(PatternIndex::from_parts(parts).is_err());
        // Bounds past the arena end.
        let mut parts = idx.to_parts();
        parts.pat_bounds[0] = (0, parts.sig_cols.len() + 1);
        assert!(PatternIndex::from_parts(parts).is_err());
        // Arena length mismatch.
        let mut parts = idx.to_parts();
        parts.sig_votes.pop();
        assert!(PatternIndex::from_parts(parts).is_err());
    }

    #[test]
    fn empty_matrix_and_empty_range() {
        let lambda = LabelMatrixBuilder::new(0, 3).build();
        let idx = PatternIndex::build(&lambda);
        idx.validate(&lambda).unwrap();
        assert_eq!(idx.num_patterns(), 0);
        assert_eq!(idx.dedup_ratio(), 1.0);
        let lambda = sample();
        let idx = PatternIndex::build_range(&lambda, 3, 3);
        assert_eq!(idx.num_rows(), 0);
    }
}
