//! Delta updates for the label matrix — the storage layer of the
//! incremental dev loop (`snorkel-incr`).
//!
//! The interactive workflow edits one labeling function out of `n`, so
//! rebuilding the whole `Λ` from triplets (sort + dedup validation,
//! `O(nnz · log nnz)`) on every edit is wasted work. This module patches
//! the CSR arrays directly:
//!
//! * [`LabelMatrix::column`] / [`LabelMatrix::replace_column`] /
//!   [`LabelMatrix::append_column`] / [`LabelMatrix::remove_column`] —
//!   single-pass `O(nnz)` column splices;
//! * [`LabelMatrix::append_rows`] — `O(new nnz)` ingestion of a new
//!   candidate batch (pure extension of the CSR arrays);
//! * [`LabelMatrix::from_columns`] — `O(nnz)` assembly from per-column
//!   sparse vectors (the shape the LF-result cache stores);
//! * [`MatrixDelta`] — a first-class description of one edit, applied
//!   with [`LabelMatrix::apply_delta`].
//!
//! Every operation produces a matrix **bit-identical** to rebuilding from
//! scratch with [`LabelMatrixBuilder`](crate::LabelMatrixBuilder) — the
//! invariant the `snorkel-incr` property tests pin down — because CSR rows
//! stay sorted by column and vote validation mirrors the builder's.

use crate::csr::{LabelMatrix, Vote, ABSTAIN};

/// One structural edit to a label matrix.
///
/// Row indices inside column entries refer to the matrix the delta is
/// applied to; entries must be sorted by row, unique, in range, and
/// non-abstain (the invariants [`LabelMatrix::column`] guarantees).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MatrixDelta {
    /// Swap the sparse contents of one existing column (an LF edit).
    ReplaceColumn {
        /// Column index in `0..n`.
        col: usize,
        /// New `(row, vote)` entries, sorted by row.
        entries: Vec<(u32, Vote)>,
    },
    /// Add one column at index `n` (a new LF).
    AppendColumn {
        /// `(row, vote)` entries, sorted by row.
        entries: Vec<(u32, Vote)>,
    },
    /// Delete one column, shifting the columns above it down by one (an
    /// LF removal).
    RemoveColumn {
        /// Column index in `0..n`.
        col: usize,
    },
    /// Append a batch of new data-point rows (candidate ingestion). Each
    /// row is `(col, vote)` entries sorted by column.
    AppendRows {
        /// One entry list per new row.
        rows: Vec<Vec<(u32, Vote)>>,
    },
}

impl MatrixDelta {
    /// Human-readable kind tag for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            MatrixDelta::ReplaceColumn { .. } => "replace-column",
            MatrixDelta::AppendColumn { .. } => "append-column",
            MatrixDelta::RemoveColumn { .. } => "remove-column",
            MatrixDelta::AppendRows { .. } => "append-rows",
        }
    }
}

impl LabelMatrix {
    /// Validate one vote for this matrix's scheme (mirrors the builder).
    fn check_vote(&self, v: Vote) {
        debug_assert_ne!(v, ABSTAIN, "sparse entries must be non-abstain");
        if self.cardinality == 2 {
            assert!(
                v == 1 || v == -1,
                "binary scheme requires votes in {{-1, +1}}, got {v}"
            );
        } else {
            assert!(
                v >= 1 && (v as u8) <= self.cardinality,
                "{}-class scheme requires votes in 1..={}, got {v}",
                self.cardinality,
                self.cardinality
            );
        }
    }

    fn check_column_entries(&self, entries: &[(u32, Vote)]) {
        let mut prev: Option<u32> = None;
        for &(row, v) in entries {
            assert!(
                (row as usize) < self.m,
                "row {row} out of range ({} points)",
                self.m
            );
            assert!(v != ABSTAIN, "column entries must be non-abstain");
            self.check_vote(v);
            if let Some(p) = prev {
                assert!(
                    p < row,
                    "column entries must be sorted and unique (…{p}, {row}…)"
                );
            }
            prev = Some(row);
        }
    }

    /// Extract one LF's sparse column as `(row, vote)` pairs in row order.
    pub fn column(&self, j: usize) -> Vec<(u32, Vote)> {
        assert!(j < self.n, "col {j} out of range ({} LFs)", self.n);
        let mut out = Vec::new();
        for i in 0..self.m {
            let (cols, votes) = self.row(i);
            if let Ok(pos) = cols.binary_search(&(j as u32)) {
                out.push((i as u32, votes[pos]));
            }
        }
        out
    }

    /// Replace column `j`'s contents with `entries` in one `O(nnz)` pass.
    pub fn replace_column(&mut self, j: usize, entries: &[(u32, Vote)]) {
        assert!(j < self.n, "col {j} out of range ({} LFs)", self.n);
        self.check_column_entries(entries);
        self.splice_column(j, Some(entries), false);
    }

    /// Append `entries` as new column `n`. The new column has the highest
    /// index, so each row's entry lands at the row's tail: a single
    /// back-to-front in-place shift, no reallocation beyond the tail
    /// growth.
    pub fn append_column(&mut self, entries: &[(u32, Vote)]) {
        self.check_column_entries(entries);
        let new_col = self.n as u32;
        self.n += 1;
        let extra = entries.len();
        let old_nnz = self.votes.len();
        self.col_idx.resize(old_nnz + extra, 0);
        self.votes.resize(old_nnz + extra, ABSTAIN);
        let mut write = old_nnz + extra; // one past the next write slot
        let mut read = old_nnz; // one past the next read slot
        let mut next_entry = entries.len(); // entries consumed back to front
        for i in (0..self.m).rev() {
            let lo = self.row_ptr[i];
            let gains = next_entry > 0 && entries[next_entry - 1].0 as usize == i;
            if gains {
                next_entry -= 1;
                write -= 1;
                self.col_idx[write] = new_col;
                self.votes[write] = entries[next_entry].1;
            }
            while read > lo {
                read -= 1;
                write -= 1;
                self.col_idx[write] = self.col_idx[read];
                self.votes[write] = self.votes[read];
            }
            // `write` now points at row i's first entry; rows above i have
            // already been shifted, so this is row i's final start offset.
            self.row_ptr[i] = write;
        }
        debug_assert_eq!(write, 0);
        debug_assert_eq!(next_entry, 0);
        self.row_ptr[self.m] = old_nnz + extra;
        // Interior boundaries: row_ptr[i] was rewritten as each row's
        // *start*; the end of row i is the start of row i+1, which the
        // loop already set — except row m's start slot doubles as the
        // total, handled above. Nothing further to fix.
    }

    /// Remove column `j`, shifting higher columns down, in one pass.
    pub fn remove_column(&mut self, j: usize) {
        assert!(j < self.n, "col {j} out of range ({} LFs)", self.n);
        self.splice_column(j, None, true);
        self.n -= 1;
    }

    /// Shared column splice: `replacement = Some(entries)` swaps column
    /// `j`'s contents; `replacement = None` with `drop_col` deletes the
    /// column (remapping higher indices down by one).
    fn splice_column(&mut self, j: usize, replacement: Option<&[(u32, Vote)]>, drop_col: bool) {
        let jc = j as u32;
        let mut col_idx = Vec::with_capacity(self.col_idx.len());
        let mut votes = Vec::with_capacity(self.votes.len());
        let mut row_ptr = Vec::with_capacity(self.m + 1);
        row_ptr.push(0);
        let mut next_entry = 0usize;
        let entries = replacement.unwrap_or(&[]);
        for i in 0..self.m {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let mut inserted = false;
            let pending = next_entry < entries.len() && entries[next_entry].0 as usize == i;
            for t in lo..hi {
                let c = self.col_idx[t];
                if c == jc {
                    continue; // old contents of the spliced column
                }
                if pending && !inserted && c > jc {
                    col_idx.push(jc);
                    votes.push(entries[next_entry].1);
                    inserted = true;
                }
                col_idx.push(if drop_col && c > jc { c - 1 } else { c });
                votes.push(self.votes[t]);
            }
            if pending && !inserted {
                col_idx.push(jc);
                votes.push(entries[next_entry].1);
            }
            if pending {
                next_entry += 1;
            }
            row_ptr.push(col_idx.len());
        }
        self.col_idx = col_idx;
        self.votes = votes;
        self.row_ptr = row_ptr;
    }

    /// Append new data-point rows; `rows[r]` holds row `m + r`'s sparse
    /// `(col, vote)` entries sorted by column. Pure `O(new nnz)` CSR
    /// extension — existing storage is untouched.
    pub fn append_rows(&mut self, rows: &[Vec<(u32, Vote)>]) {
        for row in rows {
            let mut prev: Option<u32> = None;
            for &(c, v) in row {
                assert!(
                    (c as usize) < self.n,
                    "col {c} out of range ({} LFs)",
                    self.n
                );
                assert!(v != ABSTAIN, "row entries must be non-abstain");
                self.check_vote(v);
                if let Some(p) = prev {
                    assert!(p < c, "row entries must be sorted and unique (…{p}, {c}…)");
                }
                prev = Some(c);
                self.col_idx.push(c);
                self.votes.push(v);
            }
            self.row_ptr.push(self.votes.len());
        }
        self.m += rows.len();
    }

    /// Apply one [`MatrixDelta`].
    pub fn apply_delta(&mut self, delta: &MatrixDelta) {
        match delta {
            MatrixDelta::ReplaceColumn { col, entries } => self.replace_column(*col, entries),
            MatrixDelta::AppendColumn { entries } => self.append_column(entries),
            MatrixDelta::RemoveColumn { col } => self.remove_column(*col),
            MatrixDelta::AppendRows { rows } => self.append_rows(rows),
        }
    }

    /// Assemble a matrix from per-column sparse vectors (each sorted by
    /// row) in `O(nnz)` — the LF-result cache's native layout.
    pub fn from_columns(m: usize, cardinality: u8, columns: &[Vec<(u32, Vote)>]) -> LabelMatrix {
        assert!(cardinality >= 2, "cardinality must be at least 2");
        let n = columns.len();
        // Count entries per row, then prefix-sum into row_ptr.
        let mut lens = vec![0usize; m];
        let mut nnz = 0usize;
        for col in columns {
            let mut prev: Option<u32> = None;
            for &(row, _) in col {
                assert!((row as usize) < m, "row {row} out of range ({m} points)");
                if let Some(p) = prev {
                    assert!(p < row, "column entries must be sorted and unique");
                }
                prev = Some(row);
                lens[row as usize] += 1;
                nnz += 1;
            }
        }
        let mut row_ptr = Vec::with_capacity(m + 1);
        row_ptr.push(0usize);
        for i in 0..m {
            row_ptr.push(row_ptr[i] + lens[i]);
        }
        // Scatter column-by-column; columns are visited in ascending
        // index order, so each row's entries land already sorted.
        let mut col_idx = vec![0u32; nnz];
        let mut votes = vec![0 as Vote; nnz];
        let mut cursor = row_ptr.clone();
        let mut out = LabelMatrix {
            m,
            n,
            cardinality,
            row_ptr: Vec::new(),
            col_idx: Vec::new(),
            votes: Vec::new(),
        };
        for (j, col) in columns.iter().enumerate() {
            for &(row, v) in col {
                out.check_vote(v);
                let slot = cursor[row as usize];
                cursor[row as usize] += 1;
                col_idx[slot] = j as u32;
                votes[slot] = v;
            }
        }
        out.row_ptr = row_ptr;
        out.col_idx = col_idx;
        out.votes = votes;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::LabelMatrixBuilder;

    /// Deterministic pseudo-random dense grid (LCG; no rand dependency in
    /// the lib's test scope).
    fn grid(m: usize, n: usize, seed: u64) -> Vec<Vec<Vote>> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..m)
            .map(|_| {
                (0..n)
                    .map(|_| match next() % 4 {
                        0 => 1,
                        1 => -1,
                        _ => ABSTAIN,
                    })
                    .collect()
            })
            .collect()
    }

    fn build(grid: &[Vec<Vote>]) -> LabelMatrix {
        let m = grid.len();
        let n = grid.first().map_or(0, Vec::len);
        let mut b = LabelMatrixBuilder::new(m, n);
        for (i, row) in grid.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                b.set(i, j, v);
            }
        }
        b.build()
    }

    fn dense_column(grid: &[Vec<Vote>], j: usize) -> Vec<(u32, Vote)> {
        grid.iter()
            .enumerate()
            .filter_map(|(i, row)| (row[j] != ABSTAIN).then_some((i as u32, row[j])))
            .collect()
    }

    #[test]
    fn column_extraction_round_trips() {
        let g = grid(17, 5, 3);
        let lambda = build(&g);
        for j in 0..5 {
            assert_eq!(lambda.column(j), dense_column(&g, j));
        }
    }

    #[test]
    fn replace_column_matches_rebuild() {
        for seed in 0..10 {
            let mut g = grid(23, 6, seed);
            let mut lambda = build(&g);
            let j = (seed % 6) as usize;
            let new = grid(23, 1, seed + 100);
            for (i, row) in new.iter().enumerate() {
                g[i][j] = row[0];
            }
            lambda.replace_column(j, &dense_column(&g, j));
            assert_eq!(lambda, build(&g), "seed {seed}");
        }
    }

    #[test]
    fn append_column_matches_rebuild() {
        for seed in 0..10 {
            let mut g = grid(19, 4, seed);
            let mut lambda = build(&g);
            let new = grid(19, 1, seed + 50);
            for (i, row) in g.iter_mut().enumerate() {
                row.push(new[i][0]);
            }
            lambda.append_column(&dense_column(&g, 4));
            assert_eq!(lambda, build(&g), "seed {seed}");
        }
    }

    #[test]
    fn remove_column_matches_rebuild() {
        for seed in 0..10 {
            let mut g = grid(21, 5, seed);
            let mut lambda = build(&g);
            let j = (seed % 5) as usize;
            for row in g.iter_mut() {
                row.remove(j);
            }
            lambda.remove_column(j);
            assert_eq!(lambda, build(&g), "seed {seed}");
        }
    }

    #[test]
    fn append_rows_matches_rebuild() {
        for seed in 0..10 {
            let mut g = grid(12, 4, seed);
            let mut lambda = build(&g);
            let extra = grid(7, 4, seed + 31);
            let rows: Vec<Vec<(u32, Vote)>> = extra
                .iter()
                .map(|row| {
                    row.iter()
                        .enumerate()
                        .filter_map(|(j, &v)| (v != ABSTAIN).then_some((j as u32, v)))
                        .collect()
                })
                .collect();
            lambda.append_rows(&rows);
            g.extend(extra);
            assert_eq!(lambda, build(&g), "seed {seed}");
        }
    }

    #[test]
    fn delta_sequence_matches_rebuild() {
        let mut g = grid(15, 3, 9);
        let mut lambda = build(&g);

        // Edit column 1.
        let col = grid(15, 1, 77);
        for (i, row) in col.iter().enumerate() {
            g[i][1] = row[0];
        }
        lambda.apply_delta(&MatrixDelta::ReplaceColumn {
            col: 1,
            entries: dense_column(&g, 1),
        });

        // Add a column.
        let col = grid(15, 1, 78);
        for (i, row) in g.iter_mut().enumerate() {
            row.push(col[i][0]);
        }
        lambda.apply_delta(&MatrixDelta::AppendColumn {
            entries: dense_column(&g, 3),
        });

        // Ingest rows.
        let extra = grid(5, 4, 79);
        lambda.apply_delta(&MatrixDelta::AppendRows {
            rows: extra
                .iter()
                .map(|row| {
                    row.iter()
                        .enumerate()
                        .filter_map(|(j, &v)| (v != ABSTAIN).then_some((j as u32, v)))
                        .collect()
                })
                .collect(),
        });
        g.extend(extra);

        // Drop column 0.
        for row in g.iter_mut() {
            row.remove(0);
        }
        lambda.apply_delta(&MatrixDelta::RemoveColumn { col: 0 });

        assert_eq!(lambda, build(&g));
        assert_eq!(lambda.num_lfs(), 3);
        assert_eq!(lambda.num_points(), 20);
    }

    #[test]
    fn from_columns_matches_builder() {
        for seed in 0..10 {
            let g = grid(25, 7, seed);
            let expected = build(&g);
            let cols: Vec<Vec<(u32, Vote)>> = (0..7).map(|j| dense_column(&g, j)).collect();
            assert_eq!(LabelMatrix::from_columns(25, 2, &cols), expected);
        }
    }

    #[test]
    fn from_columns_empty_shapes() {
        let empty = LabelMatrix::from_columns(0, 2, &[]);
        assert_eq!(empty.num_points(), 0);
        assert_eq!(empty.num_lfs(), 0);
        let no_rows = LabelMatrix::from_columns(0, 2, &[Vec::new(), Vec::new()]);
        assert_eq!(no_rows.num_lfs(), 2);
        let no_votes = LabelMatrix::from_columns(4, 5, &vec![Vec::new(); 3]);
        assert_eq!(no_votes.num_points(), 4);
        assert_eq!(no_votes.nnz(), 0);
        assert_eq!(no_votes.cardinality(), 5);
    }

    #[test]
    #[should_panic(expected = "sorted and unique")]
    fn replace_column_rejects_unsorted() {
        let mut lambda = build(&grid(5, 2, 1));
        lambda.replace_column(0, &[(3, 1), (1, -1)]);
    }

    #[test]
    #[should_panic(expected = "binary scheme")]
    fn replace_column_rejects_bad_votes() {
        let mut lambda = build(&grid(5, 2, 1));
        lambda.replace_column(0, &[(1, 3)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn append_rows_rejects_bad_col() {
        let mut lambda = build(&grid(5, 2, 1));
        lambda.append_rows(&[vec![(2, 1)]]);
    }

    #[test]
    fn multiclass_deltas_validate() {
        let mut b = LabelMatrixBuilder::with_cardinality(4, 2, 5);
        b.set(0, 0, 5);
        b.set(2, 1, 3);
        let mut lambda = b.build();
        lambda.replace_column(0, &[(1, 4), (3, 5)]);
        assert_eq!(lambda.get(1, 0), 4);
        assert_eq!(lambda.get(0, 0), ABSTAIN);
        assert_eq!(lambda.cardinality(), 5);
    }
}
