//! Compressed-sparse-row storage for the label matrix.

/// A single labeling-function vote. `0` means abstain; binary tasks use
/// `{−1, +1}`; multi-class tasks use `{1..=k}`.
pub type Vote = i8;

/// The abstain vote.
pub const ABSTAIN: Vote = 0;

/// Error from [`LabelMatrix::select_rows`] / [`LabelMatrix::select_columns`]
/// when an index is out of range for the matrix's shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectError {
    /// A requested row index is ≥ the number of data points.
    RowOutOfRange {
        /// The offending row index.
        index: usize,
        /// The matrix's row count.
        num_points: usize,
    },
    /// A requested column index is ≥ the number of LFs.
    ColumnOutOfRange {
        /// The offending column index.
        index: usize,
        /// The matrix's column count.
        num_lfs: usize,
    },
}

impl std::fmt::Display for SelectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectError::RowOutOfRange { index, num_points } => {
                write!(f, "row {index} out of range ({num_points} points)")
            }
            SelectError::ColumnOutOfRange { index, num_lfs } => {
                write!(f, "col {index} out of range ({num_lfs} LFs)")
            }
        }
    }
}

impl std::error::Error for SelectError {}

/// Sparse label matrix `Λ` with `m` data-point rows and `n` LF columns.
///
/// Immutable once built; construct through [`LabelMatrixBuilder`]. Row
/// entries are sorted by column, with no explicit zeros and no duplicate
/// `(row, col)` pairs — both enforced at build time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelMatrix {
    pub(crate) m: usize,
    pub(crate) n: usize,
    pub(crate) cardinality: u8,
    pub(crate) row_ptr: Vec<usize>,
    pub(crate) col_idx: Vec<u32>,
    pub(crate) votes: Vec<Vote>,
}

impl LabelMatrix {
    /// Number of data points (rows).
    #[inline]
    pub fn num_points(&self) -> usize {
        self.m
    }

    /// Number of labeling functions (columns).
    #[inline]
    pub fn num_lfs(&self) -> usize {
        self.n
    }

    /// Task cardinality: 2 for binary (votes in `{−1,+1}`), `k` for
    /// multi-class (votes in `{1..=k}`).
    #[inline]
    pub fn cardinality(&self) -> u8 {
        self.cardinality
    }

    /// True for the binary `{−1, +1}` vote scheme.
    #[inline]
    pub fn is_binary(&self) -> bool {
        self.cardinality == 2
    }

    /// Number of non-abstain votes.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.votes.len()
    }

    /// The non-abstain entries of row `i` as parallel `(columns, votes)`
    /// slices, sorted by column.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[Vote]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.votes[lo..hi])
    }

    /// Vote of LF `j` on point `i` (0 when abstaining).
    pub fn get(&self, i: usize, j: usize) -> Vote {
        let (cols, votes) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(pos) => votes[pos],
            Err(_) => ABSTAIN,
        }
    }

    /// Iterate `(row, col, vote)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Vote)> + '_ {
        (0..self.m).flat_map(move |i| {
            let (cols, votes) = self.row(i);
            cols.iter()
                .zip(votes)
                .map(move |(&c, &v)| (i, c as usize, v))
        })
    }

    /// Mean number of non-abstain labels per data point — the label
    /// density `d_Λ` of §3.1.
    pub fn label_density(&self) -> f64 {
        if self.m == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.m as f64
        }
    }

    /// Column-major copy: for each LF, its `(row, vote)` pairs in row
    /// order. Built on demand (structure learning iterates columns).
    pub fn to_columns(&self) -> Vec<Vec<(u32, Vote)>> {
        let mut cols: Vec<Vec<(u32, Vote)>> = vec![Vec::new(); self.n];
        for (i, j, v) in self.iter() {
            cols[j].push((i as u32, v));
        }
        cols
    }

    /// Dense copy (`m × n`, abstains as 0) — tests and tiny matrices only.
    pub fn to_dense(&self) -> Vec<Vec<Vote>> {
        let mut d = vec![vec![ABSTAIN; self.n]; self.m];
        for (i, j, v) in self.iter() {
            d[i][j] = v;
        }
        d
    }

    /// Restrict to a subset of rows (e.g. the dev split), preserving
    /// column count and cardinality. Row order follows `rows`. Every
    /// index is validated up front: an out-of-range row returns
    /// [`SelectError::RowOutOfRange`] instead of a corrupt subset.
    pub fn select_rows(&self, rows: &[usize]) -> Result<LabelMatrix, SelectError> {
        if let Some(&bad) = rows.iter().find(|&&i| i >= self.m) {
            return Err(SelectError::RowOutOfRange {
                index: bad,
                num_points: self.m,
            });
        }
        let mut b = LabelMatrixBuilder::with_cardinality(rows.len(), self.n, self.cardinality);
        for (new_i, &old_i) in rows.iter().enumerate() {
            let (cols, votes) = self.row(old_i);
            for (&c, &v) in cols.iter().zip(votes) {
                b.set(new_i, c as usize, v);
            }
        }
        Ok(b.build())
    }

    /// Restrict to a subset of LF columns (ablation studies). Column
    /// order follows `cols`. Every index is validated up front: an
    /// out-of-range column returns [`SelectError::ColumnOutOfRange`]
    /// instead of silently vanishing from the subset.
    pub fn select_columns(&self, cols: &[usize]) -> Result<LabelMatrix, SelectError> {
        if let Some(&bad) = cols.iter().find(|&&j| j >= self.n) {
            return Err(SelectError::ColumnOutOfRange {
                index: bad,
                num_lfs: self.n,
            });
        }
        let remap: std::collections::HashMap<usize, usize> = cols
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        let mut b = LabelMatrixBuilder::with_cardinality(self.m, cols.len(), self.cardinality);
        for (i, j, v) in self.iter() {
            if let Some(&nj) = remap.get(&j) {
                b.set(i, nj, v);
            }
        }
        Ok(b.build())
    }
}

/// Whether `v` is a legal non-abstain vote for a `cardinality`-class
/// scheme: `{−1, +1}` when binary, `1..=k` otherwise. The one
/// vote-legality rule, shared by every layer that validates untrusted
/// votes (snapshot decoding, cache import, the serving protocol).
pub fn is_legal_vote(cardinality: u8, v: Vote) -> bool {
    if cardinality == 2 {
        v == 1 || v == -1
    } else {
        v >= 1 && (v as u8) <= cardinality
    }
}

/// Borrowed view of a [`LabelMatrix`]'s raw CSR arrays — the stable
/// encoding surface for on-disk snapshots (`snorkel-serve`). The three
/// slices are exactly the matrix's internal storage; serializing them
/// plus the scalars reproduces the matrix bit-for-bit through
/// [`LabelMatrix::from_csr_parts`].
#[derive(Clone, Copy, Debug)]
pub struct CsrParts<'a> {
    /// Number of data-point rows `m`.
    pub num_points: usize,
    /// Number of LF columns `n`.
    pub num_lfs: usize,
    /// Task cardinality (2 = binary).
    pub cardinality: u8,
    /// Row offsets into `col_idx`/`votes` (`m + 1` entries).
    pub row_ptr: &'a [usize],
    /// Column index per non-abstain entry, sorted within each row.
    pub col_idx: &'a [u32],
    /// Vote per non-abstain entry, parallel to `col_idx`.
    pub votes: &'a [Vote],
}

impl LabelMatrix {
    /// The raw CSR arrays (see [`CsrParts`]).
    pub fn csr_parts(&self) -> CsrParts<'_> {
        CsrParts {
            num_points: self.m,
            num_lfs: self.n,
            cardinality: self.cardinality,
            row_ptr: &self.row_ptr,
            col_idx: &self.col_idx,
            votes: &self.votes,
        }
    }

    /// Rebuild a matrix from raw CSR arrays (the inverse of
    /// [`Self::csr_parts`]), validating every invariant the builder
    /// enforces: row pointers monotone and spanning the entry arrays,
    /// each row's columns strictly increasing and in range, and every
    /// vote legal for the scheme. Untrusted input (a snapshot file)
    /// comes through here, so violations return an error instead of
    /// corrupting later passes.
    pub fn from_csr_parts(
        num_points: usize,
        num_lfs: usize,
        cardinality: u8,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        votes: Vec<Vote>,
    ) -> Result<LabelMatrix, String> {
        if cardinality < 2 {
            return Err(format!("cardinality {cardinality} < 2"));
        }
        if row_ptr.len() != num_points + 1 {
            return Err(format!(
                "row_ptr has {} entries for {num_points} rows (want {})",
                row_ptr.len(),
                num_points + 1
            ));
        }
        if col_idx.len() != votes.len() {
            return Err(format!(
                "col_idx ({}) and votes ({}) lengths differ",
                col_idx.len(),
                votes.len()
            ));
        }
        if row_ptr[0] != 0 || *row_ptr.last().expect("non-empty") != col_idx.len() {
            return Err("row_ptr must start at 0 and end at nnz".into());
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err("row_ptr must be monotone non-decreasing".into());
        }
        for i in 0..num_points {
            let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("row {i}: columns not strictly increasing"));
            }
            if row.last().is_some_and(|&c| (c as usize) >= num_lfs) {
                return Err(format!("row {i}: column out of range ({num_lfs} LFs)"));
            }
        }
        if let Some(&v) = votes.iter().find(|&&v| !is_legal_vote(cardinality, v)) {
            return Err(format!("vote {v} illegal for cardinality {cardinality}"));
        }
        Ok(LabelMatrix {
            m: num_points,
            n: num_lfs,
            cardinality,
            row_ptr,
            col_idx,
            votes,
        })
    }
}

/// Accumulates `(row, col, vote)` triplets and freezes them into a
/// [`LabelMatrix`].
#[derive(Clone, Debug)]
pub struct LabelMatrixBuilder {
    m: usize,
    n: usize,
    cardinality: u8,
    triplets: Vec<(u32, u32, Vote)>,
}

impl LabelMatrixBuilder {
    /// Builder for a binary (`{−1, +1}`) matrix of `m` points × `n` LFs.
    pub fn new(m: usize, n: usize) -> Self {
        Self::with_cardinality(m, n, 2)
    }

    /// Builder for a `k`-class matrix (votes in `{1..=k}`); `k == 2`
    /// selects the binary `{−1,+1}` scheme.
    pub fn with_cardinality(m: usize, n: usize, cardinality: u8) -> Self {
        assert!(cardinality >= 2, "cardinality must be at least 2");
        LabelMatrixBuilder {
            m,
            n,
            cardinality,
            triplets: Vec::new(),
        }
    }

    /// Record LF `j`'s vote on point `i`. Abstains (`0`) are ignored, so
    /// callers can pipe LF outputs through unconditionally. Panics on
    /// out-of-range indices or votes illegal for the scheme.
    pub fn set(&mut self, i: usize, j: usize, vote: Vote) {
        if vote == ABSTAIN {
            return;
        }
        assert!(i < self.m, "row {i} out of range ({} points)", self.m);
        assert!(j < self.n, "col {j} out of range ({} LFs)", self.n);
        if self.cardinality == 2 {
            assert!(
                vote == 1 || vote == -1,
                "binary scheme requires votes in {{-1, +1}}, got {vote}"
            );
        } else {
            assert!(
                vote >= 1 && (vote as u8) <= self.cardinality,
                "{}-class scheme requires votes in 1..={}, got {vote}",
                self.cardinality,
                self.cardinality
            );
        }
        self.triplets.push((i as u32, j as u32, vote));
    }

    /// Freeze into CSR. Panics if the same `(row, col)` was set twice —
    /// one LF emits at most one vote per candidate.
    pub fn build(mut self) -> LabelMatrix {
        self.triplets.sort_unstable_by_key(|&(i, j, _)| (i, j));
        for w in self.triplets.windows(2) {
            assert!(
                (w[0].0, w[0].1) != (w[1].0, w[1].1),
                "duplicate vote at (row {}, col {})",
                w[0].0,
                w[0].1
            );
        }
        let mut row_ptr = Vec::with_capacity(self.m + 1);
        let mut col_idx = Vec::with_capacity(self.triplets.len());
        let mut votes = Vec::with_capacity(self.triplets.len());
        row_ptr.push(0);
        let mut t = 0usize;
        for i in 0..self.m as u32 {
            while t < self.triplets.len() && self.triplets[t].0 == i {
                col_idx.push(self.triplets[t].1);
                votes.push(self.triplets[t].2);
                t += 1;
            }
            row_ptr.push(t);
        }
        LabelMatrix {
            m: self.m,
            n: self.n,
            cardinality: self.cardinality,
            row_ptr,
            col_idx,
            votes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LabelMatrix {
        // 4 points, 3 LFs.
        let mut b = LabelMatrixBuilder::new(4, 3);
        b.set(0, 0, 1);
        b.set(0, 2, -1);
        b.set(1, 1, 1);
        b.set(3, 0, -1);
        b.set(3, 1, -1);
        b.set(3, 2, -1);
        b.build()
    }

    #[test]
    fn shape_and_nnz() {
        let m = sample();
        assert_eq!(m.num_points(), 4);
        assert_eq!(m.num_lfs(), 3);
        assert_eq!(m.nnz(), 6);
        assert!(m.is_binary());
        assert!((m.label_density() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn row_access_sorted() {
        let m = sample();
        let (cols, votes) = m.row(0);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(votes, &[1, -1]);
        let (cols, _) = m.row(2);
        assert!(cols.is_empty());
    }

    #[test]
    fn get_with_abstain() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1);
        assert_eq!(m.get(0, 1), ABSTAIN);
        assert_eq!(m.get(3, 2), -1);
    }

    #[test]
    fn abstain_set_is_noop() {
        let mut b = LabelMatrixBuilder::new(1, 1);
        b.set(0, 0, 0);
        assert_eq!(b.build().nnz(), 0);
    }

    #[test]
    fn dense_round_trip() {
        let m = sample();
        let d = m.to_dense();
        let mut b = LabelMatrixBuilder::new(4, 3);
        for (i, row) in d.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                b.set(i, j, v);
            }
        }
        assert_eq!(b.build(), m);
    }

    #[test]
    fn columns_view() {
        let m = sample();
        let cols = m.to_columns();
        assert_eq!(cols[0], vec![(0, 1), (3, -1)]);
        assert_eq!(cols[1], vec![(1, 1), (3, -1)]);
    }

    #[test]
    fn select_rows_subsets() {
        let m = sample();
        let sub = m.select_rows(&[3, 0]).unwrap();
        assert_eq!(sub.num_points(), 2);
        assert_eq!(sub.get(0, 1), -1); // old row 3
        assert_eq!(sub.get(1, 0), 1); // old row 0
    }

    #[test]
    fn select_columns_subsets() {
        let m = sample();
        let sub = m.select_columns(&[2, 0]).unwrap();
        assert_eq!(sub.num_lfs(), 2);
        assert_eq!(sub.get(0, 0), -1); // old col 2
        assert_eq!(sub.get(0, 1), 1); // old col 0
    }

    #[test]
    fn select_rows_rejects_out_of_range() {
        let m = sample();
        assert_eq!(
            m.select_rows(&[0, 4]),
            Err(SelectError::RowOutOfRange {
                index: 4,
                num_points: 4
            })
        );
        // Empty selections of an empty matrix still succeed.
        let empty = LabelMatrixBuilder::new(0, 0).build();
        assert!(empty.select_rows(&[]).is_ok());
        assert_eq!(
            empty.select_rows(&[0]),
            Err(SelectError::RowOutOfRange {
                index: 0,
                num_points: 0
            })
        );
    }

    #[test]
    fn select_columns_rejects_out_of_range() {
        let m = sample();
        let err = m.select_columns(&[1, 3]).unwrap_err();
        assert_eq!(
            err,
            SelectError::ColumnOutOfRange {
                index: 3,
                num_lfs: 3
            }
        );
        assert!(err.to_string().contains("col 3 out of range"));
    }

    #[test]
    fn multiclass_scheme() {
        let mut b = LabelMatrixBuilder::with_cardinality(2, 2, 5);
        b.set(0, 0, 5);
        b.set(1, 1, 1);
        let m = b.build();
        assert!(!m.is_binary());
        assert_eq!(m.cardinality(), 5);
        assert_eq!(m.get(0, 0), 5);
    }

    #[test]
    #[should_panic(expected = "binary scheme")]
    fn binary_rejects_class_votes() {
        let mut b = LabelMatrixBuilder::new(1, 1);
        b.set(0, 0, 2);
    }

    #[test]
    #[should_panic(expected = "5-class scheme")]
    fn multiclass_rejects_out_of_range() {
        let mut b = LabelMatrixBuilder::with_cardinality(1, 1, 5);
        b.set(0, 0, 6);
    }

    #[test]
    #[should_panic(expected = "duplicate vote")]
    fn duplicate_vote_panics() {
        let mut b = LabelMatrixBuilder::new(2, 2);
        b.set(0, 0, 1);
        b.set(0, 0, -1);
        let _ = b.build();
    }

    #[test]
    fn csr_parts_round_trip() {
        let m = sample();
        let p = m.csr_parts();
        let back = LabelMatrix::from_csr_parts(
            p.num_points,
            p.num_lfs,
            p.cardinality,
            p.row_ptr.to_vec(),
            p.col_idx.to_vec(),
            p.votes.to_vec(),
        )
        .unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn from_csr_parts_rejects_corruption() {
        let m = sample();
        let p = m.csr_parts();
        // Column out of range.
        let mut bad_cols = p.col_idx.to_vec();
        bad_cols[0] = 99;
        assert!(LabelMatrix::from_csr_parts(
            p.num_points,
            p.num_lfs,
            p.cardinality,
            p.row_ptr.to_vec(),
            bad_cols,
            p.votes.to_vec(),
        )
        .is_err());
        // Illegal vote for the binary scheme.
        let mut bad_votes = p.votes.to_vec();
        bad_votes[0] = 3;
        assert!(LabelMatrix::from_csr_parts(
            p.num_points,
            p.num_lfs,
            p.cardinality,
            p.row_ptr.to_vec(),
            p.col_idx.to_vec(),
            bad_votes,
        )
        .is_err());
        // Non-monotone row pointers.
        let mut bad_ptr = p.row_ptr.to_vec();
        bad_ptr[1] = 5;
        bad_ptr[2] = 2;
        assert!(LabelMatrix::from_csr_parts(
            p.num_points,
            p.num_lfs,
            p.cardinality,
            bad_ptr,
            p.col_idx.to_vec(),
            p.votes.to_vec(),
        )
        .is_err());
        // Truncated row_ptr.
        assert!(LabelMatrix::from_csr_parts(
            p.num_points,
            p.num_lfs,
            p.cardinality,
            p.row_ptr[..p.row_ptr.len() - 1].to_vec(),
            p.col_idx.to_vec(),
            p.votes.to_vec(),
        )
        .is_err());
    }

    #[test]
    fn empty_matrix() {
        let m = LabelMatrixBuilder::new(0, 0).build();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.label_density(), 0.0);
        assert!(m.iter().next().is_none());
    }
}
