//! Labeling diagnostics: the numbers Snorkel shows LF developers.
//!
//! These statistics drive the iterative development loop the paper
//! describes (§2.1, appendix C): after each LF edit, users inspect
//! coverage / overlap / conflict per LF and empirical accuracy on the
//! small labeled development set, then refine. The optimizer (§3.1.2)
//! additionally consumes the matrix-level label density.

use crate::csr::{LabelMatrix, Vote, ABSTAIN};

/// Per-labeling-function summary.
#[derive(Clone, Debug, PartialEq)]
pub struct LfSummary {
    /// Column index of the LF.
    pub index: usize,
    /// Fraction of data points this LF voted on.
    pub coverage: f64,
    /// Fraction of points where this LF voted *and* ≥1 other LF voted.
    pub overlap: f64,
    /// Fraction of points where this LF voted and ≥1 other LF voted a
    /// *different* (non-abstain) label.
    pub conflict: f64,
    /// Distinct labels this LF ever emitted (its polarity).
    pub polarity: Vec<Vote>,
    /// Raw vote count.
    pub num_votes: usize,
}

/// Matrix-level summary.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixStats {
    /// One summary per LF column.
    pub lfs: Vec<LfSummary>,
    /// Label density `d_Λ` (mean non-abstain votes per point).
    pub label_density: f64,
    /// Fraction of points with at least one vote.
    pub coverage: f64,
    /// Fraction of points with at least two differing votes.
    pub conflict_rate: f64,
}

/// Compute the full diagnostic summary of a label matrix.
pub fn matrix_stats(lambda: &LabelMatrix) -> MatrixStats {
    let m = lambda.num_points();
    let n = lambda.num_lfs();
    let mut votes_per_lf = vec![0usize; n];
    let mut overlap_per_lf = vec![0usize; n];
    let mut conflict_per_lf = vec![0usize; n];
    let mut polarity: Vec<std::collections::BTreeSet<Vote>> =
        vec![std::collections::BTreeSet::new(); n];
    let mut covered = 0usize;
    let mut conflicted = 0usize;

    for i in 0..m {
        let (cols, votes) = lambda.row(i);
        if !cols.is_empty() {
            covered += 1;
        }
        let distinct: std::collections::BTreeSet<Vote> = votes.iter().copied().collect();
        let row_conflicts = distinct.len() > 1;
        if row_conflicts {
            conflicted += 1;
        }
        for (&c, &v) in cols.iter().zip(votes) {
            let j = c as usize;
            votes_per_lf[j] += 1;
            polarity[j].insert(v);
            if cols.len() > 1 {
                overlap_per_lf[j] += 1;
                // Conflict for LF j: someone else voted differently.
                if votes.iter().any(|&other| other != v) {
                    conflict_per_lf[j] += 1;
                }
            }
        }
    }

    let denom = if m == 0 { 1.0 } else { m as f64 };
    let lfs = (0..n)
        .map(|j| LfSummary {
            index: j,
            coverage: votes_per_lf[j] as f64 / denom,
            overlap: overlap_per_lf[j] as f64 / denom,
            conflict: conflict_per_lf[j] as f64 / denom,
            polarity: polarity[j].iter().copied().collect(),
            num_votes: votes_per_lf[j],
        })
        .collect();

    MatrixStats {
        lfs,
        label_density: lambda.label_density(),
        coverage: covered as f64 / denom,
        conflict_rate: conflicted as f64 / denom,
    }
}

/// Empirical accuracy of each LF against gold labels (dev-set
/// evaluation): `P(Λ_ij = y_i | Λ_ij ≠ ∅)`. Returns `None` for LFs that
/// never voted on the labeled rows. `gold` must have one entry per matrix
/// row (use [`LabelMatrix::select_rows`] to restrict to the dev split
/// first).
pub fn empirical_accuracies(lambda: &LabelMatrix, gold: &[Vote]) -> Vec<Option<f64>> {
    assert_eq!(
        gold.len(),
        lambda.num_points(),
        "empirical_accuracies: gold length must match rows"
    );
    let n = lambda.num_lfs();
    let mut hits = vec![0usize; n];
    let mut total = vec![0usize; n];
    for (i, j, v) in lambda.iter() {
        if gold[i] == ABSTAIN {
            continue; // unlabeled row
        }
        total[j] += 1;
        if v == gold[i] {
            hits[j] += 1;
        }
    }
    (0..n)
        .map(|j| {
            if total[j] == 0 {
                None
            } else {
                Some(hits[j] as f64 / total[j] as f64)
            }
        })
        .collect()
}

/// Fraction of rows whose (unweighted) plurality vote equals each class;
/// a quick class-balance diagnostic. Ties and empty rows are skipped.
pub fn class_balance(lambda: &LabelMatrix) -> std::collections::BTreeMap<Vote, f64> {
    let mut counts: std::collections::BTreeMap<Vote, usize> = std::collections::BTreeMap::new();
    let mut decided = 0usize;
    for i in 0..lambda.num_points() {
        let (_, votes) = lambda.row(i);
        if votes.is_empty() {
            continue;
        }
        let mut tally: std::collections::BTreeMap<Vote, usize> = std::collections::BTreeMap::new();
        for &v in votes {
            *tally.entry(v).or_insert(0) += 1;
        }
        let best = tally.iter().map(|(_, &c)| c).max().expect("non-empty");
        let winners: Vec<Vote> = tally
            .iter()
            .filter(|&(_, &c)| c == best)
            .map(|(&v, _)| v)
            .collect();
        if winners.len() == 1 {
            *counts.entry(winners[0]).or_insert(0) += 1;
            decided += 1;
        }
    }
    counts
        .into_iter()
        .map(|(v, c)| (v, c as f64 / decided.max(1) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::LabelMatrixBuilder;

    fn sample() -> LabelMatrix {
        // 4 points × 3 LFs:
        // row 0: LF0=+1, LF2=−1     (conflict)
        // row 1: LF1=+1             (lonely vote)
        // row 2: (empty)
        // row 3: LF0=+1, LF1=+1     (agreement)
        let mut b = LabelMatrixBuilder::new(4, 3);
        b.set(0, 0, 1);
        b.set(0, 2, -1);
        b.set(1, 1, 1);
        b.set(3, 0, 1);
        b.set(3, 1, 1);
        b.build()
    }

    #[test]
    fn coverage_overlap_conflict() {
        let s = matrix_stats(&sample());
        assert!((s.coverage - 0.75).abs() < 1e-12);
        assert!((s.conflict_rate - 0.25).abs() < 1e-12);
        assert!((s.label_density - 1.25).abs() < 1e-12);

        let lf0 = &s.lfs[0];
        assert!((lf0.coverage - 0.5).abs() < 1e-12);
        assert!((lf0.overlap - 0.5).abs() < 1e-12); // voted with others on rows 0 and 3
        assert!((lf0.conflict - 0.25).abs() < 1e-12); // conflicted only on row 0
        assert_eq!(lf0.polarity, vec![1]);

        let lf1 = &s.lfs[1];
        assert!((lf1.coverage - 0.5).abs() < 1e-12);
        assert!((lf1.overlap - 0.25).abs() < 1e-12);
        assert!((lf1.conflict - 0.0).abs() < 1e-12);

        let lf2 = &s.lfs[2];
        assert_eq!(lf2.polarity, vec![-1]);
        assert_eq!(lf2.num_votes, 1);
    }

    #[test]
    fn accuracies_against_gold() {
        let m = sample();
        let gold = vec![1, -1, 1, 1];
        let acc = empirical_accuracies(&m, &gold);
        assert_eq!(acc[0], Some(1.0)); // LF0 voted +1 on rows 0,3; both gold +1
        assert_eq!(acc[1], Some(0.5)); // LF1: wrong on row 1, right on row 3
        assert_eq!(acc[2], Some(0.0)); // LF2: −1 on row 0, gold +1
    }

    #[test]
    fn accuracies_skip_unlabeled_rows() {
        let m = sample();
        let gold = vec![1, 0, 0, 0]; // only row 0 labeled
        let acc = empirical_accuracies(&m, &gold);
        assert_eq!(acc[0], Some(1.0));
        assert_eq!(acc[1], None); // LF1 only voted on unlabeled rows
        assert_eq!(acc[2], Some(0.0));
    }

    #[test]
    fn class_balance_skips_ties() {
        let m = sample();
        let b = class_balance(&m);
        // Row 0 ties (+1 vs −1) → skipped; rows 1 and 3 decide +1.
        assert_eq!(b.get(&1).copied(), Some(1.0));
        assert_eq!(b.get(&-1), None);
    }

    #[test]
    fn empty_matrix_stats_are_zero() {
        let m = LabelMatrixBuilder::new(0, 2).build();
        let s = matrix_stats(&m);
        assert_eq!(s.coverage, 0.0);
        assert_eq!(s.label_density, 0.0);
        assert_eq!(s.lfs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "gold length")]
    fn gold_length_mismatch_panics() {
        let m = sample();
        let _ = empirical_accuracies(&m, &[1, 1]);
    }
}
