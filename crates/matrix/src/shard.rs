//! Sharded execution over a label matrix: contiguous row-range shards,
//! each with its own [`PatternIndex`], mapped across worker threads and
//! merged **in shard order**.
//!
//! The shard partition is fixed when the plan is built (`ceil(m /
//! shards)` rows each) and never depends on how many worker threads end
//! up running, so any reduction that merges per-shard results in shard
//! index order is deterministic regardless of thread count — the same
//! contract as [`LfExecutor`](../snorkel_lf/struct.LfExecutor.html)'s
//! chunked LF application. Appended row batches extend the *tail* shard
//! (rebalancing the partition once the tail outgrows its fair share),
//! and column splices re-sign only the touched patterns of each shard.

use crate::csr::LabelMatrix;
use crate::pattern::{PatternIndex, PatternIndexParts, ResignScratch};

/// Owned copy of a [`ShardedMatrix`]'s persistent state — the stable
/// encoding surface for on-disk snapshots. The worker count is *not*
/// encoded: it is an execution detail re-derived from the restoring
/// machine's parallelism, and results never depend on it (the merge
/// order is fixed by shard index).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardedMatrixParts {
    /// LF-column count of the matrix the plan was built for.
    pub num_lfs: usize,
    /// Per-shard pattern-index state, in row order.
    pub shards: Vec<PatternIndexParts>,
}

/// A label matrix partitioned into row-range shards with per-shard
/// pattern indexes. Built against one matrix and kept in sync with it by
/// the caller (see the update methods); every consumer asserts the shape
/// still matches.
#[derive(Clone, Debug)]
pub struct ShardedMatrix {
    n: usize,
    shards: Vec<PatternIndex>,
    workers: usize,
}

impl ShardedMatrix {
    /// Partition `lambda` into `num_shards` contiguous row ranges and
    /// index each. `num_shards == 0` means one shard per available core;
    /// the count is clamped to the row count (min 1). Shards are built
    /// in parallel; the result is identical for any worker count.
    pub fn build(lambda: &LabelMatrix, num_shards: usize) -> Self {
        let m = lambda.num_points();
        let avail = std::thread::available_parallelism().map_or(1, |c| c.get());
        let requested = if num_shards == 0 { avail } else { num_shards };
        let count = requested.clamp(1, m.max(1));
        let chunk = m.div_ceil(count);
        let ranges: Vec<(usize, usize)> = (0..count)
            .map(|s| ((s * chunk).min(m), ((s + 1) * chunk).min(m)))
            .collect();
        let workers = count.min(avail);
        let shards = if workers <= 1 {
            ranges
                .iter()
                .map(|&(lo, hi)| PatternIndex::build_range(lambda, lo, hi))
                .collect()
        } else {
            let per = ranges.len().div_ceil(workers);
            let mut out: Vec<PatternIndex> = Vec::with_capacity(count);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for batch in ranges.chunks(per) {
                    handles.push(scope.spawn(move || {
                        batch
                            .iter()
                            .map(|&(lo, hi)| PatternIndex::build_range(lambda, lo, hi))
                            .collect::<Vec<_>>()
                    }));
                }
                for h in handles {
                    out.extend(h.join().expect("shard indexing worker panicked"));
                }
            });
            out
        };
        ShardedMatrix {
            n: lambda.num_lfs(),
            shards,
            workers,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of LF columns of the matrix this plan was built for.
    pub fn num_lfs(&self) -> usize {
        self.n
    }

    /// Total rows covered across shards.
    pub fn num_rows(&self) -> usize {
        self.shards.iter().map(PatternIndex::num_rows).sum()
    }

    /// Total distinct patterns across shards (a signature present in two
    /// shards counts twice — shards never share pattern ids).
    pub fn num_patterns(&self) -> usize {
        self.shards.iter().map(PatternIndex::num_patterns).sum()
    }

    /// Rows per distinct pattern, aggregated over shards.
    pub fn dedup_ratio(&self) -> f64 {
        let p = self.num_patterns();
        if p == 0 {
            1.0
        } else {
            self.num_rows() as f64 / p as f64
        }
    }

    /// The per-shard pattern indexes, in row order.
    pub fn shards(&self) -> &[PatternIndex] {
        &self.shards
    }

    /// Map `f` over every shard, in parallel across the plan's workers,
    /// returning results **in shard order** — merge them left to right
    /// for a reduction that does not depend on thread count.
    pub fn map_shards<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&PatternIndex) -> T + Sync,
    {
        let workers = self.workers.min(self.shards.len());
        if workers <= 1 {
            return self.shards.iter().map(f).collect();
        }
        let per = self.shards.len().div_ceil(workers);
        let mut out: Vec<T> = Vec::with_capacity(self.shards.len());
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for batch in self.shards.chunks(per) {
                handles.push(scope.spawn(move || batch.iter().map(f).collect::<Vec<_>>()));
            }
            for h in handles {
                out.extend(h.join().expect("shard worker panicked"));
            }
        });
        out
    }

    /// Run `f` over every shard in parallel, handing each shard its own
    /// caller-owned scratch slot — the reuse-friendly counterpart of
    /// [`Self::map_shards`] for passes that run many times over the
    /// same plan (the EM/Newton sufficient-statistics loop): the caller
    /// keeps the scratch pool alive across passes, so per-shard
    /// accumulators are allocated once per fit instead of once per
    /// iteration. Slot `i` always pairs with shard `i`, whatever the
    /// thread count.
    ///
    /// Panics unless `scratch.len() == self.shards().len()`.
    pub fn for_each_shard_with<S, F>(&self, scratch: &mut [S], f: F)
    where
        S: Send,
        F: Fn(&PatternIndex, &mut S) + Sync,
    {
        assert_eq!(
            scratch.len(),
            self.shards.len(),
            "one scratch slot per shard"
        );
        let workers = self.workers.min(self.shards.len());
        if workers <= 1 {
            for (shard, slot) in self.shards.iter().zip(scratch.iter_mut()) {
                f(shard, slot);
            }
            return;
        }
        let per = self.shards.len().div_ceil(workers);
        let f = &f;
        std::thread::scope(|scope| {
            for (shards, slots) in self.shards.chunks(per).zip(scratch.chunks_mut(per)) {
                scope.spawn(move || {
                    for (shard, slot) in shards.iter().zip(slots.iter_mut()) {
                        f(shard, slot);
                    }
                });
            }
        });
    }

    /// Absorb rows appended to the backing matrix: the tail shard
    /// extends to the new row count, interning only the new rows. When
    /// repeated appends leave the tail holding more than twice its fair
    /// share of rows — which would bottleneck every `map_shards` pass on
    /// one worker — the plan rebalances by rebuilding its partition at
    /// the same shard count.
    pub fn append_rows(&mut self, lambda: &LabelMatrix) {
        let covered = self.num_rows();
        let m = lambda.num_points();
        assert!(
            m >= covered,
            "matrix shrank below the sharded plan ({m} < {covered} rows)"
        );
        let tail = self.shards.last_mut().expect("plans have ≥1 shard");
        tail.extend_to(lambda, m);
        let count = self.shards.len();
        if count > 1 && self.shards[count - 1].num_rows() > 2 * m.div_ceil(count) {
            *self = Self::build(lambda, count);
        }
    }

    /// Absorb a column replace/append: each shard re-signs only its
    /// touched rows (see [`PatternIndex::refresh_column`]). Not valid
    /// after a column removal — rebuild instead.
    pub fn refresh_column(&mut self, lambda: &LabelMatrix, col: usize) {
        self.refresh_column_with(lambda, col, &mut ResignScratch::new());
    }

    /// [`Self::refresh_column`] with caller-owned scratch, shared
    /// across the shard loop (each shard resets it before use); see
    /// [`PatternIndex::refresh_column_with`].
    pub fn refresh_column_with(
        &mut self,
        lambda: &LabelMatrix,
        col: usize,
        scratch: &mut ResignScratch,
    ) {
        self.n = lambda.num_lfs();
        for shard in self.shards.iter_mut() {
            shard.refresh_column_with(lambda, col, scratch);
        }
    }

    /// Export the persistent state (see [`ShardedMatrixParts`]).
    pub fn to_parts(&self) -> ShardedMatrixParts {
        ShardedMatrixParts {
            num_lfs: self.n,
            shards: self.shards.iter().map(PatternIndex::to_parts).collect(),
        }
    }

    /// Rebuild a plan from exported parts, re-deriving the worker count
    /// from this machine's parallelism. Shards must be non-empty in
    /// count, contiguous, and individually well-formed; consistency with
    /// a backing matrix is the caller's check ([`Self::validate`]).
    pub fn from_parts(parts: ShardedMatrixParts) -> Result<ShardedMatrix, String> {
        if parts.shards.is_empty() {
            return Err("a plan needs at least one shard".into());
        }
        let mut shards = Vec::with_capacity(parts.shards.len());
        let mut next = 0usize;
        for (s, shard_parts) in parts.shards.into_iter().enumerate() {
            let shard =
                PatternIndex::from_parts(shard_parts).map_err(|e| format!("shard {s}: {e}"))?;
            if shard.start_row() != next {
                return Err(format!(
                    "shard {s} starts at {} but previous shard ended at {next}",
                    shard.start_row()
                ));
            }
            next = shard.row_range().end;
            shards.push(shard);
        }
        let avail = std::thread::available_parallelism().map_or(1, |c| c.get());
        Ok(ShardedMatrix {
            n: parts.num_lfs,
            workers: shards.len().min(avail),
            shards,
        })
    }

    /// Validate shard contiguity, coverage of the whole matrix, and
    /// every per-shard invariant. Returns the first violation.
    pub fn validate(&self, lambda: &LabelMatrix) -> Result<(), String> {
        if self.n != lambda.num_lfs() {
            return Err(format!(
                "plan built for {} LFs but matrix has {}",
                self.n,
                lambda.num_lfs()
            ));
        }
        let mut next = 0usize;
        for (s, shard) in self.shards.iter().enumerate() {
            if shard.start_row() != next {
                return Err(format!(
                    "shard {s} starts at {} but previous shard ended at {next}",
                    shard.start_row()
                ));
            }
            next = shard.row_range().end;
            shard
                .validate(lambda)
                .map_err(|e| format!("shard {s}: {e}"))?;
        }
        if next != lambda.num_points() {
            return Err(format!(
                "shards cover {next} rows but matrix has {}",
                lambda.num_points()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{LabelMatrixBuilder, Vote};
    use crate::MatrixDelta;

    fn sample(m: usize) -> LabelMatrix {
        let mut b = LabelMatrixBuilder::new(m, 4);
        for i in 0..m {
            match i % 3 {
                0 => {
                    b.set(i, 0, 1);
                    b.set(i, 2, -1);
                }
                1 => b.set(i, 1, 1),
                _ => {}
            }
        }
        b.build()
    }

    #[test]
    fn partition_is_contiguous_and_valid() {
        let lambda = sample(23);
        for shards in [1, 2, 3, 7, 23, 40] {
            let plan = ShardedMatrix::build(&lambda, shards);
            plan.validate(&lambda).unwrap();
            assert_eq!(plan.num_rows(), 23);
            assert!(plan.num_shards() <= 23);
            if shards <= 23 {
                assert_eq!(plan.num_shards(), shards);
            }
        }
        // 0 = all cores.
        let plan = ShardedMatrix::build(&lambda, 0);
        plan.validate(&lambda).unwrap();
    }

    #[test]
    fn map_shards_returns_shard_order() {
        let lambda = sample(30);
        let plan = ShardedMatrix::build(&lambda, 4);
        let starts = plan.map_shards(|idx| idx.start_row());
        let expected: Vec<usize> = plan.shards().iter().map(|s| s.start_row()).collect();
        assert_eq!(starts, expected);
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn append_rows_extends_tail_shard() {
        let mut lambda = sample(10);
        let mut plan = ShardedMatrix::build(&lambda, 3);
        lambda.apply_delta(&MatrixDelta::AppendRows {
            rows: vec![vec![(0, 1)], vec![], vec![(3, -1)]],
        });
        plan.append_rows(&lambda);
        plan.validate(&lambda).unwrap();
        assert_eq!(plan.num_rows(), 13);
        assert_eq!(plan.num_shards(), 3);
    }

    #[test]
    fn repeated_appends_rebalance_the_tail() {
        let mut lambda = sample(30);
        let mut plan = ShardedMatrix::build(&lambda, 3);
        // Grow 30 → 300 rows in batches; without rebalancing the tail
        // shard would hold 280 of 300 rows.
        for _ in 0..9 {
            let rows: Vec<Vec<(u32, Vote)>> = (0..30).map(|r| vec![(r % 4, 1)]).collect();
            lambda.apply_delta(&MatrixDelta::AppendRows { rows });
            plan.append_rows(&lambda);
            plan.validate(&lambda).unwrap();
        }
        assert_eq!(plan.num_rows(), 300);
        let fair = 300usize.div_ceil(plan.num_shards());
        for shard in plan.shards() {
            assert!(
                shard.num_rows() <= 2 * fair,
                "shard {}..{} holds {} rows (fair share {fair})",
                shard.start_row(),
                shard.row_range().end,
                shard.num_rows()
            );
        }
    }

    #[test]
    fn refresh_column_keeps_all_shards_consistent() {
        let mut lambda = sample(17);
        let mut plan = ShardedMatrix::build(&lambda, 4);
        lambda.apply_delta(&MatrixDelta::ReplaceColumn {
            col: 2,
            entries: vec![(1, 1), (8, 1), (16, -1)],
        });
        plan.refresh_column(&lambda, 2);
        plan.validate(&lambda).unwrap();
    }

    #[test]
    fn parts_round_trip() {
        let lambda = sample(23);
        let plan = ShardedMatrix::build(&lambda, 4);
        let back = ShardedMatrix::from_parts(plan.to_parts()).unwrap();
        back.validate(&lambda).unwrap();
        assert_eq!(back.num_shards(), plan.num_shards());
        assert_eq!(back.num_patterns(), plan.num_patterns());
        assert_eq!(back.num_lfs(), plan.num_lfs());
    }

    #[test]
    fn from_parts_rejects_gaps() {
        let lambda = sample(23);
        let plan = ShardedMatrix::build(&lambda, 4);
        let mut parts = plan.to_parts();
        parts.shards[1].start += 1; // breaks contiguity twice over
        assert!(ShardedMatrix::from_parts(parts).is_err());
        assert!(ShardedMatrix::from_parts(ShardedMatrixParts {
            num_lfs: 4,
            shards: vec![],
        })
        .is_err());
    }

    #[test]
    fn empty_matrix_gets_one_empty_shard() {
        let lambda = LabelMatrixBuilder::new(0, 2).build();
        let plan = ShardedMatrix::build(&lambda, 0);
        plan.validate(&lambda).unwrap();
        assert_eq!(plan.num_shards(), 1);
        assert_eq!(plan.num_patterns(), 0);
    }
}
