//! # snorkel-serve
//!
//! Durable snapshots and a concurrent labeling service — the deployment
//! layer Snorkel DryBell (Bach et al., 2019) argues weak supervision
//! needs at industrial scale: a long-running process with persistent
//! state that answers labeling queries, instead of a pipeline that lives
//! and dies inside one script run.
//!
//! Two layers:
//!
//! * [`snap`] — a hand-rolled, versioned, checksummed binary snapshot
//!   format round-tripping the label matrix (CSR), the label model
//!   (backend-tagged
//!   [`ModelSnapshot`](snorkel_core::label_model::ModelSnapshot) +
//!   [`TrainConfig`](snorkel_core::TrainConfig)), the `snorkel-incr`
//!   LF-result cache, and the sharded
//!   [`PatternIndex`](snorkel_matrix::PatternIndex) — so a restarted
//!   process warm-starts in milliseconds instead of re-running every LF
//!   and re-fitting from scratch, on the *same backend* it was running.
//!   Round trips are bit-exact; corrupted, truncated, wrong-version, or
//!   unknown-backend files yield a typed [`SnapError`], never a panic
//!   (v1 files, which predate backend tags, still load as the
//!   generative backend).
//! * [`server`] — a fixed worker pool of `std::net` threads
//!   multiplexing many nonblocking sockets, speaking a line-delimited
//!   text protocol (`MARGINAL`, `APPLY`, `PREDICT`, `PREDICT_TEXT`,
//!   `REFRESH`, `SNAPSHOT`, `STATS`, `SHUTDOWN`) over a shared
//!   [`IncrementalSession`](snorkel_incr::IncrementalSession)
//!   behind an `RwLock`: marginal queries and suite probes run
//!   concurrently under the read lock (with a per-generation posterior
//!   memo — the serving counterpart of pattern dedup); LF edits take
//!   the write lock, splice Λ via `MatrixDelta`, and warm-start
//!   training. `PREDICT`/`PREDICT_TEXT` answer from the **distilled
//!   discriminative model** for candidates with zero LF coverage; the
//!   disc retrain after an edit runs *outside* the write lock, so
//!   reads never block on it (the reply's `disc_gen=` shows the lag).
//!   Plus graceful shutdown, a connection cap that sheds overload with
//!   `ERR busy`, and periodic auto-snapshots.
//! * [`frame`] — binary framing v2 on the *same port*: the first byte
//!   of a request disambiguates text from binary, and the binary verbs
//!   (`OP_MARGINAL`, `OP_PREDICT`) are batched — N rows per round
//!   trip, answered under one read-lock acquisition, with replies
//!   bit-identical to N single text requests.
//! * [`hotpath`] — the allocation-free read path behind those verbs:
//!   per-worker scratch arenas ([`hotpath::ReadScratch`]), the
//!   structure-of-arrays signature memo ([`hotpath::SigMemo`]), and
//!   zero-copy decode/compute cores whose steady-state cost is **zero
//!   heap allocations per request** (enforced by a counting-allocator
//!   test in release mode; budgets in `docs/PERFORMANCE.md`).
//! * [`repl`] — leader/follower replication: a checksummed write-ahead
//!   log of mutating ops, an `OP_LOG_SUBSCRIBE` push stream for live
//!   tailing, and shared replay entry points that make follower
//!   marginals bit-identical to the leader's at every LSN (spec in
//!   `docs/REPLICATION.md`).
//!
//! ```no_run
//! use snorkel_context::Corpus;
//! use snorkel_incr::{IncrementalSession, SessionConfig};
//! use snorkel_serve::{Client, LabelServer, ServeConfig};
//!
//! let session =
//!     IncrementalSession::new(Corpus::new(), SessionConfig::default());
//! let server = LabelServer::start(session, ServeConfig::default())?;
//! let mut client = Client::connect(server.addr())?;
//! let reply = client.request("MARGINAL 0:1,2:-1")?;
//! assert!(reply.starts_with("OK "));
//! client.request("SHUTDOWN")?;
//! server.wait().unwrap();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod hotpath;
pub mod protocol;
pub mod repl;
pub mod server;
pub mod snap;
mod wire;

pub use frame::{BinReply, BinRequest, FrameClient, VoteRow};
pub use protocol::{parse_request, LfSpec, Request, SuiteEdit};
pub use repl::ReplMark;
pub use server::{Client, LabelServer, ServeConfig};
pub use snap::{SnapError, Snapshot, FORMAT_VERSION, MAGIC};
