//! Binary framing v2: length-prefixed frames with batched verbs.
//!
//! The text protocol pays one round trip, one request parse, and one
//! float formatting pass per labeled candidate. At deployment scale
//! (Snorkel DryBell's regime) those costs dominate the posterior lookup
//! itself, so v2 adds a compact binary plane on the **same port**: the
//! first byte of every request disambiguates — `0xF5` ([`FRAME_MAGIC`],
//! not a printable ASCII verb byte) starts a binary frame, anything
//! else is a text line. A connection may interleave both planes freely;
//! requests on one connection are answered strictly in order.
//!
//! ## Frame layout
//!
//! ```text
//! request:  magic(1) opcode(1) payload_len(u32 LE) payload
//! response: magic(1) status(1) payload_len(u32 LE) payload
//! ```
//!
//! `status` is [`STATUS_OK`] or [`STATUS_ERR`]. An OK payload begins
//! with the request's opcode echoed back (so a pipelining client can
//! cross-check), an ERR payload is a length-prefixed UTF-8 message.
//! Payloads are encoded with the snapshot format's little-endian
//! `Writer`/`Reader` primitives: floats travel as raw IEEE-754
//! bits (replies are bit-identical to what the server computed — the
//! text plane's shortest-round-trip formatting guarantees the same,
//! so the two planes agree to the bit), and every sequence length is
//! validated against the bytes actually remaining before anything is
//! allocated, exactly as when decoding a snapshot.
//!
//! ## Batched verbs
//!
//! Every binary verb is inherently batched: a [`OP_MARGINAL`] frame
//! carries N vote rows, a [`OP_PREDICT`] frame N feature vectors, and
//! one reply carries N posterior rows. The server executes a whole
//! batch under **one** state read-lock acquisition and one posterior-
//! memo pass, so a batch of 32 costs one syscall round trip and one
//! lock hand-off instead of 32 of each. A batch is atomic: any invalid
//! row fails the whole frame with one error frame and no partial
//! reply.
//!
//! The normative spec (opcode table, encodings, limits) lives in
//! `docs/PROTOCOL.md`; this module implements it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use snorkel_lf::Vote;

use crate::wire::{Reader, Writer};

/// First byte of every binary frame. Chosen outside the ASCII range a
/// text request can start with (verbs start `A`–`Z`), so one peek at a
/// connection's next unread byte routes it to the right parser.
pub const FRAME_MAGIC: u8 = 0xF5;

/// Bytes before the payload: magic, opcode/status, `u32` payload
/// length.
pub const FRAME_HEADER_BYTES: usize = 6;

/// Largest accepted payload (16 MiB) — the binary counterpart of the
/// text plane's `MAX_LINE_BYTES`, bounding per-connection memory
/// against a corrupt or hostile length prefix.
pub const MAX_FRAME_BYTES: u32 = 1 << 24;

/// Liveness probe. Empty request payload; reply carries the server
/// generation.
pub const OP_PING: u8 = 0x01;

/// Batched label-model posterior: N sparse vote rows in, N posterior
/// rows out (the binary, batched form of the text `MARGINAL` verb).
pub const OP_MARGINAL: u8 = 0x02;

/// Batched distilled-model prediction: N feature vectors in, N
/// posterior rows out (the binary, batched form of the text `PREDICT`
/// verb).
pub const OP_PREDICT: u8 = 0x03;

/// Batched streaming ingest: N two-span candidates in, one ingest
/// summary out (the binary, batched form of the text `INGEST` verb).
/// Refused with [`STATUS_ERR`] `backpressure` when the server's ingest
/// gate is full.
pub const OP_INGEST: u8 = 0x04;

/// Subscribe to the replication op log from a resume LSN. The OK reply
/// acknowledges the subscription; the server then *pushes*
/// [`OP_LOG_RECORD`] and [`OP_LOG_HEARTBEAT`] frames on the same
/// connection until it closes. Refused when the server has no
/// replication log or the resume LSN is outside the log's range.
pub const OP_LOG_SUBSCRIBE: u8 = 0x05;

/// Server-push frame carrying one encoded WAL record body (see
/// `docs/REPLICATION.md` for the body grammar). Never valid as a
/// request.
pub const OP_LOG_RECORD: u8 = 0x06;

/// Server-push liveness frame on an idle subscription: carries the
/// log tip and server generation so a follower can measure lag. Never
/// valid as a request.
pub const OP_LOG_HEARTBEAT: u8 = 0x07;

/// Response status byte: the request succeeded.
pub const STATUS_OK: u8 = 0x00;

/// Response status byte: the whole frame failed; payload is a message.
pub const STATUS_ERR: u8 = 0x01;

/// One sparse vote row: LF columns (strictly increasing) and their
/// non-abstain votes, parallel arrays.
pub type VoteRow = (Vec<u32>, Vec<Vote>);

/// One ingest row: two token-range spans plus the sentence text — the
/// binary counterpart of the text `INGEST` grammar.
pub type IngestRow = ((usize, usize), (usize, usize), String);

/// A decoded binary request.
#[derive(Clone, Debug, PartialEq)]
pub enum BinRequest {
    /// [`OP_PING`].
    Ping,
    /// [`OP_MARGINAL`]: one batch of vote rows.
    Marginal(Vec<VoteRow>),
    /// [`OP_PREDICT`]: one batch of feature vectors.
    Predict(Vec<Vec<String>>),
    /// [`OP_INGEST`]: one batch of candidates to stream in.
    Ingest(Vec<IngestRow>),
    /// [`OP_LOG_SUBSCRIBE`]: tail the replication log starting at this
    /// LSN.
    LogSubscribe {
        /// First LSN the subscriber wants (its applied LSN + 1).
        from: u64,
    },
}

/// A decoded binary reply.
#[derive(Clone, Debug, PartialEq)]
pub enum BinReply {
    /// OK reply to [`OP_PING`].
    Pong {
        /// Server generation.
        gen: u64,
    },
    /// OK reply to [`OP_MARGINAL`]: one posterior row per request row.
    Marginal {
        /// Server generation the batch was answered at.
        gen: u64,
        /// Posterior rows, parallel to the request's vote rows.
        probs: Vec<Vec<f64>>,
    },
    /// OK reply to [`OP_PREDICT`]: one posterior row per feature
    /// vector.
    Predict {
        /// Server generation the batch was answered at.
        gen: u64,
        /// Refresh generation the serving distilled model was trained
        /// on.
        disc_gen: u64,
        /// Posterior rows, parallel to the request's feature vectors.
        probs: Vec<Vec<f64>>,
    },
    /// OK reply to [`OP_INGEST`]: one summary for the whole batch.
    Ingest {
        /// Server generation after the ingest (bumped when the online
        /// moment solve or an auto-refit ran).
        gen: u64,
        /// Rows ingested by this frame.
        rows: u64,
        /// Total corpus rows after the ingest.
        total: u64,
        /// Whether the online moment fast path re-solved the model
        /// (no pass over Λ).
        online: bool,
        /// Overall drift score after the batch (max over LFs).
        drift_score: f64,
        /// Whether drift crossed the threshold and triggered an
        /// automatic warm refit.
        auto_refit: bool,
    },
    /// OK reply to [`OP_LOG_SUBSCRIBE`]: the subscription is live.
    SubAck {
        /// First LSN the server will push (the requested resume point).
        next: u64,
        /// Log tip at subscription time.
        tip: u64,
        /// Server generation at subscription time.
        gen: u64,
    },
    /// Server-push [`OP_LOG_RECORD`]: one encoded WAL record body.
    LogRecord {
        /// The record body (`lsn | gen_after | op`), exactly the bytes
        /// whose checksum the leader's WAL holds.
        body: Vec<u8>,
    },
    /// Server-push [`OP_LOG_HEARTBEAT`] on an idle subscription.
    Heartbeat {
        /// Log tip at send time — `tip - applied_lsn` is the
        /// follower's lag in records.
        tip: u64,
        /// Server generation at send time.
        gen: u64,
    },
    /// Error frame: the whole request frame was rejected.
    Err {
        /// Human-readable reason, as on the text plane's `ERR` lines.
        message: String,
    },
}

/// The metric label / trace-span name for an opcode (`None` for an
/// opcode the protocol does not define).
pub fn opcode_name(opcode: u8) -> Option<&'static str> {
    match opcode {
        OP_PING => Some("PING"),
        OP_MARGINAL => Some("MARGINAL"),
        OP_PREDICT => Some("PREDICT"),
        OP_INGEST => Some("INGEST"),
        OP_LOG_SUBSCRIBE => Some("LOG_SUBSCRIBE"),
        OP_LOG_RECORD => Some("LOG_RECORD"),
        OP_LOG_HEARTBEAT => Some("LOG_HEARTBEAT"),
        _ => None,
    }
}

fn finish(kind: u8, tag: u8, payload: Writer) -> Vec<u8> {
    let body = payload.into_bytes();
    debug_assert!(body.len() <= MAX_FRAME_BYTES as usize);
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + body.len());
    out.push(kind);
    out.push(tag);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

fn request_frame(opcode: u8, payload: Writer) -> Vec<u8> {
    finish(FRAME_MAGIC, opcode, payload)
}

fn reply_frame(status: u8, payload: Writer) -> Vec<u8> {
    finish(FRAME_MAGIC, status, payload)
}

/// Encode an [`OP_PING`] request frame.
pub fn encode_ping() -> Vec<u8> {
    request_frame(OP_PING, Writer::new())
}

/// Encode an [`OP_MARGINAL`] request frame over a batch of vote rows.
pub fn encode_marginal(rows: &[VoteRow]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(rows.len() as u32);
    for (cols, votes) in rows {
        w.put_u32(cols.len() as u32);
        for (&c, &v) in cols.iter().zip(votes) {
            w.put_u32(c);
            w.put_i8(v);
        }
    }
    request_frame(OP_MARGINAL, w)
}

/// Encode an [`OP_PREDICT`] request frame over a batch of feature
/// vectors.
pub fn encode_predict(rows: &[Vec<String>]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(rows.len() as u32);
    for feats in rows {
        w.put_u32(feats.len() as u32);
        for f in feats {
            w.put_str(f);
        }
    }
    request_frame(OP_PREDICT, w)
}

/// Encode an [`OP_INGEST`] request frame over a batch of candidate
/// rows.
pub fn encode_ingest(rows: &[IngestRow]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(rows.len() as u32);
    for (span1, span2, text) in rows {
        w.put_usize(span1.0);
        w.put_usize(span1.1);
        w.put_usize(span2.0);
        w.put_usize(span2.1);
        w.put_str(text);
    }
    request_frame(OP_INGEST, w)
}

/// Encode an [`OP_LOG_SUBSCRIBE`] request frame.
pub fn encode_log_subscribe(from: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(from);
    request_frame(OP_LOG_SUBSCRIBE, w)
}

/// Encode the OK reply to [`OP_LOG_SUBSCRIBE`].
pub fn encode_sub_ack(next: u64, tip: u64, gen: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(OP_LOG_SUBSCRIBE);
    w.put_u64(next);
    w.put_u64(tip);
    w.put_u64(gen);
    reply_frame(STATUS_OK, w)
}

/// Append an [`OP_LOG_RECORD`] push frame carrying one record body.
pub fn encode_log_record_into(body: &[u8], out: &mut Vec<u8>) {
    let len_at = begin_reply_into(STATUS_OK, out);
    out.push(OP_LOG_RECORD);
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(body);
    end_reply_into(len_at, out);
}

/// Append an [`OP_LOG_HEARTBEAT`] push frame.
pub fn encode_heartbeat_into(tip: u64, gen: u64, out: &mut Vec<u8>) {
    let len_at = begin_reply_into(STATUS_OK, out);
    out.push(OP_LOG_HEARTBEAT);
    out.extend_from_slice(&tip.to_le_bytes());
    out.extend_from_slice(&gen.to_le_bytes());
    end_reply_into(len_at, out);
}

/// Encode an error reply frame.
pub fn encode_err(message: &str) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str(message);
    reply_frame(STATUS_ERR, w)
}

/// Encode the OK reply to [`OP_PING`].
pub fn encode_pong(gen: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(OP_PING);
    w.put_u64(gen);
    reply_frame(STATUS_OK, w)
}

fn put_prob_rows(w: &mut Writer, probs: &[Vec<f64>]) {
    w.put_u32(probs.len() as u32);
    for row in probs {
        w.put_u32(row.len() as u32);
        for &p in row {
            w.put_f64(p);
        }
    }
}

/// Encode the OK reply to [`OP_MARGINAL`].
pub fn encode_marginal_reply(gen: u64, probs: &[Vec<f64>]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(OP_MARGINAL);
    w.put_u64(gen);
    put_prob_rows(&mut w, probs);
    reply_frame(STATUS_OK, w)
}

/// Encode the OK reply to [`OP_PREDICT`].
pub fn encode_predict_reply(gen: u64, disc_gen: u64, probs: &[Vec<f64>]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(OP_PREDICT);
    w.put_u64(gen);
    w.put_u64(disc_gen);
    put_prob_rows(&mut w, probs);
    reply_frame(STATUS_OK, w)
}

/// Encode the OK reply to [`OP_INGEST`].
pub fn encode_ingest_reply(
    gen: u64,
    rows: u64,
    total: u64,
    online: bool,
    drift_score: f64,
    auto_refit: bool,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(OP_INGEST);
    w.put_u64(gen);
    w.put_u64(rows);
    w.put_u64(total);
    w.put_u8(u8::from(online));
    w.put_f64(drift_score);
    w.put_u8(u8::from(auto_refit));
    reply_frame(STATUS_OK, w)
}

/// Open an OK reply frame directly in `out`, returning the offset of
/// the 4-byte length field for [`end_reply_into`] to backpatch. With
/// [`put_prob_rows_flat`] this is the allocation-free encode path: the
/// reply is appended to the connection's (capacity-retaining) output
/// buffer instead of assembled in a fresh `Writer`.
fn begin_reply_into(status: u8, out: &mut Vec<u8>) -> usize {
    out.push(FRAME_MAGIC);
    out.push(status);
    let len_at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    len_at
}

/// Backpatch the payload length opened by [`begin_reply_into`].
fn end_reply_into(len_at: usize, out: &mut [u8]) {
    let len = (out.len() - len_at - 4) as u32;
    debug_assert!(len <= MAX_FRAME_BYTES);
    out[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Append the posterior-rows section for a batch whose rows all share
/// one width (`flat[i*width..(i+1)*width]` is row `i`) — byte-identical
/// to [`put_prob_rows`] over the equivalent `Vec<Vec<f64>>`.
fn put_prob_rows_flat(flat: &[f64], width: usize, out: &mut Vec<u8>) {
    assert!(width > 0, "posterior rows have at least one class");
    assert_eq!(flat.len() % width, 0, "flat buffer is whole rows");
    let rows = flat.len() / width;
    out.extend_from_slice(&(rows as u32).to_le_bytes());
    for row in flat.chunks_exact(width) {
        out.extend_from_slice(&(width as u32).to_le_bytes());
        for &p in row {
            out.extend_from_slice(&p.to_bits().to_le_bytes());
        }
    }
}

/// Append the OK reply to [`OP_MARGINAL`] for uniform-width posterior
/// rows stored flat. Byte-identical to [`encode_marginal_reply`] over
/// the same values; appending to `out` (instead of returning a fresh
/// `Vec`) is what keeps the steady-state batch path allocation-free.
pub fn encode_marginal_reply_flat_into(gen: u64, flat: &[f64], width: usize, out: &mut Vec<u8>) {
    let len_at = begin_reply_into(STATUS_OK, out);
    out.push(OP_MARGINAL);
    out.extend_from_slice(&gen.to_le_bytes());
    put_prob_rows_flat(flat, width, out);
    end_reply_into(len_at, out);
}

/// Append the OK reply to [`OP_PREDICT`] for uniform-width posterior
/// rows stored flat — the allocation-free counterpart of
/// [`encode_predict_reply`].
pub fn encode_predict_reply_flat_into(
    gen: u64,
    disc_gen: u64,
    flat: &[f64],
    width: usize,
    out: &mut Vec<u8>,
) {
    let len_at = begin_reply_into(STATUS_OK, out);
    out.push(OP_PREDICT);
    out.extend_from_slice(&gen.to_le_bytes());
    out.extend_from_slice(&disc_gen.to_le_bytes());
    put_prob_rows_flat(flat, width, out);
    end_reply_into(len_at, out);
}

/// `Reader` errors become wire error messages (the reader's
/// length-vs-remaining validation is what rejects corrupt counts
/// before any allocation).
macro_rules! rd {
    ($e:expr) => {
        $e.map_err(|e| format!("bad frame: {e}"))?
    };
}

/// A `Reader` error in wire-message form — the function behind the
/// `rd!` macro, shared with the zero-copy decoders in
/// [`crate::hotpath`] so both decode paths reject a malformed frame
/// with the identical message.
pub(crate) fn wire_err(e: crate::snap::SnapError) -> String {
    format!("bad frame: {e}")
}

/// Read a batch count, rejecting empty batches (a zero-row batch is a
/// protocol error, mirroring the text plane's "needs a vote list" /
/// "needs at least one feature").
pub(crate) fn batch_len(
    r: &mut Reader,
    min_elem_bytes: usize,
    what: &str,
) -> Result<usize, String> {
    let n = u32_len(r, min_elem_bytes, "batch count")?;
    if n == 0 {
        return Err(format!("empty batch of {what}"));
    }
    Ok(n)
}

/// Read a `u32` count and validate it against the bytes remaining,
/// like `Reader::len` does for `u64` prefixes.
pub(crate) fn u32_len(
    r: &mut Reader,
    min_elem_bytes: usize,
    context: &'static str,
) -> Result<usize, String> {
    let n = rd!(r.u32(context)) as usize;
    if n.checked_mul(min_elem_bytes.max(1))
        .is_none_or(|bytes| bytes > r.remaining())
    {
        return Err(format!(
            "bad frame: {context} {n} exceeds the bytes remaining"
        ));
    }
    Ok(n)
}

/// Decode a request frame's payload. Rejects unknown opcodes, torn or
/// trailing bytes, empty batches, unsorted columns, and abstain votes
/// — everything the text parser would reject, so the two planes admit
/// the same request space.
pub fn decode_request(opcode: u8, payload: &[u8]) -> Result<BinRequest, String> {
    let mut r = Reader::new(payload);
    let req = match opcode {
        OP_PING => BinRequest::Ping,
        OP_MARGINAL => {
            // A row is at least 4 bytes (its count); an entry 5.
            let n = batch_len(&mut r, 4, "vote rows")?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let k = u32_len(&mut r, 5, "vote-row length")?;
                if k == 0 {
                    return Err("empty vote row".into());
                }
                let mut cols = Vec::with_capacity(k);
                let mut votes = Vec::with_capacity(k);
                for _ in 0..k {
                    let col = rd!(r.u32("vote column"));
                    let vote = rd!(r.i8("vote"));
                    if cols.last().is_some_and(|&prev| prev >= col) {
                        return Err("columns must be strictly increasing".into());
                    }
                    if vote == 0 {
                        return Err("votes in requests must be non-abstain".into());
                    }
                    cols.push(col);
                    votes.push(vote);
                }
                rows.push((cols, votes));
            }
            BinRequest::Marginal(rows)
        }
        OP_PREDICT => {
            let n = batch_len(&mut r, 4, "feature vectors")?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let k = u32_len(&mut r, 8, "feature-vector length")?;
                if k == 0 {
                    return Err("PREDICT needs at least one feature".into());
                }
                let mut feats = Vec::with_capacity(k);
                for _ in 0..k {
                    feats.push(rd!(r.str("feature name")));
                }
                rows.push(feats);
            }
            BinRequest::Predict(rows)
        }
        OP_INGEST => {
            // A row is at least four 8-byte span bounds plus an 8-byte
            // string length prefix.
            let n = batch_len(&mut r, 40, "ingest rows")?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let span1 = (rd!(r.usize("span1 start")), rd!(r.usize("span1 end")));
                let span2 = (rd!(r.usize("span2 start")), rd!(r.usize("span2 end")));
                let text = rd!(r.str("sentence text"));
                if text.trim().is_empty() {
                    return Err("INGEST missing sentence text".into());
                }
                rows.push((span1, span2, text));
            }
            BinRequest::Ingest(rows)
        }
        OP_LOG_SUBSCRIBE => BinRequest::LogSubscribe {
            from: rd!(r.u64("resume LSN")),
        },
        OP_LOG_RECORD | OP_LOG_HEARTBEAT => {
            return Err(format!(
                "opcode 0x{opcode:02x} is server-push only, not a request"
            ))
        }
        other => return Err(format!("unknown opcode 0x{other:02x}")),
    };
    if !r.is_exhausted() {
        return Err(format!("{} trailing bytes in frame", r.remaining()));
    }
    Ok(req)
}

fn prob_rows(r: &mut Reader) -> Result<Vec<Vec<f64>>, String> {
    let n = u32_len(r, 4, "posterior batch count")?;
    let mut probs = Vec::with_capacity(n);
    for _ in 0..n {
        let k = u32_len(r, 8, "posterior row length")?;
        let mut row = Vec::with_capacity(k);
        for _ in 0..k {
            row.push(rd!(r.f64("posterior")));
        }
        probs.push(row);
    }
    Ok(probs)
}

/// Decode a reply frame's payload given its status byte.
pub fn decode_reply(status: u8, payload: &[u8]) -> Result<BinReply, String> {
    let mut r = Reader::new(payload);
    let reply = match status {
        STATUS_ERR => BinReply::Err {
            message: rd!(r.str("error message")),
        },
        STATUS_OK => {
            let opcode = rd!(r.u8("opcode echo"));
            match opcode {
                OP_PING => BinReply::Pong {
                    gen: rd!(r.u64("generation")),
                },
                OP_MARGINAL => BinReply::Marginal {
                    gen: rd!(r.u64("generation")),
                    probs: prob_rows(&mut r)?,
                },
                OP_PREDICT => BinReply::Predict {
                    gen: rd!(r.u64("generation")),
                    disc_gen: rd!(r.u64("disc generation")),
                    probs: prob_rows(&mut r)?,
                },
                OP_INGEST => BinReply::Ingest {
                    gen: rd!(r.u64("generation")),
                    rows: rd!(r.u64("ingested rows")),
                    total: rd!(r.u64("total rows")),
                    online: rd!(r.u8("online flag")) != 0,
                    drift_score: rd!(r.f64("drift score")),
                    auto_refit: rd!(r.u8("auto-refit flag")) != 0,
                },
                OP_LOG_SUBSCRIBE => BinReply::SubAck {
                    next: rd!(r.u64("next LSN")),
                    tip: rd!(r.u64("log tip")),
                    gen: rd!(r.u64("generation")),
                },
                OP_LOG_RECORD => BinReply::LogRecord {
                    body: rd!(r.bytes("record body")).to_vec(),
                },
                OP_LOG_HEARTBEAT => BinReply::Heartbeat {
                    tip: rd!(r.u64("log tip")),
                    gen: rd!(r.u64("generation")),
                },
                other => return Err(format!("unknown opcode echo 0x{other:02x}")),
            }
        }
        other => return Err(format!("unknown status byte 0x{other:02x}")),
    };
    if !r.is_exhausted() {
        return Err(format!("{} trailing bytes in reply", r.remaining()));
    }
    Ok(reply)
}

/// Minimal blocking binary-plane client for tests, benches, and the CI
/// smoke script — the [`FrameClient`] counterpart of the text
/// [`Client`](crate::Client). One frame out, one frame back, strictly
/// in order; [`Self::send_raw`] lets callers pipeline several frames
/// in one write and drain the replies with [`Self::read_reply`].
pub struct FrameClient {
    stream: TcpStream,
}

fn invalid(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

impl FrameClient {
    /// Connect to a running server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<FrameClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(FrameClient { stream })
    }

    /// Write pre-encoded frame bytes (one frame or several,
    /// back-to-back) without reading anything.
    pub fn send_raw(&mut self, frames: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(frames)?;
        self.stream.flush()
    }

    /// Read exactly one reply frame (blocking).
    pub fn read_reply(&mut self) -> std::io::Result<BinReply> {
        let mut header = [0u8; FRAME_HEADER_BYTES];
        self.stream.read_exact(&mut header)?;
        if header[0] != FRAME_MAGIC {
            return Err(invalid(format!("bad reply magic 0x{:02x}", header[0])));
        }
        let len = u32::from_le_bytes(header[2..6].try_into().expect("4 bytes"));
        if len > MAX_FRAME_BYTES {
            return Err(invalid(format!(
                "reply payload {len} exceeds the frame cap"
            )));
        }
        let mut payload = vec![0u8; len as usize];
        self.stream.read_exact(&mut payload)?;
        decode_reply(header[1], &payload).map_err(invalid)
    }

    fn round_trip(&mut self, frame: &[u8]) -> std::io::Result<BinReply> {
        self.send_raw(frame)?;
        self.read_reply()
    }

    /// `OP_PING` round trip.
    pub fn ping(&mut self) -> std::io::Result<BinReply> {
        self.round_trip(&encode_ping())
    }

    /// Batched `OP_MARGINAL` round trip.
    pub fn marginal(&mut self, rows: &[VoteRow]) -> std::io::Result<BinReply> {
        self.round_trip(&encode_marginal(rows))
    }

    /// Batched `OP_PREDICT` round trip.
    pub fn predict(&mut self, rows: &[Vec<String>]) -> std::io::Result<BinReply> {
        self.round_trip(&encode_predict(rows))
    }

    /// Batched `OP_INGEST` round trip.
    pub fn ingest(&mut self, rows: &[IngestRow]) -> std::io::Result<BinReply> {
        self.round_trip(&encode_ingest(rows))
    }

    /// `OP_LOG_SUBSCRIBE` round trip: request a tail from `from` and
    /// read the acknowledgement (or error). On success the server
    /// starts pushing frames — drain them with [`Self::read_reply`].
    pub fn subscribe(&mut self, from: u64) -> std::io::Result<BinReply> {
        self.round_trip(&encode_log_subscribe(from))
    }

    /// Bound every subsequent read (`None` removes the bound) — a
    /// tailing follower uses this to notice a silent leader inside one
    /// heartbeat interval or two instead of blocking forever.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }
}

impl From<TcpStream> for FrameClient {
    /// Wrap an already-connected stream (e.g. one opened with
    /// `TcpStream::connect_timeout`).
    fn from(stream: TcpStream) -> FrameClient {
        FrameClient { stream }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(frame: &[u8]) -> (u8, &[u8]) {
        assert_eq!(frame[0], FRAME_MAGIC);
        let len = u32::from_le_bytes(frame[2..6].try_into().unwrap()) as usize;
        assert_eq!(
            frame.len(),
            FRAME_HEADER_BYTES + len,
            "length prefix honest"
        );
        (frame[1], &frame[FRAME_HEADER_BYTES..])
    }

    #[test]
    fn requests_round_trip() {
        let rows: Vec<VoteRow> = vec![(vec![0, 3], vec![1, -1]), (vec![2], vec![1])];
        let frame = encode_marginal(&rows);
        let (op, body) = payload(&frame);
        assert_eq!(
            decode_request(op, body).unwrap(),
            BinRequest::Marginal(rows)
        );

        let feats = vec![vec!["btw=cause".to_string(), "u=x".to_string()]];
        let frame = encode_predict(&feats);
        let (op, body) = payload(&frame);
        assert_eq!(
            decode_request(op, body).unwrap(),
            BinRequest::Predict(feats)
        );

        let frame = encode_ping();
        let (op, body) = payload(&frame);
        assert_eq!(decode_request(op, body).unwrap(), BinRequest::Ping);

        let rows: Vec<IngestRow> = vec![
            ((0, 1), (2, 3), "a causes b".into()),
            ((1, 2), (3, 4), "x treats y".into()),
        ];
        let frame = encode_ingest(&rows);
        let (op, body) = payload(&frame);
        assert_eq!(decode_request(op, body).unwrap(), BinRequest::Ingest(rows));
    }

    #[test]
    fn replies_round_trip_bit_exactly() {
        let probs = vec![
            vec![0.1, 0.9],
            vec![f64::from_bits(0x7FF8_0000_0000_1234), -0.0],
        ];
        let frame = encode_marginal_reply(7, &probs);
        let (status, body) = payload(&frame);
        match decode_reply(status, body).unwrap() {
            BinReply::Marginal { gen, probs: back } => {
                assert_eq!(gen, 7);
                let bits = |rows: &[Vec<f64>]| -> Vec<Vec<u64>> {
                    rows.iter()
                        .map(|r| r.iter().map(|p| p.to_bits()).collect())
                        .collect()
                };
                assert_eq!(bits(&back), bits(&probs), "NaN payloads included");
            }
            other => panic!("unexpected reply {other:?}"),
        }
        let frame = encode_err("nope");
        let (status, body) = payload(&frame);
        assert_eq!(
            decode_reply(status, body).unwrap(),
            BinReply::Err {
                message: "nope".into()
            }
        );

        // Ingest reply, drift score bit-exact.
        let score = f64::from_bits(0x3FD5_5555_5555_5555);
        let frame = encode_ingest_reply(9, 32, 1024, true, score, false);
        let (status, body) = payload(&frame);
        match decode_reply(status, body).unwrap() {
            BinReply::Ingest {
                gen,
                rows,
                total,
                online,
                drift_score,
                auto_refit,
            } => {
                assert_eq!((gen, rows, total), (9, 32, 1024));
                assert!(online && !auto_refit);
                assert_eq!(drift_score.to_bits(), score.to_bits());
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn flat_reply_encoders_match_the_writer_encoders_byte_for_byte() {
        let probs = vec![
            vec![0.25, 0.75],
            vec![f64::from_bits(0x7FF8_0000_0000_1234), -0.0],
            vec![1.0, 0.0],
        ];
        let flat: Vec<f64> = probs.iter().flatten().copied().collect();

        let reference = encode_marginal_reply(42, &probs);
        let mut appended = vec![0xAB, 0xCD]; // pre-existing bytes survive
        encode_marginal_reply_flat_into(42, &flat, 2, &mut appended);
        assert_eq!(&appended[..2], &[0xAB, 0xCD]);
        assert_eq!(&appended[2..], &reference[..]);

        let reference = encode_predict_reply(7, 5, &probs);
        let mut appended = Vec::new();
        encode_predict_reply_flat_into(7, 5, &flat, 2, &mut appended);
        assert_eq!(appended, reference);
    }

    #[test]
    fn replication_frames_round_trip() {
        let frame = encode_log_subscribe(42);
        let (op, body) = payload(&frame);
        assert_eq!(
            decode_request(op, body).unwrap(),
            BinRequest::LogSubscribe { from: 42 }
        );

        let frame = encode_sub_ack(42, 99, 7);
        let (status, body) = payload(&frame);
        assert_eq!(
            decode_reply(status, body).unwrap(),
            BinReply::SubAck {
                next: 42,
                tip: 99,
                gen: 7
            }
        );

        let mut frame = Vec::new();
        encode_log_record_into(&[1, 2, 3, 0xFF], &mut frame);
        let (status, body) = payload(&frame);
        assert_eq!(
            decode_reply(status, body).unwrap(),
            BinReply::LogRecord {
                body: vec![1, 2, 3, 0xFF]
            }
        );

        let mut frame = Vec::new();
        encode_heartbeat_into(12, 3, &mut frame);
        let (status, body) = payload(&frame);
        assert_eq!(
            decode_reply(status, body).unwrap(),
            BinReply::Heartbeat { tip: 12, gen: 3 }
        );

        // Push opcodes are not valid requests.
        for op in [OP_LOG_RECORD, OP_LOG_HEARTBEAT] {
            assert!(decode_request(op, &[])
                .unwrap_err()
                .contains("server-push only"));
        }
    }

    #[test]
    fn invalid_requests_are_rejected() {
        // Unknown opcode.
        assert!(decode_request(0x7E, &[]).is_err());
        // Empty batch.
        let frame = encode_marginal(&[]);
        let (op, body) = payload(&frame);
        assert!(decode_request(op, body)
            .unwrap_err()
            .contains("empty batch"));
        // Unsorted columns.
        let frame = encode_marginal(&[(vec![3, 0], vec![1, 1])]);
        let (op, body) = payload(&frame);
        assert!(decode_request(op, body)
            .unwrap_err()
            .contains("strictly increasing"));
        // Abstain vote.
        let frame = encode_marginal(&[(vec![0], vec![0])]);
        let (op, body) = payload(&frame);
        assert!(decode_request(op, body)
            .unwrap_err()
            .contains("non-abstain"));
        // A count field larger than the bytes behind it is rejected
        // before allocation (the Reader::len-style validation).
        let mut w = Writer::new();
        w.put_u32(1_000_000);
        let body = w.into_bytes();
        assert!(decode_request(OP_MARGINAL, &body)
            .unwrap_err()
            .contains("exceeds the bytes remaining"));
        // Trailing garbage after a complete request.
        let frame = encode_ping();
        let (op, _) = payload(&frame);
        assert!(decode_request(op, &[0xAA])
            .unwrap_err()
            .contains("trailing bytes"));
        // Empty ingest batch / blank sentence text.
        let frame = encode_ingest(&[]);
        let (op, body) = payload(&frame);
        assert!(decode_request(op, body)
            .unwrap_err()
            .contains("empty batch"));
        let frame = encode_ingest(&[((0, 1), (2, 3), "  ".into())]);
        let (op, body) = payload(&frame);
        assert!(decode_request(op, body)
            .unwrap_err()
            .contains("missing sentence text"));
    }
}
