//! The line-delimited request protocol and the wire-expressible LF
//! grammar.
//!
//! Requests are single text lines; responses are single lines starting
//! `OK ` or `ERR `. Floats in responses use Rust's shortest
//! round-trip formatting, so a client parsing them back gets the exact
//! `f64` the server computed — the torn-read harness relies on this.
//!
//! ```text
//! PING
//! MARGINAL <col>:<vote>[,<col>:<vote>…]        posterior for one vote row
//! APPLY <s1> <e1> <s2> <e2> <text…>            run the live suite on a transient
//!                                              candidate (token-range spans)
//! PREDICT <feature…>                           distilled-model posterior for raw
//!                                              feature strings (no LF coverage needed)
//! PREDICT_TEXT <s1> <e1> <s2> <e2> <text…>     featurize a transient candidate and
//!                                              answer from the distilled model
//! INGEST <s1> <e1> <s2> <e2> <text…>           append a candidate to the corpus and
//!                                              absorb it through the streaming plane
//! REFRESH                                      re-label with the current suite
//! REFRESH ADD <lf-spec>                        add an LF, then refresh
//! REFRESH EDIT <lf-spec>                       replace the same-named LF, then refresh
//! REFRESH REMOVE <name>                        drop an LF, then refresh
//! SNAPSHOT [path]                              write a snapshot now
//! STATS                                        counters and suite layout
//! METRICS                                      Prometheus-text exposition (multi-line)
//! SLOWLOG <n>                                  n slowest recent requests (multi-line)
//! PROMOTE                                      seal the log, flip follower → leader
//! SHUTDOWN                                     graceful stop
//! ```
//!
//! `METRICS` and `SLOWLOG` are the only verbs with multi-line replies:
//! a header `OK … lines=<k>` followed by exactly `k` raw payload lines.
//!
//! The normative wire grammar — every verb, reply shape, and error —
//! lives in `docs/PROTOCOL.md`; this module documents the subset it
//! implements.
//!
//! LF specs (the REFRESH payload) cover the declarative operator
//! families that are expressible as data — arbitrary closure LFs cannot
//! cross a wire:
//!
//! ```text
//! <name> KEYWORD <fwd-label> <rev-label> <kw>[,<kw>…]   KeywordBetweenLf
//! <name> PATTERN <label> <template…>                    PatternLf
//! ```

use snorkel_lf::{BoxedLf, KeywordBetweenLf, PatternLf, Vote};

/// A parsed, wire-expressible labeling-function definition. Its
/// [`content tag`](LfSpec::content_tag) is derived from the canonical
/// spec text, so re-submitting an identical spec (including reverting an
/// edit) is a full LF-cache hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LfSpec {
    /// [`KeywordBetweenLf`]: keyword among the tokens between the two
    /// argument spans, direction-sensitive labels.
    Keyword {
        /// LF name.
        name: String,
        /// Keywords (lowercased, matched case-insensitively).
        keywords: Vec<String>,
        /// Vote when span 0 precedes span 1.
        label_forward: Vote,
        /// Vote when span 1 precedes span 0.
        label_reverse: Vote,
    },
    /// [`PatternLf`]: slot-template pattern over the sentence text.
    Pattern {
        /// LF name.
        name: String,
        /// Slot template source (see `snorkel_pattern::SlotTemplate`).
        template: String,
        /// Vote on a match.
        label: Vote,
    },
}

impl LfSpec {
    /// The LF's name.
    pub fn name(&self) -> &str {
        match self {
            LfSpec::Keyword { name, .. } | LfSpec::Pattern { name, .. } => name,
        }
    }

    /// Parse the `<lf-spec>` grammar (everything after `REFRESH ADD`
    /// or `REFRESH EDIT`).
    pub fn parse(spec: &str) -> Result<LfSpec, String> {
        let mut tokens = spec.split_whitespace();
        let name = tokens.next().ok_or("missing LF name")?.to_string();
        let kind = tokens.next().ok_or("missing LF kind")?;
        match kind {
            "KEYWORD" => {
                let fwd = parse_vote(tokens.next().ok_or("missing forward label")?)?;
                let rev = parse_vote(tokens.next().ok_or("missing reverse label")?)?;
                let kws = tokens.next().ok_or("missing keyword list")?;
                if tokens.next().is_some() {
                    return Err("trailing tokens after keyword list".into());
                }
                let keywords: Vec<String> = kws
                    .split(',')
                    .filter(|k| !k.is_empty())
                    .map(|k| k.to_lowercase())
                    .collect();
                if keywords.is_empty() {
                    return Err("empty keyword list".into());
                }
                Ok(LfSpec::Keyword {
                    name,
                    keywords,
                    label_forward: fwd,
                    label_reverse: rev,
                })
            }
            "PATTERN" => {
                let label = parse_vote(tokens.next().ok_or("missing label")?)?;
                let template: Vec<&str> = tokens.collect();
                if template.is_empty() {
                    return Err("missing pattern template".into());
                }
                Ok(LfSpec::Pattern {
                    name,
                    template: template.join(" "),
                    label,
                })
            }
            other => Err(format!("unknown LF kind {other:?} (KEYWORD | PATTERN)")),
        }
    }

    /// Canonical spec text — what [`Self::content_tag`] hashes and what
    /// `STATS` echoes back.
    pub fn canonical(&self) -> String {
        match self {
            LfSpec::Keyword {
                name,
                keywords,
                label_forward,
                label_reverse,
            } => format!(
                "{name} KEYWORD {label_forward} {label_reverse} {}",
                keywords.join(",")
            ),
            LfSpec::Pattern {
                name,
                template,
                label,
            } => format!("{name} PATTERN {label} {template}"),
        }
    }

    /// Content tag for the session cache: identical specs (including a
    /// revert to an earlier spec) reproduce the same fingerprint, so
    /// nothing is re-executed.
    pub fn content_tag(&self) -> u64 {
        snorkel_incr::Fingerprint::content_tag(self.canonical())
    }

    /// Construct the labeling function this spec describes.
    pub fn build(&self) -> Result<BoxedLf, String> {
        match self {
            LfSpec::Keyword {
                name,
                keywords,
                label_forward,
                label_reverse,
            } => {
                let refs: Vec<&str> = keywords.iter().map(String::as_str).collect();
                Ok(Box::new(KeywordBetweenLf::new(
                    name.clone(),
                    &refs,
                    *label_forward,
                    *label_reverse,
                )))
            }
            LfSpec::Pattern {
                name,
                template,
                label,
            } => PatternLf::new(name.clone(), template, *label)
                .map(|lf| Box::new(lf) as BoxedLf)
                .map_err(|e| format!("bad pattern template: {e}")),
        }
    }
}

/// A suite mutation carried by `REFRESH`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SuiteEdit {
    /// `REFRESH ADD <lf-spec>`.
    Add(LfSpec),
    /// `REFRESH EDIT <lf-spec>`.
    Edit(LfSpec),
    /// `REFRESH REMOVE <name>`.
    Remove(String),
}

/// One parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Posterior for one sparse vote row, `(cols, votes)` sorted by
    /// column.
    Marginal {
        /// Voting LF columns, strictly increasing.
        cols: Vec<u32>,
        /// Votes parallel to `cols` (non-abstain).
        votes: Vec<Vote>,
    },
    /// Run the live suite on a transient two-span candidate.
    Apply {
        /// Token range `[start, end)` of span 0.
        span1: (usize, usize),
        /// Token range `[start, end)` of span 1.
        span2: (usize, usize),
        /// Sentence text (tokenized server-side).
        text: String,
    },
    /// Distilled-model posterior for raw feature strings (hashed
    /// server-side) — answers for candidates with zero LF coverage.
    Predict {
        /// Feature names, e.g. `btw=causes` (at least one).
        features: Vec<String>,
    },
    /// Featurize a transient two-span candidate and answer from the
    /// distilled model (same span grammar as [`Request::Apply`]).
    PredictText {
        /// Token range `[start, end)` of span 0.
        span1: (usize, usize),
        /// Token range `[start, end)` of span 1.
        span2: (usize, usize),
        /// Sentence text (tokenized server-side).
        text: String,
    },
    /// Append candidates to the corpus and absorb them through the
    /// streaming plane (online moment update, no cold fit). The text
    /// verb carries a batch of one; the binary `OP_INGEST` frame
    /// carries many rows in the same shape.
    Ingest {
        /// Candidate rows: two token-range spans plus the sentence
        /// text, the same grammar as [`Request::Apply`].
        rows: Vec<crate::frame::IngestRow>,
    },
    /// Re-label, optionally after a suite edit.
    Refresh(Option<SuiteEdit>),
    /// Write a snapshot, to the given path or the server's configured
    /// one.
    Snapshot {
        /// Optional explicit target path.
        path: Option<String>,
    },
    /// Counters and suite layout.
    Stats,
    /// Prometheus-text metrics exposition (multi-line reply).
    Metrics,
    /// The `n` slowest recent requests from the trace ring (multi-line
    /// reply).
    Slowlog {
        /// Maximum entries to return.
        n: usize,
    },
    /// Seal the replication log and flip this follower to leader
    /// (replicated servers only; see `docs/REPLICATION.md`).
    Promote,
    /// Graceful stop.
    Shutdown,
}

impl Request {
    /// The wire verb this request arrived as — the `verb` label of the
    /// serving layer's per-verb metrics.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Ping => "PING",
            Request::Marginal { .. } => "MARGINAL",
            Request::Apply { .. } => "APPLY",
            Request::Predict { .. } => "PREDICT",
            Request::PredictText { .. } => "PREDICT_TEXT",
            Request::Ingest { .. } => "INGEST",
            Request::Refresh(_) => "REFRESH",
            Request::Snapshot { .. } => "SNAPSHOT",
            Request::Stats => "STATS",
            Request::Metrics => "METRICS",
            Request::Slowlog { .. } => "SLOWLOG",
            Request::Promote => "PROMOTE",
            Request::Shutdown => "SHUTDOWN",
        }
    }
}

/// Shared grammar of `APPLY` and `PREDICT_TEXT`: two token-range spans
/// followed by the sentence text.
#[allow(clippy::type_complexity)]
fn parse_spans_and_text(
    verb: &str,
    rest: &str,
) -> Result<((usize, usize), (usize, usize), String), String> {
    let mut tokens = rest.splitn(5, char::is_whitespace);
    let mut bound = |what: &'static str| -> Result<usize, String> {
        tokens
            .next()
            .ok_or_else(|| format!("{verb} missing {what}"))?
            .parse()
            .map_err(|_| format!("{verb}: bad {what}"))
    };
    let s1 = (bound("span1 start")?, bound("span1 end")?);
    let s2 = (bound("span2 start")?, bound("span2 end")?);
    let text = tokens.next().unwrap_or("").trim().to_string();
    if text.is_empty() {
        return Err(format!("{verb} missing sentence text"));
    }
    Ok((s1, s2, text))
}

fn parse_vote(s: &str) -> Result<Vote, String> {
    let v: i8 = s.parse().map_err(|_| format!("bad vote {s:?}"))?;
    if v == 0 {
        return Err("votes in requests must be non-abstain".into());
    }
    Ok(v)
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (cmd, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    match cmd {
        "PING" => Ok(Request::Ping),
        "MARGINAL" => {
            if rest.is_empty() {
                return Err("MARGINAL needs a vote list".into());
            }
            let mut cols = Vec::new();
            let mut votes = Vec::new();
            for item in rest.split(',') {
                let (c, v) = item
                    .split_once(':')
                    .ok_or_else(|| format!("bad vote entry {item:?} (want col:vote)"))?;
                let col: u32 = c.parse().map_err(|_| format!("bad column {c:?}"))?;
                if cols.last().is_some_and(|&prev| prev >= col) {
                    return Err("columns must be strictly increasing".into());
                }
                cols.push(col);
                votes.push(parse_vote(v)?);
            }
            Ok(Request::Marginal { cols, votes })
        }
        "APPLY" => {
            let (span1, span2, text) = parse_spans_and_text("APPLY", rest)?;
            Ok(Request::Apply { span1, span2, text })
        }
        "PREDICT" => {
            let features: Vec<String> = rest.split_whitespace().map(str::to_string).collect();
            if features.is_empty() {
                return Err("PREDICT needs at least one feature".into());
            }
            Ok(Request::Predict { features })
        }
        "PREDICT_TEXT" => {
            let (span1, span2, text) = parse_spans_and_text("PREDICT_TEXT", rest)?;
            Ok(Request::PredictText { span1, span2, text })
        }
        "INGEST" => {
            let (span1, span2, text) = parse_spans_and_text("INGEST", rest)?;
            Ok(Request::Ingest {
                rows: vec![(span1, span2, text)],
            })
        }
        "REFRESH" => {
            if rest.is_empty() {
                return Ok(Request::Refresh(None));
            }
            let (op, spec) = match rest.split_once(char::is_whitespace) {
                Some((o, s)) => (o, s.trim()),
                None => (rest, ""),
            };
            let edit = match op {
                "ADD" => SuiteEdit::Add(LfSpec::parse(spec)?),
                "EDIT" => SuiteEdit::Edit(LfSpec::parse(spec)?),
                "REMOVE" => {
                    if spec.is_empty() || spec.contains(char::is_whitespace) {
                        return Err("REFRESH REMOVE takes exactly one LF name".into());
                    }
                    SuiteEdit::Remove(spec.to_string())
                }
                other => return Err(format!("unknown REFRESH op {other:?}")),
            };
            Ok(Request::Refresh(Some(edit)))
        }
        "SNAPSHOT" => Ok(Request::Snapshot {
            path: (!rest.is_empty()).then(|| rest.to_string()),
        }),
        "STATS" => Ok(Request::Stats),
        "METRICS" => Ok(Request::Metrics),
        "SLOWLOG" => {
            if rest.is_empty() {
                return Err("SLOWLOG takes an entry count".into());
            }
            let n: usize = rest
                .parse()
                .map_err(|_| format!("bad SLOWLOG count {rest:?}"))?;
            if n == 0 {
                return Err("SLOWLOG count must be positive".into());
            }
            Ok(Request::Slowlog { n })
        }
        "PROMOTE" => Ok(Request::Promote),
        "SHUTDOWN" => Ok(Request::Shutdown),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Format a probability row for a response: space-free, comma-separated,
/// shortest-round-trip floats (exact to the bit when parsed back).
pub fn format_probs(p: &[f64]) -> String {
    let strs: Vec<String> = p.iter().map(|x| x.to_string()).collect();
    strs.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_marginal() {
        assert_eq!(
            parse_request("MARGINAL 0:1,3:-1").unwrap(),
            Request::Marginal {
                cols: vec![0, 3],
                votes: vec![1, -1],
            }
        );
        assert!(parse_request("MARGINAL").is_err());
        assert!(parse_request("MARGINAL 3:1,0:-1").is_err(), "unsorted");
        assert!(parse_request("MARGINAL 0:0").is_err(), "abstain vote");
        assert!(parse_request("MARGINAL 0=1").is_err());
    }

    #[test]
    fn parses_apply() {
        let req = parse_request("APPLY 0 1 2 3 magnesium causes weakness").unwrap();
        assert_eq!(
            req,
            Request::Apply {
                span1: (0, 1),
                span2: (2, 3),
                text: "magnesium causes weakness".into(),
            }
        );
        assert!(parse_request("APPLY 0 1 2 3").is_err(), "no text");
        assert!(parse_request("APPLY 0 1 x 3 text").is_err());
    }

    #[test]
    fn parses_predict() {
        assert_eq!(
            parse_request("PREDICT btw=causes u=magnesium").unwrap(),
            Request::Predict {
                features: vec!["btw=causes".into(), "u=magnesium".into()],
            }
        );
        assert!(parse_request("PREDICT").is_err(), "no features");
        assert!(parse_request("PREDICT   ").is_err(), "whitespace only");
    }

    #[test]
    fn parses_predict_text() {
        let req = parse_request("PREDICT_TEXT 0 1 2 3 magnesium causes weakness").unwrap();
        assert_eq!(
            req,
            Request::PredictText {
                span1: (0, 1),
                span2: (2, 3),
                text: "magnesium causes weakness".into(),
            }
        );
        assert!(parse_request("PREDICT_TEXT 0 1 2 3").is_err(), "no text");
        assert!(parse_request("PREDICT_TEXT 0 x 2 3 text").is_err());
    }

    #[test]
    fn parses_ingest() {
        let req = parse_request("INGEST 0 1 2 3 magnesium causes weakness").unwrap();
        assert_eq!(
            req,
            Request::Ingest {
                rows: vec![((0, 1), (2, 3), "magnesium causes weakness".into())],
            }
        );
        assert!(parse_request("INGEST 0 1 2 3").is_err(), "no text");
        assert!(parse_request("INGEST 0 1 x 3 text").is_err());
    }

    #[test]
    fn parses_refresh_grammar() {
        assert_eq!(parse_request("REFRESH").unwrap(), Request::Refresh(None));
        let req = parse_request("REFRESH ADD lf_causes KEYWORD 1 -1 causes,caused").unwrap();
        match req {
            Request::Refresh(Some(SuiteEdit::Add(LfSpec::Keyword {
                name,
                keywords,
                label_forward,
                label_reverse,
            }))) => {
                assert_eq!(name, "lf_causes");
                assert_eq!(keywords, vec!["causes", "caused"]);
                assert_eq!((label_forward, label_reverse), (1, -1));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        let req = parse_request(r"REFRESH EDIT lf_pat PATTERN 1 {{0}}.*\Wcauses\W.*{{1}}").unwrap();
        assert!(matches!(
            req,
            Request::Refresh(Some(SuiteEdit::Edit(LfSpec::Pattern { .. })))
        ));
        assert_eq!(
            parse_request("REFRESH REMOVE lf_x").unwrap(),
            Request::Refresh(Some(SuiteEdit::Remove("lf_x".into())))
        );
        assert!(parse_request("REFRESH DROP lf_x").is_err());
        assert!(parse_request("REFRESH REMOVE a b").is_err());
    }

    #[test]
    fn parses_metrics_and_slowlog() {
        assert_eq!(parse_request("METRICS").unwrap(), Request::Metrics);
        assert_eq!(
            parse_request("SLOWLOG 10").unwrap(),
            Request::Slowlog { n: 10 }
        );
        assert!(parse_request("SLOWLOG").is_err(), "count required");
        assert!(parse_request("SLOWLOG 0").is_err(), "zero count");
        assert!(parse_request("SLOWLOG ten").is_err());
    }

    #[test]
    fn every_request_names_its_verb() {
        for (line, verb) in [
            ("PING", "PING"),
            ("MARGINAL 0:1", "MARGINAL"),
            ("STATS", "STATS"),
            ("METRICS", "METRICS"),
            ("SLOWLOG 5", "SLOWLOG"),
            ("INGEST 0 1 2 3 t", "INGEST"),
            ("REFRESH", "REFRESH"),
            ("PROMOTE", "PROMOTE"),
            ("SHUTDOWN", "SHUTDOWN"),
        ] {
            assert_eq!(parse_request(line).unwrap().verb(), verb);
        }
    }

    #[test]
    fn spec_content_tag_is_content_derived() {
        let a = LfSpec::parse("lf KEYWORD 1 -1 causes").unwrap();
        let b = LfSpec::parse("lf KEYWORD 1 -1 treats").unwrap();
        let a2 = LfSpec::parse("lf  KEYWORD  1  -1  causes").unwrap();
        assert_ne!(a.content_tag(), b.content_tag());
        assert_eq!(a.content_tag(), a2.content_tag(), "whitespace-insensitive");
    }

    #[test]
    fn specs_build_working_lfs() {
        let spec = LfSpec::parse("lf_causes KEYWORD 1 -1 causes").unwrap();
        let lf = spec.build().unwrap();
        assert_eq!(lf.name(), "lf_causes");
        assert!(LfSpec::parse("lf_bad PATTERN 1 {{0}}[unclosed")
            .unwrap()
            .build()
            .is_err());
    }

    #[test]
    fn probs_round_trip_exactly() {
        let p = [0.1f64, 2.0 / 3.0, 4.847695589897749e-11];
        let s = format_probs(&p);
        let back: Vec<f64> = s.split(',').map(|x| x.parse().unwrap()).collect();
        assert_eq!(back, p);
    }
}
