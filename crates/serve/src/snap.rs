//! The versioned, checksummed snapshot file format.
//!
//! A snapshot captures a frozen [`IncrementalSession`] plus the
//! [`TrainConfig`] that produced its model, so a restarted process
//! warm-starts in milliseconds instead of re-running LFs and re-fitting
//! from scratch. The format is hand-rolled (this workspace vendors
//! offline — no serde) and designed so that *any* single-bit corruption
//! or truncation is detected and reported as a typed [`SnapError`],
//! never a panic or a silent misread.
//!
//! ## Layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "SNKLSNAP"
//! 8       4     format version (u32 LE, currently 1)
//! 12      4     section count (u32 LE)
//! 16      28×k  section table: tag (u32), offset (u64), len (u64),
//!               FNV-1a checksum of the section bytes (u64)
//! …       8     FNV-1a checksum of everything above (u64)
//! …       —     section payloads, contiguous, in table order
//! ```
//!
//! Sections are required to tile the rest of the file exactly (first
//! payload starts at the header's end, each next payload at the previous
//! one's end, the last ends at EOF), so every byte of the file is
//! covered by exactly one checksum — the header's or a section's.
//! Within a section, all integers are little-endian, floats are raw
//! IEEE-754 bits (bit-exact round trips), and sequences are
//! length-prefixed with the length validated against the bytes remaining
//! before anything is allocated.
//!
//! | tag    | contents                                         | presence |
//! |--------|--------------------------------------------------|----------|
//! | `SESS` | candidates, version counters, suite layout, last-refresh bookkeeping, strategy | always |
//! | `CACH` | the LF-result cache, LRU-first                   | always   |
//! | `TCFG` | the [`TrainConfig`]                              | always   |
//! | `LMTX` | the label matrix (raw CSR)                       | if built |
//! | `PLAN` | the sharded pattern index                        | if built |
//! | `MODL` | the label model, backend-tagged (v2) — weights + structure for the generative/moment backends, shape only for majority vote | if trained |
//! | `DISC` | the distilled serving model (v3): refresh/disc generation counters, featurizer + distill config, sparse per-class weights | if distilled |
//! | `STRM` | the streaming plane (v4): running moment sufficient statistics, drift config, frozen reference window, drift scores, lifetime ingest counters | if streaming |
//! | `REPL` | the replication mark (v5): the op-log LSN and server generation the snapshot was taken at, so a follower bootstrapped from it resumes tailing exactly where the image ends | if replicated |
//!
//! ## Versioning
//!
//! * **v1** — the pre-[`LabelModel`] format: `MODL` is an untagged
//!   generative-model parameter block. Still read: it decodes into a
//!   [`ModelSnapshot::Generative`], so v1 snapshots thaw into a session
//!   running the generative backend.
//! * **v2** — `MODL` opens with a backend tag byte
//!   (1 = generative, 2 = majority-vote, 3 = moment). Unknown tags are
//!   a typed [`SnapError::UnknownBackend`]; structurally invalid model
//!   parameters are a typed [`SnapError::Model`]. v2 also adds the
//!   moment-matching strategy tag to `SESS`.
//! * **v3** — adds the optional `DISC` section carrying the
//!   distilled serving model and its staleness generation. v1/v2 files
//!   still thaw (no disc model, generation counters at zero); a `DISC`
//!   section in a file claiming v1/v2 is a typed corruption error.
//! * **v4** — adds the optional `STRM` section carrying the
//!   streaming plane's state: the online moment backend's running
//!   sufficient statistics, the drift detector's configuration and
//!   frozen reference window, the latest drift scores, and the
//!   lifetime ingest counters. v1–v3 files still thaw (streaming
//!   restarts disabled until the first `INGEST`); a `STRM` section in
//!   a file claiming an older version is a typed corruption error.
//! * **v5** (current) — adds the optional `REPL` section carrying the
//!   replication mark: the op-log LSN applied as of the snapshot and
//!   the server generation at that LSN. v1–v4 files still thaw (no
//!   mark — a restarted replica treats the image as the log origin); a
//!   `REPL` section in a file claiming an older version is a typed
//!   corruption error.
//!
//! [`Snapshot::to_bytes_with_version`] can still *write* v1–v4 (for
//! handing a snapshot to an older build) as long as the snapshot fits
//! the older format: v1 needs an absent-or-generative model, v1/v2
//! cannot carry a distilled model, v1–v3 cannot carry streaming
//! state, and v1–v4 cannot carry a replication mark — each mismatch is
//! a typed refusal, never a silent drop.
//!
//! The normative format specification — section payload layouts,
//! checksum rules, and the compatibility policy — is
//! `docs/SNAPSHOT_FORMAT.md`.
//!
//! [`IncrementalSession`]: snorkel_incr::IncrementalSession
//! [`LabelModel`]: snorkel_core::label_model::LabelModel

use std::io::Write as _;
use std::path::Path;

use snorkel_core::label_model::{ModelSnapshot, MomentStatsParts};
use snorkel_core::model::{ClassBalance, ModelParams, ParamsError, Scaleout, TrainConfig};
use snorkel_core::optimizer::ModelingStrategy;
use snorkel_core::pipeline::DiscTrainerConfig;
use snorkel_disc::{DiscModelParts, DistillConfig, TextFeaturizer};
use snorkel_incr::{Fingerprint, FrozenCache, FrozenColumn, FrozenDisc, FrozenSession};
use snorkel_matrix::{LabelMatrix, PatternIndexParts, ShardedMatrixParts};
use snorkel_stream::{DriftConfig, FrozenStream, StreamState, WindowStats};

use snorkel_context::CandidateId;

use crate::repl::ReplMark;
use crate::wire::{fnv1a, Reader, Writer};

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"SNKLSNAP";

/// The format version this build writes by default.
pub const FORMAT_VERSION: u32 = 5;

/// The oldest format version this build still reads.
pub const MIN_READ_VERSION: u32 = 1;

/// Backend tag bytes of the v2 `MODL` section.
const MODEL_TAG_GENERATIVE: u8 = 1;
const MODEL_TAG_MAJORITY_VOTE: u8 = 2;
const MODEL_TAG_MOMENT: u8 = 3;

const TAG_SESS: u32 = u32::from_le_bytes(*b"SESS");
const TAG_CACH: u32 = u32::from_le_bytes(*b"CACH");
const TAG_TCFG: u32 = u32::from_le_bytes(*b"TCFG");
const TAG_LMTX: u32 = u32::from_le_bytes(*b"LMTX");
const TAG_PLAN: u32 = u32::from_le_bytes(*b"PLAN");
const TAG_MODL: u32 = u32::from_le_bytes(*b"MODL");
const TAG_DISC: u32 = u32::from_le_bytes(*b"DISC");
const TAG_STRM: u32 = u32::from_le_bytes(*b"STRM");
const TAG_REPL: u32 = u32::from_le_bytes(*b"REPL");

fn tag_name(tag: u32) -> String {
    let b = tag.to_le_bytes();
    if b.iter().all(|c| c.is_ascii_uppercase()) {
        String::from_utf8_lossy(&b).into_owned()
    } else {
        format!("{tag:#010x}")
    }
}

/// Why a snapshot could not be written or read. Every decode failure is
/// typed; readers never panic on hostile bytes.
#[derive(Debug)]
pub enum SnapError {
    /// Filesystem error while reading or writing.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a snapshot.
    BadMagic,
    /// The file's format version is not one this build reads.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Newest version this build supports (it also reads every
        /// version down to [`MIN_READ_VERSION`]).
        supported: u32,
    },
    /// The model section names a label-model backend this build does
    /// not know.
    UnknownBackend {
        /// The unrecognized backend tag byte.
        tag: u8,
    },
    /// The model section decoded but its parameters violate a
    /// structural invariant.
    Model(ParamsError),
    /// The file ends before a field it promises.
    Truncated {
        /// The field being read when bytes ran out.
        context: &'static str,
    },
    /// A checksum did not match its bytes.
    ChecksumMismatch {
        /// Which checksum failed (`"header"` or a section tag).
        section: String,
    },
    /// Structurally invalid contents (bad lengths, out-of-range
    /// references, non-tiling sections, …).
    Corrupt {
        /// What was violated.
        context: String,
    },
    /// A required section is absent.
    MissingSection {
        /// The absent section's tag.
        section: String,
    },
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Io(e) => write!(f, "snapshot I/O: {e}"),
            SnapError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "snapshot format v{found} (this build reads v{supported})"
                )
            }
            SnapError::UnknownBackend { tag } => {
                write!(f, "unknown label-model backend tag {tag}")
            }
            SnapError::Model(e) => write!(f, "invalid model section: {e}"),
            SnapError::Truncated { context } => write!(f, "truncated while reading {context}"),
            SnapError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in {section}")
            }
            SnapError::Corrupt { context } => write!(f, "corrupt snapshot: {context}"),
            SnapError::MissingSection { section } => {
                write!(f, "required section {section} is missing")
            }
        }
    }
}

impl std::error::Error for SnapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapError::Io(e) => Some(e),
            SnapError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParamsError> for SnapError {
    fn from(e: ParamsError) -> Self {
        SnapError::Model(e)
    }
}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> Self {
        SnapError::Io(e)
    }
}

fn corrupt(context: impl Into<String>) -> SnapError {
    SnapError::Corrupt {
        context: context.into(),
    }
}

/// A durable image of a labeling session: the frozen session state plus
/// the training configuration its model was fitted with.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The frozen session (see [`FrozenSession`] for what thawing needs
    /// beyond this — the corpus and the LF code).
    pub session: FrozenSession,
    /// Training configuration, persisted so a restarted service refits
    /// with identical hyperparameters.
    pub train: TrainConfig,
    /// The replication mark (v5): the op-log LSN and server generation
    /// this image was taken at. `None` on non-replicated servers and in
    /// pre-v5 files.
    pub repl: Option<ReplMark>,
}

impl Snapshot {
    /// Serialize to the on-disk byte format (current version).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_with_version(FORMAT_VERSION)
            .expect("current version encodes every model")
    }

    /// Serialize as a specific format version — for handing a snapshot
    /// to an older build. v1 has no backend tag in its model section,
    /// so it can only carry an absent or generative model; anything
    /// else is a [`SnapError::Corrupt`] ("cannot encode"), not a silent
    /// misread on the other end.
    pub fn to_bytes_with_version(&self, version: u32) -> Result<Vec<u8>, SnapError> {
        if !(MIN_READ_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(SnapError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let model_section = match (&self.session.model, version) {
            (None, _) => None,
            (Some(model), 1) => match model {
                ModelSnapshot::Generative(params) => Some(enc_model_v1(params)),
                other => {
                    return Err(corrupt(format!(
                        "format v1 cannot encode the {} backend",
                        other.backend_name()
                    )))
                }
            },
            (Some(model), _) => Some(enc_model(model)),
        };
        if version == 1 {
            if let Some((ModelingStrategy::MomentMatching, _)) = &self.session.last_gm_strategy {
                return Err(corrupt(
                    "format v1 cannot encode the moment-matching strategy",
                ));
            }
        }
        if version < 3 && self.session.disc.is_some() {
            return Err(corrupt(format!(
                "format v{version} cannot encode a distilled model"
            )));
        }
        if version < 4 && self.session.stream.is_some() {
            return Err(corrupt(format!(
                "format v{version} cannot encode streaming state"
            )));
        }
        if version < 5 && self.repl.is_some() {
            return Err(corrupt(format!(
                "format v{version} cannot encode a replication mark"
            )));
        }
        let mut sections: Vec<(u32, Vec<u8>)> = Vec::new();
        sections.push((TAG_SESS, enc_session_meta(&self.session, version)));
        sections.push((TAG_CACH, enc_cache(&self.session.cache)));
        sections.push((TAG_TCFG, enc_train(&self.train)));
        if let Some(lambda) = &self.session.lambda {
            sections.push((TAG_LMTX, enc_matrix(lambda)));
        }
        if let Some(plan) = &self.session.plan {
            sections.push((TAG_PLAN, enc_plan(plan)));
        }
        if let Some(model) = model_section {
            sections.push((TAG_MODL, model));
        }
        if let Some(disc) = &self.session.disc {
            sections.push((TAG_DISC, enc_disc(disc)));
        }
        if let Some(stream) = &self.session.stream {
            sections.push((TAG_STRM, enc_stream(stream)));
        }
        if let Some(repl) = &self.repl {
            sections.push((TAG_REPL, enc_repl(repl)));
        }

        let header_end = 16 + 28 * sections.len() + 8;
        let mut head = Writer::new();
        for b in MAGIC {
            head.put_u8(b);
        }
        head.put_u32(version);
        head.put_u32(sections.len() as u32);
        let mut offset = header_end as u64;
        for (tag, payload) in &sections {
            head.put_u32(*tag);
            head.put_u64(offset);
            head.put_u64(payload.len() as u64);
            head.put_u64(fnv1a(payload));
            offset += payload.len() as u64;
        }
        let mut out = head.into_bytes();
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        debug_assert_eq!(out.len(), header_end);
        for (_, payload) in &sections {
            out.extend_from_slice(payload);
        }
        Ok(out)
    }

    /// Deserialize from the on-disk byte format, verifying magic,
    /// version, both checksum layers, and every structural invariant.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapError> {
        if bytes.len() < 16 {
            return Err(SnapError::Truncated { context: "header" });
        }
        if bytes[..8] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if !(MIN_READ_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(SnapError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
        let header_end = 16usize
            .checked_add(
                count
                    .checked_mul(28)
                    .ok_or_else(|| corrupt("section count"))?,
            )
            .and_then(|v| v.checked_add(8))
            .ok_or_else(|| corrupt("section count"))?;
        if bytes.len() < header_end {
            return Err(SnapError::Truncated {
                context: "section table",
            });
        }
        let stored = u64::from_le_bytes(
            bytes[header_end - 8..header_end]
                .try_into()
                .expect("8 bytes"),
        );
        if fnv1a(&bytes[..header_end - 8]) != stored {
            return Err(SnapError::ChecksumMismatch {
                section: "header".into(),
            });
        }

        // Sections must tile the remainder of the file exactly.
        let mut next_offset = header_end as u64;
        let mut parsed: Vec<(u32, &[u8])> = Vec::with_capacity(count);
        for s in 0..count {
            let at = 16 + 28 * s;
            let tag = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
            let offset = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().expect("8 bytes"));
            let checksum = u64::from_le_bytes(bytes[at + 20..at + 28].try_into().expect("8 bytes"));
            if offset != next_offset {
                return Err(corrupt(format!(
                    "section {} does not start where the previous ended",
                    tag_name(tag)
                )));
            }
            let end = offset
                .checked_add(len)
                .ok_or_else(|| corrupt(format!("section {} length overflows", tag_name(tag))))?;
            if end > bytes.len() as u64 {
                return Err(SnapError::Truncated {
                    context: "section payload",
                });
            }
            let payload = &bytes[offset as usize..end as usize];
            if fnv1a(payload) != checksum {
                return Err(SnapError::ChecksumMismatch {
                    section: tag_name(tag),
                });
            }
            if parsed.iter().any(|(t, _)| *t == tag) {
                return Err(corrupt(format!("duplicate section {}", tag_name(tag))));
            }
            parsed.push((tag, payload));
            next_offset = end;
        }
        if next_offset != bytes.len() as u64 {
            return Err(corrupt("trailing bytes beyond the last section"));
        }

        let find = |tag: u32| parsed.iter().find(|(t, _)| *t == tag).map(|(_, p)| *p);
        let require = |tag: u32| {
            find(tag).ok_or_else(|| SnapError::MissingSection {
                section: tag_name(tag),
            })
        };
        for (tag, _) in &parsed {
            if ![
                TAG_SESS, TAG_CACH, TAG_TCFG, TAG_LMTX, TAG_PLAN, TAG_MODL, TAG_DISC, TAG_STRM,
                TAG_REPL,
            ]
            .contains(tag)
            {
                return Err(corrupt(format!("unknown section {}", tag_name(*tag))));
            }
            if *tag == TAG_DISC && version < 3 {
                return Err(corrupt(format!(
                    "DISC section in a v{version} file (introduced in v3)"
                )));
            }
            if *tag == TAG_STRM && version < 4 {
                return Err(corrupt(format!(
                    "STRM section in a v{version} file (introduced in v4)"
                )));
            }
            if *tag == TAG_REPL && version < 5 {
                return Err(corrupt(format!(
                    "REPL section in a v{version} file (introduced in v5)"
                )));
            }
        }

        let mut session = dec_session_meta(&mut Reader::new(require(TAG_SESS)?), version)?;
        session.cache = dec_cache(&mut Reader::new(require(TAG_CACH)?))?;
        let train = dec_train(&mut Reader::new(require(TAG_TCFG)?))?;
        session.lambda = match find(TAG_LMTX) {
            Some(p) => Some(dec_matrix(&mut Reader::new(p))?),
            None => None,
        };
        session.plan = match find(TAG_PLAN) {
            Some(p) => Some(dec_plan(&mut Reader::new(p))?),
            None => None,
        };
        session.model = match find(TAG_MODL) {
            // v1 model sections carry a bare (untagged) generative
            // parameter block; v2 sections open with a backend tag.
            Some(p) if version == 1 => Some(dec_model_v1(&mut Reader::new(p))?),
            Some(p) => Some(dec_model(&mut Reader::new(p))?),
            None => None,
        };
        if let Some(p) = find(TAG_DISC) {
            let disc = dec_disc(&mut Reader::new(p))?;
            if disc.generation > session.refresh_generation {
                return Err(corrupt(format!(
                    "disc generation {} ahead of refresh generation {}",
                    disc.generation, session.refresh_generation
                )));
            }
            session.disc = Some(disc);
        }
        if let Some(p) = find(TAG_STRM) {
            session.stream = Some(dec_stream(&mut Reader::new(p))?);
        }
        let repl = match find(TAG_REPL) {
            Some(p) => Some(dec_repl(&mut Reader::new(p))?),
            None => None,
        };
        Ok(Snapshot {
            session,
            train,
            repl,
        })
    }

    /// Write atomically to `path`: serialize, write to a sibling
    /// temporary file, fsync, and rename into place — a crash mid-write
    /// leaves the previous snapshot intact. The temporary name is unique
    /// per process *and* per call, so concurrent writers (the periodic
    /// auto-snapshotter racing a `SNAPSHOT` request) each rename a
    /// complete file instead of interleaving writes into a shared temp.
    /// Returns the byte count.
    pub fn write_file(&self, path: &Path) -> Result<u64, SnapError> {
        static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let bytes = self.to_bytes();
        let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("snap-tmp-{}-{seq}", std::process::id()));
        let write = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if write.is_err() {
            // Best-effort cleanup; the error is what matters.
            let _ = std::fs::remove_file(&tmp);
        }
        write?;
        Ok(bytes.len() as u64)
    }

    /// Read and fully validate a snapshot file.
    pub fn read_file(path: &Path) -> Result<Snapshot, SnapError> {
        let bytes = std::fs::read(path)?;
        Snapshot::from_bytes(&bytes)
    }
}

// ----------------------------------------------------------------------
// Section encoders/decoders
// ----------------------------------------------------------------------

fn enc_session_meta(s: &FrozenSession, version: u32) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_usize(s.candidates.len());
    for id in &s.candidates {
        w.put_u32(id.index() as u32);
    }
    w.put_usize(s.versions.len());
    for (name, v) in &s.versions {
        w.put_str(name);
        w.put_u64(*v);
    }
    w.put_usize(s.suite.len());
    for (name, fp) in &s.suite {
        w.put_str(name);
        w.put_u64(fp.0);
    }
    w.put_usize(s.last_fingerprints.len());
    for fp in &s.last_fingerprints {
        w.put_u64(fp.0);
    }
    w.put_usize(s.last_rows);
    match &s.last_gm_strategy {
        None => w.put_u8(0),
        Some((strategy, layout)) => {
            match strategy {
                ModelingStrategy::MajorityVote => w.put_u8(1),
                ModelingStrategy::MomentMatching => w.put_u8(3),
                ModelingStrategy::GenerativeModel {
                    epsilon,
                    correlations,
                    strengths,
                } => {
                    w.put_u8(2);
                    w.put_f64(*epsilon);
                    w.put_usize(correlations.len());
                    for &(a, b) in correlations {
                        w.put_usize(a);
                        w.put_usize(b);
                    }
                    w.put_usize(strengths.len());
                    for &v in strengths {
                        w.put_f64(v);
                    }
                }
            }
            w.put_usize(layout.len());
            for name in layout {
                w.put_str(name);
            }
        }
    }
    // v3 appends the refresh-generation counter (disc staleness anchor);
    // older formats cannot carry it and thaw with the counter at zero.
    if version >= 3 {
        w.put_u64(s.refresh_generation);
    }
    w.into_bytes()
}

fn dec_session_meta(r: &mut Reader<'_>, version: u32) -> Result<FrozenSession, SnapError> {
    let n = r.len(4, "candidate count")?;
    let mut candidates = Vec::with_capacity(n);
    for _ in 0..n {
        candidates.push(CandidateId::from_index(r.u32("candidate id")? as usize));
    }
    let n = r.len(9, "version count")?;
    let mut versions = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str("version name")?;
        versions.push((name, r.u64("version counter")?));
    }
    let n = r.len(9, "suite size")?;
    let mut suite = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str("LF name")?;
        suite.push((name, Fingerprint(r.u64("LF fingerprint")?)));
    }
    let n = r.len(8, "fingerprint layout")?;
    let mut last_fingerprints = Vec::with_capacity(n);
    for _ in 0..n {
        last_fingerprints.push(Fingerprint(r.u64("layout fingerprint")?));
    }
    let last_rows = r.usize("last row count")?;
    let last_gm_strategy = match r.u8("strategy tag")? {
        0 => None,
        tag @ 1..=3 => {
            let strategy = if tag == 1 {
                ModelingStrategy::MajorityVote
            } else if tag == 3 {
                ModelingStrategy::MomentMatching
            } else {
                let epsilon = r.f64("strategy epsilon")?;
                let n = r.len(16, "correlation count")?;
                let mut correlations = Vec::with_capacity(n);
                for _ in 0..n {
                    let a = r.usize("correlation a")?;
                    correlations.push((a, r.usize("correlation b")?));
                }
                let n = r.len(8, "strength count")?;
                let mut strengths = Vec::with_capacity(n);
                for _ in 0..n {
                    strengths.push(r.f64("correlation strength")?);
                }
                ModelingStrategy::GenerativeModel {
                    epsilon,
                    correlations,
                    strengths,
                }
            };
            let n = r.len(8, "layout size")?;
            let mut layout = Vec::with_capacity(n);
            for _ in 0..n {
                layout.push(r.str("layout name")?);
            }
            Some((strategy, layout))
        }
        tag => return Err(corrupt(format!("unknown strategy tag {tag}"))),
    };
    let refresh_generation = if version >= 3 {
        r.u64("refresh generation")?
    } else {
        0
    };
    if !r.is_exhausted() {
        return Err(corrupt("trailing bytes in SESS"));
    }
    Ok(FrozenSession {
        candidates,
        versions,
        suite,
        cache: FrozenCache {
            capacity: 1,
            stats: Default::default(),
            columns: Vec::new(),
        },
        lambda: None,
        plan: None,
        model: None,
        last_fingerprints,
        last_rows,
        last_gm_strategy,
        refresh_generation,
        disc: None,
        stream: None,
    })
}

fn enc_cache(c: &FrozenCache) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_usize(c.capacity);
    w.put_u64(c.stats.hits);
    w.put_u64(c.stats.misses);
    w.put_u64(c.stats.extensions);
    w.put_u64(c.stats.evictions);
    w.put_usize(c.columns.len());
    for col in &c.columns {
        w.put_u64(col.fingerprint.0);
        w.put_usize(col.rows);
        w.put_usize(col.entries.len());
        for &(row, vote) in &col.entries {
            w.put_u32(row);
            w.put_i8(vote);
        }
    }
    w.into_bytes()
}

fn dec_cache(r: &mut Reader<'_>) -> Result<FrozenCache, SnapError> {
    let capacity = r.usize("cache capacity")?;
    let stats = snorkel_incr::CacheStats {
        hits: r.u64("cache hits")?,
        misses: r.u64("cache misses")?,
        extensions: r.u64("cache extensions")?,
        evictions: r.u64("cache evictions")?,
    };
    let n = r.len(24, "cache column count")?;
    let mut columns = Vec::with_capacity(n);
    for _ in 0..n {
        let fingerprint = Fingerprint(r.u64("column fingerprint")?);
        let rows = r.usize("column rows")?;
        let k = r.len(5, "column entry count")?;
        let mut entries = Vec::with_capacity(k);
        for _ in 0..k {
            let row = r.u32("entry row")?;
            entries.push((row, r.i8("entry vote")?));
        }
        columns.push(FrozenColumn {
            fingerprint,
            rows,
            entries,
        });
    }
    if !r.is_exhausted() {
        return Err(corrupt("trailing bytes in CACH"));
    }
    Ok(FrozenCache {
        capacity,
        stats,
        columns,
    })
}

fn enc_matrix(m: &LabelMatrix) -> Vec<u8> {
    let p = m.csr_parts();
    let mut w = Writer::new();
    w.put_usize(p.num_points);
    w.put_usize(p.num_lfs);
    w.put_u8(p.cardinality);
    w.put_usize(p.row_ptr.len());
    for &v in p.row_ptr {
        w.put_usize(v);
    }
    w.put_usize(p.col_idx.len());
    for &c in p.col_idx {
        w.put_u32(c);
    }
    w.put_usize(p.votes.len());
    for &v in p.votes {
        w.put_i8(v);
    }
    w.into_bytes()
}

fn dec_matrix(r: &mut Reader<'_>) -> Result<LabelMatrix, SnapError> {
    let num_points = r.usize("matrix rows")?;
    let num_lfs = r.usize("matrix cols")?;
    let cardinality = r.u8("matrix cardinality")?;
    let n = r.len(8, "row_ptr length")?;
    let mut row_ptr = Vec::with_capacity(n);
    for _ in 0..n {
        row_ptr.push(r.usize("row_ptr entry")?);
    }
    let n = r.len(4, "col_idx length")?;
    let mut col_idx = Vec::with_capacity(n);
    for _ in 0..n {
        col_idx.push(r.u32("col_idx entry")?);
    }
    let n = r.len(1, "votes length")?;
    let mut votes = Vec::with_capacity(n);
    for _ in 0..n {
        votes.push(r.i8("vote entry")?);
    }
    if !r.is_exhausted() {
        return Err(corrupt("trailing bytes in LMTX"));
    }
    LabelMatrix::from_csr_parts(num_points, num_lfs, cardinality, row_ptr, col_idx, votes)
        .map_err(corrupt)
}

fn enc_plan(p: &ShardedMatrixParts) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_usize(p.num_lfs);
    w.put_usize(p.shards.len());
    for shard in &p.shards {
        w.put_usize(shard.start);
        w.put_usize(shard.sig_cols.len());
        for &c in &shard.sig_cols {
            w.put_u32(c);
        }
        w.put_usize(shard.sig_votes.len());
        for &v in &shard.sig_votes {
            w.put_i8(v);
        }
        w.put_usize(shard.pat_bounds.len());
        for &(off, len) in &shard.pat_bounds {
            w.put_usize(off);
            w.put_usize(len);
        }
        w.put_usize(shard.counts.len());
        for &c in &shard.counts {
            w.put_usize(c);
        }
        w.put_usize(shard.row_pattern.len());
        for &p in &shard.row_pattern {
            w.put_u32(p);
        }
    }
    w.into_bytes()
}

fn dec_plan(r: &mut Reader<'_>) -> Result<ShardedMatrixParts, SnapError> {
    let num_lfs = r.usize("plan LF count")?;
    let n = r.len(48, "shard count")?;
    let mut shards = Vec::with_capacity(n);
    for _ in 0..n {
        let start = r.usize("shard start")?;
        let k = r.len(4, "sig_cols length")?;
        let mut sig_cols = Vec::with_capacity(k);
        for _ in 0..k {
            sig_cols.push(r.u32("sig col")?);
        }
        let k = r.len(1, "sig_votes length")?;
        let mut sig_votes = Vec::with_capacity(k);
        for _ in 0..k {
            sig_votes.push(r.i8("sig vote")?);
        }
        let k = r.len(16, "pat_bounds length")?;
        let mut pat_bounds = Vec::with_capacity(k);
        for _ in 0..k {
            let off = r.usize("pattern offset")?;
            pat_bounds.push((off, r.usize("pattern length")?));
        }
        let k = r.len(8, "counts length")?;
        let mut counts = Vec::with_capacity(k);
        for _ in 0..k {
            counts.push(r.usize("pattern count")?);
        }
        let k = r.len(4, "row_pattern length")?;
        let mut row_pattern = Vec::with_capacity(k);
        for _ in 0..k {
            row_pattern.push(r.u32("row pattern")?);
        }
        shards.push(PatternIndexParts {
            start,
            sig_cols,
            sig_votes,
            pat_bounds,
            counts,
            row_pattern,
        });
    }
    if !r.is_exhausted() {
        return Err(corrupt("trailing bytes in PLAN"));
    }
    Ok(ShardedMatrixParts { num_lfs, shards })
}

/// The v1 (untagged) model payload: a bare generative parameter block.
fn enc_model_v1(m: &ModelParams) -> Vec<u8> {
    let mut w = Writer::new();
    enc_model_params(&mut w, m);
    w.into_bytes()
}

/// The v2 model payload: backend tag byte, then the backend's state.
fn enc_model(m: &ModelSnapshot) -> Vec<u8> {
    let mut w = Writer::new();
    match m {
        ModelSnapshot::Generative(p) => {
            w.put_u8(MODEL_TAG_GENERATIVE);
            enc_model_params(&mut w, p);
        }
        ModelSnapshot::MajorityVote {
            cardinality,
            num_lfs,
        } => {
            w.put_u8(MODEL_TAG_MAJORITY_VOTE);
            w.put_u8(*cardinality);
            w.put_usize(*num_lfs);
        }
        ModelSnapshot::MomentMatching(p) => {
            w.put_u8(MODEL_TAG_MOMENT);
            enc_model_params(&mut w, p);
        }
    }
    w.into_bytes()
}

fn enc_model_params(w: &mut Writer, m: &ModelParams) {
    w.put_u8(m.cardinality);
    w.put_usize(m.num_lfs);
    let put_f64s = |w: &mut Writer, xs: &[f64]| {
        w.put_usize(xs.len());
        for &x in xs {
            w.put_f64(x);
        }
    };
    put_f64s(w, &m.w_lab);
    put_f64s(w, &m.w_acc);
    w.put_usize(m.corr_pairs.len());
    for &(a, b) in &m.corr_pairs {
        w.put_usize(a);
        w.put_usize(b);
    }
    put_f64s(w, &m.w_corr);
    put_f64s(w, &m.corr_strength);
    put_f64s(w, &m.b_class);
}

/// Decode and structurally validate a v1 model section (always the
/// generative backend — the only one that existed).
fn dec_model_v1(r: &mut Reader<'_>) -> Result<ModelSnapshot, SnapError> {
    let snapshot = ModelSnapshot::Generative(dec_model_params(r)?);
    snapshot.validate()?;
    Ok(snapshot)
}

/// Decode and structurally validate a v2 (tagged) model section.
/// Unknown backend tags and invalid parameters are typed errors.
fn dec_model(r: &mut Reader<'_>) -> Result<ModelSnapshot, SnapError> {
    let snapshot = match r.u8("model backend tag")? {
        MODEL_TAG_GENERATIVE => ModelSnapshot::Generative(dec_model_params(r)?),
        MODEL_TAG_MAJORITY_VOTE => {
            let cardinality = r.u8("model cardinality")?;
            let num_lfs = r.usize("model LF count")?;
            if !r.is_exhausted() {
                return Err(corrupt("trailing bytes in MODL"));
            }
            ModelSnapshot::MajorityVote {
                cardinality,
                num_lfs,
            }
        }
        MODEL_TAG_MOMENT => ModelSnapshot::MomentMatching(dec_model_params(r)?),
        tag => return Err(SnapError::UnknownBackend { tag }),
    };
    snapshot.validate()?;
    Ok(snapshot)
}

fn dec_model_params(r: &mut Reader<'_>) -> Result<ModelParams, SnapError> {
    let cardinality = r.u8("model cardinality")?;
    let num_lfs = r.usize("model LF count")?;
    let f64s = |r: &mut Reader<'_>, context| -> Result<Vec<f64>, SnapError> {
        let n = r.len(8, context)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(r.f64(context)?);
        }
        Ok(out)
    };
    let w_lab = f64s(r, "w_lab")?;
    let w_acc = f64s(r, "w_acc")?;
    let n = r.len(16, "corr pair count")?;
    let mut corr_pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let a = r.usize("corr pair a")?;
        corr_pairs.push((a, r.usize("corr pair b")?));
    }
    let w_corr = f64s(r, "w_corr")?;
    let corr_strength = f64s(r, "corr_strength")?;
    let b_class = f64s(r, "b_class")?;
    if !r.is_exhausted() {
        return Err(corrupt("trailing bytes in MODL"));
    }
    Ok(ModelParams {
        cardinality,
        num_lfs,
        w_lab,
        w_acc,
        corr_pairs,
        w_corr,
        corr_strength,
        b_class,
    })
}

fn enc_train(t: &TrainConfig) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_usize(t.epochs);
    w.put_f64(t.learning_rate);
    w.put_f64(t.lr_decay);
    w.put_usize(t.cd_epochs);
    w.put_f64(t.cd_learning_rate);
    w.put_f64(t.l2);
    w.put_u64(t.seed);
    w.put_usize(t.gibbs_steps);
    w.put_usize(t.batch_size);
    w.put_f64(t.tol);
    w.put_f64(t.init_acc_weight);
    w.put_u8(t.init_from_majority_vote as u8);
    match &t.class_balance {
        ClassBalance::Uniform => w.put_u8(0),
        ClassBalance::FromMajorityVote => w.put_u8(1),
        ClassBalance::Fixed(p) => {
            w.put_u8(2);
            w.put_usize(p.len());
            for &x in p {
                w.put_f64(x);
            }
        }
    }
    w.put_u8(t.clamp_nonadversarial as u8);
    match t.scaleout {
        Scaleout::RowWise => w.put_u8(0),
        Scaleout::Sharded { shards } => {
            w.put_u8(1);
            w.put_usize(shards);
        }
        Scaleout::Auto => w.put_u8(2),
    }
    w.into_bytes()
}

fn dec_train(r: &mut Reader<'_>) -> Result<TrainConfig, SnapError> {
    let epochs = r.usize("epochs")?;
    let learning_rate = r.f64("learning_rate")?;
    let lr_decay = r.f64("lr_decay")?;
    let cd_epochs = r.usize("cd_epochs")?;
    let cd_learning_rate = r.f64("cd_learning_rate")?;
    let l2 = r.f64("l2")?;
    let seed = r.u64("seed")?;
    let gibbs_steps = r.usize("gibbs_steps")?;
    let batch_size = r.usize("batch_size")?;
    let tol = r.f64("tol")?;
    let init_acc_weight = r.f64("init_acc_weight")?;
    let init_from_majority_vote = match r.u8("init_from_majority_vote")? {
        0 => false,
        1 => true,
        v => return Err(corrupt(format!("bad bool {v}"))),
    };
    let class_balance = match r.u8("class_balance tag")? {
        0 => ClassBalance::Uniform,
        1 => ClassBalance::FromMajorityVote,
        2 => {
            let n = r.len(8, "class balance length")?;
            let mut p = Vec::with_capacity(n);
            for _ in 0..n {
                p.push(r.f64("class balance entry")?);
            }
            ClassBalance::Fixed(p)
        }
        v => return Err(corrupt(format!("unknown class-balance tag {v}"))),
    };
    let clamp_nonadversarial = match r.u8("clamp_nonadversarial")? {
        0 => false,
        1 => true,
        v => return Err(corrupt(format!("bad bool {v}"))),
    };
    let scaleout = match r.u8("scaleout tag")? {
        0 => Scaleout::RowWise,
        1 => Scaleout::Sharded {
            shards: r.usize("shard count")?,
        },
        2 => Scaleout::Auto,
        v => return Err(corrupt(format!("unknown scaleout tag {v}"))),
    };
    if !r.is_exhausted() {
        return Err(corrupt("trailing bytes in TCFG"));
    }
    Ok(TrainConfig {
        epochs,
        learning_rate,
        lr_decay,
        cd_epochs,
        cd_learning_rate,
        l2,
        seed,
        gibbs_steps,
        batch_size,
        tol,
        init_acc_weight,
        init_from_majority_vote,
        class_balance,
        clamp_nonadversarial,
        scaleout,
    })
}

/// The v3 `DISC` section: the disc model's trained-at generation
/// (staleness survives restarts — `SESS` carries the live counter), the
/// self-contained distillation configuration, and the sparse per-class
/// weights.
fn enc_disc(disc: &FrozenDisc) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(disc.generation);
    w.put_u32(disc.config.featurizer.buckets);
    w.put_usize(disc.config.featurizer.window);
    w.put_u8(disc.config.featurizer.bigrams as u8);
    w.put_u32(disc.config.train.dim);
    w.put_usize(disc.config.train.epochs);
    w.put_f64(disc.config.train.learning_rate);
    w.put_f64(disc.config.train.l2);
    w.put_usize(disc.config.train.batch_size);
    w.put_u64(disc.config.train.seed);
    w.put_f64(disc.config.train.min_confidence);
    w.put_u32(disc.model.dim);
    w.put_usize(disc.model.class_weights.len());
    for class in &disc.model.class_weights {
        w.put_usize(class.len());
        for &(idx, val) in class {
            w.put_u32(idx);
            w.put_f64(val);
        }
    }
    w.put_usize(disc.model.bias.len());
    for &b in &disc.model.bias {
        w.put_f64(b);
    }
    w.into_bytes()
}

/// The v4 `STRM` section: the streaming plane's persistent state. The
/// running moment totals travel as raw f64 bits (they are exact sums
/// of integer counts, so bit-exactness preserves the online-equals-
/// batch invariant across a restart); the diagnostic window ring is
/// deliberately not persisted.
fn enc_stream(s: &FrozenStream) -> Vec<u8> {
    let mut w = Writer::new();
    let put_f64s = |w: &mut Writer, xs: &[f64]| {
        w.put_usize(xs.len());
        for &x in xs {
            w.put_f64(x);
        }
    };
    let put_u64s = |w: &mut Writer, xs: &[u64]| {
        w.put_usize(xs.len());
        for &x in xs {
            w.put_u64(x);
        }
    };
    w.put_usize(s.stats.num_lfs);
    w.put_u8(s.stats.cardinality);
    w.put_f64(s.stats.rows);
    put_f64s(&mut w, &s.stats.votes);
    put_f64s(&mut w, &s.stats.mv_class);
    put_f64s(&mut w, &s.stats.agree_mv);
    put_f64s(&mut w, &s.stats.total_mv);
    put_f64s(&mut w, &s.stats.both);
    put_f64s(&mut w, &s.stats.agree);
    w.put_usize(s.config.window_rows);
    w.put_usize(s.config.ring_windows);
    w.put_f64(s.config.threshold);
    match &s.reference {
        None => w.put_u8(0),
        Some(win) => {
            w.put_u8(1);
            w.put_u64(win.rows);
            put_u64s(&mut w, &win.votes);
            put_u64s(&mut w, &win.agree_mv);
            put_u64s(&mut w, &win.total_mv);
        }
    }
    w.put_u64(s.batches);
    w.put_u64(s.rows);
    w.put_u64(s.auto_refits);
    w.put_f64(s.drift_score);
    put_f64s(&mut w, &s.per_lf_scores);
    w.into_bytes()
}

fn dec_stream(r: &mut Reader<'_>) -> Result<FrozenStream, SnapError> {
    let f64s = |r: &mut Reader<'_>, context| -> Result<Vec<f64>, SnapError> {
        let n = r.len(8, context)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(r.f64(context)?);
        }
        Ok(out)
    };
    let u64s = |r: &mut Reader<'_>, context| -> Result<Vec<u64>, SnapError> {
        let n = r.len(8, context)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(r.u64(context)?);
        }
        Ok(out)
    };
    let num_lfs = r.usize("stream LF count")?;
    let cardinality = r.u8("stream cardinality")?;
    let rows = r.f64("stream weighted rows")?;
    let stats = MomentStatsParts {
        num_lfs,
        cardinality,
        rows,
        votes: f64s(r, "stream votes")?,
        mv_class: f64s(r, "stream mv_class")?,
        agree_mv: f64s(r, "stream agree_mv")?,
        total_mv: f64s(r, "stream total_mv")?,
        both: f64s(r, "stream both")?,
        agree: f64s(r, "stream agree")?,
    };
    let config = DriftConfig {
        window_rows: r.usize("drift window_rows")?,
        ring_windows: r.usize("drift ring_windows")?,
        threshold: r.f64("drift threshold")?,
    };
    let reference = match r.u8("reference window tag")? {
        0 => None,
        1 => Some(WindowStats {
            rows: r.u64("window rows")?,
            votes: u64s(r, "window votes")?,
            agree_mv: u64s(r, "window agree_mv")?,
            total_mv: u64s(r, "window total_mv")?,
        }),
        v => return Err(corrupt(format!("bad reference window tag {v}"))),
    };
    let frozen = FrozenStream {
        stats,
        config,
        reference,
        batches: r.u64("ingested batches")?,
        rows: r.u64("ingested rows")?,
        auto_refits: r.u64("auto refits")?,
        drift_score: r.f64("drift score")?,
        per_lf_scores: f64s(r, "per-LF drift scores")?,
    };
    if !r.is_exhausted() {
        return Err(corrupt("trailing bytes in STRM"));
    }
    // Every structural invariant (count consistency, score ranges,
    // window sanity) is enforced by the stream crate's own thaw path —
    // run it here so a corrupt STRM is a typed snapshot error, not a
    // later session-thaw surprise.
    StreamState::thaw(frozen.clone()).map_err(|e| corrupt(format!("STRM: {e}")))?;
    Ok(frozen)
}

fn dec_disc(r: &mut Reader<'_>) -> Result<FrozenDisc, SnapError> {
    let generation = r.u64("disc generation")?;
    let buckets = r.u32("featurizer buckets")?;
    let window = r.usize("featurizer window")?;
    let bigrams = match r.u8("featurizer bigrams")? {
        0 => false,
        1 => true,
        v => return Err(corrupt(format!("bad bool {v}"))),
    };
    let dim = r.u32("distill dim")?;
    let epochs = r.usize("distill epochs")?;
    let learning_rate = r.f64("distill learning_rate")?;
    let l2 = r.f64("distill l2")?;
    let batch_size = r.usize("distill batch_size")?;
    let seed = r.u64("distill seed")?;
    let min_confidence = r.f64("distill min_confidence")?;
    let model_dim = r.u32("disc model dim")?;
    let k = r.len(8, "disc class count")?;
    let mut class_weights = Vec::with_capacity(k);
    for _ in 0..k {
        let n = r.len(12, "disc weight count")?;
        let mut class = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = r.u32("disc weight bucket")?;
            class.push((idx, r.f64("disc weight value")?));
        }
        class_weights.push(class);
    }
    let n = r.len(8, "disc bias count")?;
    let mut bias = Vec::with_capacity(n);
    for _ in 0..n {
        bias.push(r.f64("disc bias")?);
    }
    if !r.is_exhausted() {
        return Err(corrupt("trailing bytes in DISC"));
    }
    // The hyperparameters retrain the model after thaw — a NaN learning
    // rate or an out-of-range confidence floor would poison the first
    // warm refit silently; refuse it here, typed, like every other
    // structurally invalid snapshot field.
    if buckets == 0 || dim == 0 {
        return Err(corrupt("disc config: zero hash buckets"));
    }
    if !(learning_rate.is_finite() && learning_rate > 0.0) {
        return Err(corrupt(format!(
            "disc config: bad learning rate {learning_rate}"
        )));
    }
    if !(l2.is_finite() && l2 >= 0.0) {
        return Err(corrupt(format!("disc config: bad l2 {l2}")));
    }
    if !(min_confidence.is_finite() && (0.0..1.0).contains(&min_confidence)) {
        return Err(corrupt(format!(
            "disc config: bad confidence floor {min_confidence}"
        )));
    }
    let model = DiscModelParts {
        dim: model_dim,
        class_weights,
        bias,
    };
    model
        .validate()
        .map_err(|e| corrupt(format!("disc model: {e}")))?;
    let disc = FrozenDisc {
        config: DiscTrainerConfig {
            featurizer: TextFeaturizer {
                buckets,
                window,
                bigrams,
            },
            train: DistillConfig {
                dim,
                epochs,
                learning_rate,
                l2,
                batch_size,
                seed,
                min_confidence,
            },
        },
        model,
        generation,
    };
    Ok(disc)
}

/// The v5 `REPL` section: a fixed 16-byte replication mark — the op-log
/// LSN this image reflects and the server generation at that LSN. A
/// replica restarting from the snapshot resumes its WAL (or its leader
/// subscription) at `applied_lsn + 1` instead of replaying history.
fn enc_repl(mark: &ReplMark) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(mark.applied_lsn);
    w.put_u64(mark.generation);
    w.into_bytes()
}

fn dec_repl(r: &mut Reader<'_>) -> Result<ReplMark, SnapError> {
    let applied_lsn = r.u64("repl applied lsn")?;
    let generation = r.u64("repl generation")?;
    if !r.is_exhausted() {
        return Err(corrupt("trailing bytes in REPL"));
    }
    Ok(ReplMark {
        applied_lsn,
        generation,
    })
}
