//! The multithreaded TCP labeling service.
//!
//! One [`IncrementalSession`] sits behind an `RwLock`. Read requests
//! (`MARGINAL`, `APPLY`, `STATS`, `SNAPSHOT`) take the shared lock and
//! run concurrently; `REFRESH` (an LF edit plus re-label) takes the
//! exclusive lock, splices Λ via the session's `MatrixDelta` path, and
//! warm-starts training. A response is always computed against one
//! consistent model: the generation counter bumps only under the write
//! lock, so every reply is attributable to exactly the pre- or post-edit
//! state — never a torn mix. `INGEST` (streaming candidate arrival)
//! also takes the write lock, but holds it only for the Λ row splice
//! and the closed-form online moment solve — never a full re-label —
//! and its admission is bounded by an ingest gate that refuses with
//! `ERR backpressure` instead of queueing (see
//! [`ServeConfig::ingest_queue`]).
//!
//! ## Connection model
//!
//! A fixed pool of worker threads multiplexes all client sockets: the
//! accept thread sets each accepted socket nonblocking and deals it
//! round-robin to a worker's inbox, and each worker repeatedly *pumps*
//! its connections — flush pending output, read whatever bytes are
//! available, service every complete request in the buffer, flush again.
//! Nothing blocks on any one socket, so thousands of idle connections
//! cost two threads' worth of polling, not thousands of stacks, and a
//! cap ([`ServeConfig::max_connections`]) refuses excess connections
//! with `ERR busy` instead of queueing without bound. The pump services
//! every complete request it finds, so N requests pipelined in one TCP
//! segment yield N in-order replies in as little as one segment back.
//! One consequence to know about: a verb that runs long (`REFRESH`,
//! `SNAPSHOT`) occupies its worker for the duration, stalling only the
//! connections dealt to that worker — readers on other workers proceed.
//!
//! Both wire planes share one port: a first byte of
//! [`crate::frame::FRAME_MAGIC`] starts a length-prefixed
//! binary frame (see [`crate::frame`]), anything else is a text line.
//!
//! `MARGINAL` is served through a pattern-memo on top of the model
//! posterior: deployment traffic collapses onto few distinct vote
//! signatures (the same observation the `PatternIndex` exploits for
//! training), so each signature's posterior is computed once per model
//! generation and then served from the memo. Batched binary requests
//! amortize further: one read-lock acquisition and one memo pass cover
//! the whole batch.
//!
//! The batched read path is **allocation-free in the steady state**:
//! each worker owns a [`ReadScratch`] arena (reset, never freed, per
//! request), the memo is the structure-of-arrays [`SigMemo`] whose
//! lookups borrow rather than clone, and replies are encoded straight
//! into the connection's capacity-retaining output buffer. See
//! [`crate::hotpath`] and `docs/PERFORMANCE.md` for the budgets.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use snorkel_context::Corpus;
use snorkel_core::model::LabelScheme;
use snorkel_incr::IncrementalSession;
use snorkel_lf::Vote;
use snorkel_obs::{trace_level, Counter, Gauge, Histogram, TraceLevel, TraceRing};
use snorkel_stream::IngestGate;

use crate::frame::{self, FRAME_HEADER_BYTES, FRAME_MAGIC, MAX_FRAME_BYTES};
use crate::hotpath::{self, ReadScratch, SigMemo};
use crate::protocol::{format_probs, parse_request, Request, SuiteEdit};
use crate::repl::follower::{Backoff, ConnectError, TailConn, TailEvent};
use crate::repl::leader::OpLog;
use crate::repl::wal::{self, WalFile};
use crate::repl::{self, ReplMark};
use crate::snap::{SnapError, Snapshot};

/// Every wire verb, in the order `ServeObs` stores their metric
/// handles.
const VERBS: [&str; 13] = [
    "PING",
    "MARGINAL",
    "APPLY",
    "PREDICT",
    "PREDICT_TEXT",
    "INGEST",
    "REFRESH",
    "SNAPSHOT",
    "STATS",
    "METRICS",
    "SLOWLOG",
    "PROMOTE",
    "SHUTDOWN",
];

/// Binary-plane opcode labels, in the order `ServeObs` stores their
/// handles. `UNKNOWN` accounts frames whose opcode the protocol does
/// not define (they still cost a parse and a reply).
const OPCODES: [&str; 8] = [
    "PING",
    "MARGINAL",
    "PREDICT",
    "INGEST",
    "LOG_SUBSCRIBE",
    "LOG_RECORD",
    "LOG_HEARTBEAT",
    "UNKNOWN",
];

/// One verb's request-path handles.
struct VerbMetrics {
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    latency: Arc<Histogram>,
}

/// One binary opcode's frame-path handles.
struct FrameMetrics {
    frames: Arc<Counter>,
    errors: Arc<Counter>,
    items: Arc<Counter>,
    latency: Arc<Histogram>,
}

/// Pre-resolved global-registry handles for the serving layer. Resolved
/// once at server start, so the per-request path is a few relaxed
/// atomics and never touches the registry lock (and never allocates).
struct ServeObs {
    verbs: [VerbMetrics; VERBS.len()],
    opcodes: [FrameMetrics; OPCODES.len()],
    parse_errors: Arc<Counter>,
    lock_wait_read: Arc<Histogram>,
    lock_wait_write: Arc<Histogram>,
    disc_gen_lag: Arc<Gauge>,
    memo_size: Arc<Gauge>,
    memo_generation: Arc<Gauge>,
    /// Batch sizes seen on the binary plane. The histogram's buckets
    /// are the obs crate's log₂ nanosecond buckets, so a recorded batch
    /// size N lands in the bucket labeled N×1e-9 "seconds" — the scale
    /// is nominal, the shape is what matters.
    batch_size: Arc<Histogram>,
    connections_open: Arc<Gauge>,
    connections_rejected: Arc<Counter>,
    /// Current depth of the bounded ingest gate (streaming plane).
    ingest_queue_depth: Arc<Gauge>,
    /// Ingest requests refused with `ERR backpressure` because the
    /// gate was full.
    backpressure: Arc<Counter>,
}

impl ServeObs {
    fn resolve() -> ServeObs {
        let r = snorkel_obs::global();
        ServeObs {
            verbs: VERBS.map(|verb| VerbMetrics {
                requests: r.counter("snorkel_serve_requests_total", &[("verb", verb)]),
                errors: r.counter("snorkel_serve_errors_total", &[("verb", verb)]),
                latency: r.histogram("snorkel_serve_request_seconds", &[("verb", verb)]),
            }),
            opcodes: OPCODES.map(|op| FrameMetrics {
                frames: r.counter("snorkel_serve_frames_total", &[("opcode", op)]),
                errors: r.counter("snorkel_serve_frame_errors_total", &[("opcode", op)]),
                items: r.counter("snorkel_serve_batch_items_total", &[("opcode", op)]),
                latency: r.histogram("snorkel_serve_frame_seconds", &[("opcode", op)]),
            }),
            parse_errors: r.counter("snorkel_serve_parse_errors_total", &[]),
            lock_wait_read: r.histogram("snorkel_serve_lock_wait_seconds", &[("lock", "read")]),
            lock_wait_write: r.histogram("snorkel_serve_lock_wait_seconds", &[("lock", "write")]),
            disc_gen_lag: r.gauge("snorkel_serve_disc_gen_lag", &[]),
            memo_size: r.gauge("snorkel_serve_memo_size", &[]),
            memo_generation: r.gauge("snorkel_serve_memo_generation", &[]),
            batch_size: r.histogram("snorkel_serve_batch_size", &[]),
            connections_open: r.gauge("snorkel_serve_connections_open", &[]),
            connections_rejected: r.counter("snorkel_serve_connections_rejected_total", &[]),
            ingest_queue_depth: r.gauge("snorkel_stream_queue_depth", &[]),
            backpressure: r.counter("snorkel_stream_backpressure_total", &[]),
        }
    }

    fn verb(&self, verb: &'static str) -> &VerbMetrics {
        let idx = VERBS
            .iter()
            .position(|&v| std::ptr::eq(v.as_ptr(), verb.as_ptr()) || v == verb)
            .expect("every Request::verb() value is in VERBS");
        &self.verbs[idx]
    }

    fn opcode(&self, name: &'static str) -> &FrameMetrics {
        let idx = OPCODES
            .iter()
            .position(|&v| std::ptr::eq(v.as_ptr(), name.as_ptr()) || v == name)
            .expect("every opcode label is in OPCODES");
        &self.opcodes[idx]
    }
}

/// Pre-resolved handles for the replication plane (documented in
/// `docs/OBSERVABILITY.md`, spec in `docs/REPLICATION.md`).
struct ReplObs {
    /// Records appended to the on-disk WAL.
    wal_records: Arc<Counter>,
    /// Framed bytes appended to the on-disk WAL.
    wal_bytes: Arc<Counter>,
    /// WAL appends that failed (serving continues on the in-memory log;
    /// durability is degraded until the next snapshot).
    wal_append_errors: Arc<Counter>,
    /// Ops a follower replayed from its leader's live tail.
    ops_replayed: Arc<Counter>,
    /// Replay failures (bad record, LSN gap, divergence) — each one
    /// halts the tail permanently; the follower keeps serving its last
    /// consistent state.
    replay_errors: Arc<Counter>,
    /// Successful (re)subscriptions to the leader.
    reconnects: Arc<Counter>,
    /// Heartbeats received from the leader while the log was idle.
    heartbeats: Arc<Counter>,
    /// Last LSN applied to this server's state.
    applied_lsn: Arc<Gauge>,
    /// Leader tip minus follower applied LSN, sampled at each heartbeat.
    lag_records: Arc<Gauge>,
    /// Live `OP_LOG_SUBSCRIBE` streams on this server.
    subscribers: Arc<Gauge>,
}

impl ReplObs {
    fn resolve() -> ReplObs {
        let r = snorkel_obs::global();
        ReplObs {
            wal_records: r.counter("snorkel_repl_wal_records_total", &[]),
            wal_bytes: r.counter("snorkel_repl_wal_bytes_total", &[]),
            wal_append_errors: r.counter("snorkel_repl_wal_append_errors_total", &[]),
            ops_replayed: r.counter("snorkel_repl_ops_replayed_total", &[]),
            replay_errors: r.counter("snorkel_repl_replay_errors_total", &[]),
            reconnects: r.counter("snorkel_repl_reconnects_total", &[]),
            heartbeats: r.counter("snorkel_repl_heartbeats_total", &[]),
            applied_lsn: r.gauge("snorkel_repl_applied_lsn", &[]),
            lag_records: r.gauge("snorkel_repl_lag_records", &[]),
            subscribers: r.gauge("snorkel_repl_subscribers", &[]),
        }
    }
}

/// `Repl::role` values.
const ROLE_LEADER: u8 = 0;
const ROLE_FOLLOWER: u8 = 1;

/// The replication plane: present iff the server was started with a WAL
/// path or a leader address ([`ServeConfig::wal_path`] /
/// [`ServeConfig::follow`]).
struct Repl {
    /// In-memory op log since the boot snapshot — what subscribers tail.
    oplog: OpLog,
    /// On-disk WAL, when configured. Appends happen under the state
    /// write lock, which also serializes LSN assignment.
    wal: Option<Mutex<WalFile>>,
    /// Leader address this server tails, when started as a follower.
    follow: Option<String>,
    /// [`ROLE_LEADER`] or [`ROLE_FOLLOWER`]; flipped (once) by
    /// `PROMOTE`.
    role: AtomicU8,
    /// Set by `PROMOTE` to stop the tail thread; checked under the
    /// write lock so no replayed record can land after the seal.
    tail_stop: AtomicBool,
    obs: ReplObs,
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`LabelServer::addr`]).
    pub addr: String,
    /// Default snapshot target — `SNAPSHOT` without a path, the
    /// periodic auto-snapshot, and the final snapshot on graceful
    /// shutdown all write here.
    pub snapshot_path: Option<PathBuf>,
    /// Write a snapshot this often (requires `snapshot_path`).
    pub auto_snapshot: Option<Duration>,
    /// Worker threads multiplexing the client sockets. `0` (the
    /// default) sizes to the machine: one per available core, clamped
    /// to 2..=8.
    pub workers: usize,
    /// Most sockets served at once. A connection over the cap is
    /// refused immediately with `ERR busy` — never queued — so an
    /// overload sheds load visibly (`snorkel_serve_connections_rejected_total`)
    /// instead of accumulating threads or latency.
    pub max_connections: usize,
    /// Most `INGEST` requests admitted at once (the streaming plane's
    /// bounded queue). A request over the cap is refused immediately
    /// with `ERR backpressure` (text) or a `STATUS_ERR` frame (binary)
    /// — never queued — and counted on
    /// `snorkel_stream_backpressure_total`. `0` refuses all ingest
    /// (drain mode).
    pub ingest_queue: usize,
    /// Tail this leader address as a read-only follower: bootstrap from
    /// the resumed snapshot (see [`Self::repl_mark`]), subscribe over
    /// `OP_LOG_SUBSCRIBE`, and replay every op. Mutating verbs are
    /// refused with `ERR readonly` until a `PROMOTE`.
    pub follow: Option<String>,
    /// Append every mutating op to this write-ahead log. On start an
    /// existing file is recovered: its torn tail (if any) is truncated
    /// and every record past [`Self::repl_mark`] is replayed.
    pub wal_path: Option<PathBuf>,
    /// Replication position of the resumed snapshot (its `REPL`
    /// section). `None` means the state predates the log origin — LSN
    /// and generation both start at the mark's defaults (zero).
    pub repl_mark: Option<ReplMark>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            snapshot_path: None,
            auto_snapshot: None,
            workers: 0,
            max_connections: 1024,
            ingest_queue: 16,
            follow: None,
            wal_path: None,
            repl_mark: None,
        }
    }
}

struct ServeState {
    session: IncrementalSession,
    /// Bumped under the write lock on every successful `REFRESH`, and
    /// on every `INGEST` whose online solve or auto-refit changed the
    /// model (the posterior memo is keyed by this counter, so any
    /// weight change must advance it).
    generation: u64,
    /// LSN of the last op-log record applied to this state (0 until the
    /// first mutation; always 0 on a non-replicated server). Advances
    /// only under the write lock, in the same critical section as the
    /// mutation itself, so `(generation, applied_lsn)` is always a
    /// consistent pair.
    applied_lsn: u64,
}

struct Inner {
    state: RwLock<ServeState>,
    /// Per-generation posterior memo ([`SigMemo`] — flat arenas + probe
    /// table; capped at [`hotpath::MEMO_CAP`] signatures).
    memo: Mutex<SigMemo>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    /// One inbox per worker; the accept thread deals accepted sockets
    /// round-robin and each worker adopts its inbox every pass.
    inboxes: Vec<Mutex<Vec<TcpStream>>>,
    open_conns: AtomicU64,
    max_conns: usize,
    snapshot_path: Option<PathBuf>,
    /// Bounded admission for the streaming plane: an `INGEST` request
    /// holds a permit for its whole execution; a full gate refuses with
    /// `ERR backpressure` instead of queueing.
    ingest_gate: IngestGate,
    queries: AtomicU64,
    memo_hits: AtomicU64,
    refreshes: AtomicU64,
    snapshots_written: AtomicU64,
    /// High-water scratch-arena footprint across all workers, in bytes
    /// (the `STATS` reply's `scratch_bytes=` field; per-worker values
    /// are on the `snorkel_serve_scratch_bytes` gauge).
    scratch_high: AtomicU64,
    obs: ServeObs,
    /// The replication plane; `None` on a plain standalone server.
    repl: Option<Repl>,
    /// Signaled on shutdown so the auto-snapshotter exits promptly.
    tick: Mutex<()>,
    tick_cv: Condvar,
}

/// Handle to a running labeling server. Dropping the handle does *not*
/// stop the server; call [`Self::shutdown`] (or send `SHUTDOWN` over the
/// wire and then [`Self::wait`]).
pub struct LabelServer {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    snapshotter: Option<JoinHandle<()>>,
    tail: Option<JoinHandle<()>>,
}

impl LabelServer {
    /// Bind and start serving `session`. Returns once the listener is
    /// accepting.
    ///
    /// When replication is configured ([`ServeConfig::wal_path`] /
    /// [`ServeConfig::follow`]), the generation and LSN counters resume
    /// from [`ServeConfig::repl_mark`], an existing WAL is recovered
    /// (torn tail truncated, records past the mark replayed through the
    /// same entry points live traffic uses), and — in follower mode —
    /// the tail thread subscribes to the leader before the listener
    /// starts answering. A WAL that contradicts the snapshot mark is a
    /// startup error, never a silent partial replay.
    pub fn start(
        mut session: IncrementalSession,
        config: ServeConfig,
    ) -> std::io::Result<LabelServer> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let worker_count = if config.workers == 0 {
            std::thread::available_parallelism()
                .map_or(4, std::num::NonZeroUsize::get)
                .clamp(2, 8)
        } else {
            config.workers
        };
        let replicated = config.wal_path.is_some() || config.follow.is_some();
        let mark = config.repl_mark.unwrap_or_default();
        let mut generation = if replicated { mark.generation } else { 0 };
        let mut applied_lsn = if replicated { mark.applied_lsn } else { 0 };
        let repl = if replicated {
            let (wal_file, oplog) = match &config.wal_path {
                Some(path) => {
                    let (wal_file, oplog) =
                        recover_wal(&mut session, &mut generation, &mut applied_lsn, path, mark)?;
                    (Some(wal_file), oplog)
                }
                None => (None, OpLog::new(mark.applied_lsn)),
            };
            let obs = ReplObs::resolve();
            obs.applied_lsn.set(applied_lsn.min(i64::MAX as u64) as i64);
            Some(Repl {
                oplog,
                wal: wal_file.map(Mutex::new),
                follow: config.follow.clone(),
                role: AtomicU8::new(if config.follow.is_some() {
                    ROLE_FOLLOWER
                } else {
                    ROLE_LEADER
                }),
                tail_stop: AtomicBool::new(false),
                obs,
            })
        } else {
            None
        };
        let inner = Arc::new(Inner {
            state: RwLock::new(ServeState {
                session,
                generation,
                applied_lsn,
            }),
            memo: Mutex::new(SigMemo::new()),
            shutdown: AtomicBool::new(false),
            addr,
            inboxes: (0..worker_count).map(|_| Mutex::new(Vec::new())).collect(),
            open_conns: AtomicU64::new(0),
            max_conns: config.max_connections.max(1),
            snapshot_path: config.snapshot_path.clone(),
            ingest_gate: IngestGate::new(config.ingest_queue),
            queries: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            scratch_high: AtomicU64::new(0),
            obs: ServeObs::resolve(),
            repl,
            tick: Mutex::new(()),
            tick_cv: Condvar::new(),
        });

        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::spawn(move || accept_loop(&accept_inner, &listener));

        let workers = (0..worker_count)
            .map(|idx| {
                let worker_inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&worker_inner, idx))
            })
            .collect();

        let snapshotter = match (config.auto_snapshot, &inner.snapshot_path) {
            (Some(every), Some(path)) => {
                let snap_inner = Arc::clone(&inner);
                let path = path.clone();
                Some(std::thread::spawn(move || loop {
                    let guard = lock_unpoisoned(&snap_inner.tick);
                    let (_g, _timeout) = snap_inner
                        .tick_cv
                        .wait_timeout(guard, every)
                        .unwrap_or_else(|e| e.into_inner());
                    if snap_inner.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let _ = write_snapshot(&snap_inner, &path);
                }))
            }
            _ => None,
        };

        let tail = if inner
            .repl
            .as_ref()
            .is_some_and(|repl| repl.follow.is_some())
        {
            let tail_inner = Arc::clone(&inner);
            Some(std::thread::spawn(move || follower_loop(&tail_inner)))
        } else {
            None
        };

        Ok(LabelServer {
            inner,
            accept: Some(accept),
            workers,
            snapshotter,
            tail,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Block until the server has fully stopped: the accept loop exited
    /// (a `SHUTDOWN` request arrived, or [`Self::shutdown`] was called
    /// from another thread) and every connection drained. Writes a final
    /// snapshot when a snapshot path is configured.
    pub fn wait(mut self) -> Result<(), SnapError> {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.tail.take() {
            let _ = h.join();
        }
        if let Some(h) = self.snapshotter.take() {
            self.inner.tick_cv.notify_all();
            let _ = h.join();
        }
        if let Some(path) = self.inner.snapshot_path.clone() {
            write_snapshot(&self.inner, &path)?;
            // Final metrics dump next to the final snapshot: counters die
            // with the process, so this exposition is the only record of
            // the run once the server is gone.
            {
                let state = read_state(&self.inner);
                publish_serve_gauges(&self.inner, &state);
            }
            let mut metrics_path = path.into_os_string();
            metrics_path.push(".metrics");
            let _ = std::fs::write(PathBuf::from(metrics_path), snorkel_obs::global().expose());
        }
        Ok(())
    }

    /// Trigger a graceful stop and block until drained (see
    /// [`Self::wait`]).
    pub fn shutdown(self) -> Result<(), SnapError> {
        trigger_shutdown(&self.inner);
        self.wait()
    }
}

/// Set the shutdown flag; the nonblocking accept and worker loops poll
/// it and exit within one backoff interval.
fn trigger_shutdown(inner: &Inner) {
    inner.shutdown.store(true, Ordering::SeqCst);
    inner.tick_cv.notify_all();
}

/// Nonblocking accept loop: enforce the connection cap, configure the
/// socket, deal it to a worker. Runs until the shutdown flag is set.
fn accept_loop(inner: &Inner, listener: &TcpListener) {
    let mut next_worker = 0usize;
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                if inner.open_conns.load(Ordering::Relaxed) >= inner.max_conns as u64 {
                    // Refuse, never queue: the client gets a reply it
                    // can parse, the gauge stays honest, and no memory
                    // accrues per rejected connection. The accepted
                    // socket is still blocking here (accept does not
                    // inherit the listener's nonblocking flag), so this
                    // one-line write goes out before the drop closes it.
                    inner.obs.connections_rejected.inc();
                    let _ = stream.set_nodelay(true);
                    let _ = stream.write_all(b"ERR busy\n");
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                inner.open_conns.fetch_add(1, Ordering::Relaxed);
                inner.obs.connections_open.add(1);
                let idx = next_worker % inner.inboxes.len();
                next_worker = next_worker.wrapping_add(1);
                lock_unpoisoned(&inner.inboxes[idx]).push(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Consecutive empty passes a worker spins (yielding) before switching
/// to sleeping between passes.
const IDLE_SPINS: u32 = 16;

/// How long an idle worker sleeps between passes once past
/// [`IDLE_SPINS`] — the ceiling on added latency for a request arriving
/// at an idle server.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// Worker-label values for the `snorkel_serve_scratch_bytes` gauge
/// (static strings — gauge resolution wants `'static` label values).
/// Workers beyond the table share the last label; the default pool is
/// clamped to 8 anyway.
const WORKER_LABELS: [&str; 16] = [
    "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15",
];

/// One worker: adopt inbox sockets, pump every connection, back off
/// when nothing moved. Exits when the shutdown flag is set, after a
/// best-effort flush of pending replies (so the client that sent
/// `SHUTDOWN` sees its `OK bye`).
///
/// The worker owns its [`ReadScratch`] arena: every request it
/// services decodes into and computes out of these buffers, which grow
/// to the worker's traffic high-water mark and are then reused
/// allocation-free. The high water is published on the per-worker
/// `snorkel_serve_scratch_bytes` gauge whenever it moves.
fn worker_loop(inner: &Inner, idx: usize) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = ReadScratch::new();
    let scratch_gauge = snorkel_obs::global().gauge(
        "snorkel_serve_scratch_bytes",
        &[("worker", WORKER_LABELS[idx.min(WORKER_LABELS.len() - 1)])],
    );
    let mut scratch_bytes = 0u64;
    let mut idle = 0u32;
    loop {
        {
            let mut inbox = lock_unpoisoned(&inner.inboxes[idx]);
            conns.extend(inbox.drain(..).map(Conn::new));
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            for conn in &mut conns {
                conn.final_flush();
                release_tail(inner, conn);
            }
            release_conns(inner, conns.len());
            return;
        }
        let mut progressed = false;
        conns.retain_mut(|conn| {
            let pump = conn.pump(inner, &mut scratch);
            progressed |= pump.progressed;
            if !pump.keep {
                release_conns(inner, 1);
                release_tail(inner, conn);
            }
            pump.keep
        });
        if progressed {
            idle = 0;
            let bytes = scratch.bytes() as u64;
            if bytes != scratch_bytes {
                scratch_bytes = bytes;
                scratch_gauge.set(bytes.min(i64::MAX as u64) as i64);
                inner.scratch_high.fetch_max(bytes, Ordering::Relaxed);
            }
        } else {
            idle = idle.saturating_add(1);
            if idle < IDLE_SPINS {
                std::thread::yield_now();
            } else {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
    }
}

fn release_conns(inner: &Inner, n: usize) {
    if n > 0 {
        inner.open_conns.fetch_sub(n as u64, Ordering::Relaxed);
        inner.obs.connections_open.add(-(n as i64));
    }
}

/// Drop a closing connection's subscriber registration, if it held one.
fn release_tail(inner: &Inner, conn: &Conn) {
    if conn.tail.is_some() {
        if let Some(repl) = &inner.repl {
            repl.obs.subscribers.add(-1);
        }
    }
}

/// Longest accepted request line. Far beyond any legal request, and it
/// bounds per-connection memory against a client that streams bytes
/// without ever sending a newline (the wire-protocol counterpart of the
/// snapshot reader's length-vs-remaining validation).
const MAX_LINE_BYTES: usize = 1 << 20;

/// Most bytes one pump reads from one socket before servicing what it
/// has — keeps a fire-hosing client from starving its worker's other
/// connections.
const READ_BUDGET: usize = 256 * 1024;

struct PumpResult {
    keep: bool,
    progressed: bool,
}

/// Push a heartbeat on an idle tail this often — the follower's
/// liveness signal (its read timeout is several multiples of this).
const HEARTBEAT_EVERY: Duration = Duration::from_millis(200);

/// Stop stuffing tail records into a connection's output buffer once
/// this many bytes are pending — a slow subscriber gets flow control,
/// not an unbounded buffer.
const TAIL_PENDING_CAP: usize = 256 * 1024;

/// A granted `OP_LOG_SUBSCRIBE` on this connection: the next LSN to
/// push and when something was last sent (for heartbeat pacing).
struct Tail {
    next_lsn: u64,
    last_send: Instant,
}

/// One multiplexed connection: unread request bytes, unwritten reply
/// bytes, and the two ways it winds down (we decided to close after the
/// pending replies drain, or the peer half-closed and we finish what's
/// buffered).
struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    outpos: usize,
    close_after_flush: bool,
    /// The connection is condemned (oversized line) but we keep
    /// reading and discarding until the peer's EOF: closing with
    /// unread bytes in the receive queue would turn the close into an
    /// RST, which can destroy the very `ERR` reply the peer needs to
    /// see.
    discard_input: bool,
    saw_eof: bool,
    /// A live `OP_LOG_SUBSCRIBE` stream, once granted: every pump pass
    /// pushes any new op-log records (and idle heartbeats) to this
    /// subscriber.
    tail: Option<Tail>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            outpos: 0,
            close_after_flush: false,
            discard_input: false,
            saw_eof: false,
            tail: None,
        }
    }

    fn fully_flushed(&self) -> bool {
        self.outpos == self.outbuf.len()
    }

    /// Write as much pending output as the socket will take right now.
    /// Returns bytes written; `Err` only on a hard socket error.
    fn flush_pending(&mut self) -> std::io::Result<usize> {
        let mut written = 0;
        while self.outpos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.outpos..]) {
                Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.outpos += n;
                    written += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.fully_flushed() {
            self.outbuf.clear();
            self.outpos = 0;
        }
        Ok(written)
    }

    /// Bounded best-effort drain on shutdown: retry `WouldBlock` briefly
    /// so the final replies (`OK bye`) reach the peer, but never wedge
    /// the worker on a stalled client.
    fn final_flush(&mut self) {
        for _ in 0..50 {
            match self.flush_pending() {
                Ok(_) if self.fully_flushed() => return,
                Ok(_) => std::thread::sleep(Duration::from_millis(1)),
                Err(_) => return,
            }
        }
    }

    /// One scheduling quantum for this connection: flush, read, service
    /// complete requests, flush. Returns whether to keep the connection
    /// and whether any bytes moved (the worker's idle detector).
    fn pump(&mut self, inner: &Inner, scratch: &mut ReadScratch) -> PumpResult {
        let closed = |progressed| PumpResult {
            keep: false,
            progressed,
        };
        let mut progressed = false;
        match self.flush_pending() {
            Ok(n) => progressed |= n > 0,
            Err(_) => return closed(true),
        }
        if self.close_after_flush {
            return PumpResult {
                keep: !self.fully_flushed(),
                progressed,
            };
        }
        if !self.saw_eof {
            let mut chunk = [0u8; 16 * 1024];
            let mut budget = READ_BUDGET;
            while budget > 0 {
                match self.stream.read(&mut chunk) {
                    Ok(0) => {
                        self.saw_eof = true;
                        break;
                    }
                    Ok(n) => {
                        if !self.discard_input {
                            self.inbuf.extend_from_slice(&chunk[..n]);
                        }
                        progressed = true;
                        budget = budget.saturating_sub(n);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return closed(true),
                }
            }
        }
        self.service(inner, scratch);
        progressed |= self.pump_tail(inner);
        match self.flush_pending() {
            Ok(n) => progressed |= n > 0,
            Err(_) => return closed(true),
        }
        if self.fully_flushed() {
            if self.close_after_flush {
                return closed(progressed);
            }
            // Peer half-closed and nothing actionable remains (an
            // unfinished binary frame can never complete without more
            // bytes; `service` already handled a trailing text line).
            if self.saw_eof && (self.inbuf.is_empty() || self.inbuf[0] == FRAME_MAGIC) {
                return closed(progressed);
            }
        }
        PumpResult {
            keep: true,
            progressed,
        }
    }

    /// Push new op-log records (or an idle heartbeat) to a subscribed
    /// tail, up to [`TAIL_PENDING_CAP`] pending output bytes — beyond
    /// that the subscriber is slow and backpressure wins. Returns
    /// whether anything was appended.
    fn pump_tail(&mut self, inner: &Inner) -> bool {
        let Some(repl) = &inner.repl else {
            return false;
        };
        let Some(tail) = self.tail.as_mut() else {
            return false;
        };
        let mut pushed = false;
        while self.outbuf.len() - self.outpos < TAIL_PENDING_CAP {
            let Some(body) = repl.oplog.get(tail.next_lsn) else {
                break;
            };
            frame::encode_log_record_into(&body, &mut self.outbuf);
            tail.next_lsn += 1;
            tail.last_send = Instant::now();
            pushed = true;
        }
        if !pushed && tail.last_send.elapsed() >= HEARTBEAT_EVERY {
            // Consistent (tip, generation) pair: both under one read
            // lock, so a heartbeat never advertises a tip from a
            // different generation than it reports.
            let (tip, gen) = {
                let state = read_state(inner);
                (state.applied_lsn, state.generation)
            };
            frame::encode_heartbeat_into(tip, gen, &mut self.outbuf);
            tail.last_send = Instant::now();
            pushed = true;
        }
        pushed
    }

    /// Service every complete request sitting in `inbuf`, in order,
    /// appending replies to `outbuf`. The first unread byte routes each
    /// request: [`FRAME_MAGIC`] starts a binary frame, anything else a
    /// text line — one connection may interleave both planes.
    fn service(&mut self, inner: &Inner, scratch: &mut ReadScratch) {
        loop {
            if self.discard_input {
                self.inbuf.clear();
                return;
            }
            if self.close_after_flush || self.inbuf.is_empty() {
                return;
            }
            if self.inbuf[0] == FRAME_MAGIC {
                if self.inbuf.len() < FRAME_HEADER_BYTES {
                    return; // partial header
                }
                let opcode = self.inbuf[1];
                let len = u32::from_le_bytes(self.inbuf[2..6].try_into().expect("4 header bytes"));
                if len > MAX_FRAME_BYTES {
                    inner.obs.parse_errors.inc();
                    inner.obs.opcode("UNKNOWN").errors.inc();
                    self.outbuf.extend_from_slice(&frame::encode_err(&format!(
                        "frame payload {len} exceeds the {MAX_FRAME_BYTES}-byte cap"
                    )));
                    self.close_after_flush = true;
                    return;
                }
                let total = FRAME_HEADER_BYTES + len as usize;
                if self.inbuf.len() < total {
                    return; // partial payload
                }
                if let Some(next) = handle_frame(
                    inner,
                    opcode,
                    &self.inbuf[FRAME_HEADER_BYTES..total],
                    scratch,
                    &mut self.outbuf,
                ) {
                    self.tail = Some(Tail {
                        next_lsn: next,
                        last_send: Instant::now(),
                    });
                }
                self.inbuf.drain(..total);
            } else {
                match self.inbuf.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        let keep_open =
                            handle_text_line(inner, &self.inbuf[..pos], &mut self.outbuf, scratch);
                        self.inbuf.drain(..=pos);
                        if !keep_open {
                            self.close_after_flush = true;
                        }
                    }
                    None if self.inbuf.len() >= MAX_LINE_BYTES => {
                        // Tell the client *why* before dropping it — a
                        // silent close here is indistinguishable from a
                        // crash on the other end. Then discard the rest
                        // of the stream until the peer's EOF, so the
                        // eventual close is a clean FIN.
                        inner.obs.parse_errors.inc();
                        self.outbuf
                            .extend_from_slice(b"ERR request line too long\n");
                        self.discard_input = true;
                        self.inbuf.clear();
                        return;
                    }
                    None if self.saw_eof => {
                        // Half-close after an unterminated line: honor
                        // it as the final request.
                        let line = std::mem::take(&mut self.inbuf);
                        handle_text_line(inner, &line, &mut self.outbuf, scratch);
                        self.close_after_flush = true;
                        return;
                    }
                    None => return, // partial line, more bytes coming
                }
            }
        }
    }
}

/// Parse and execute one text request line (without its newline),
/// appending the reply line(s) to `out`. Returns `false` when the
/// connection must close after the reply flushes (`SHUTDOWN`).
fn handle_text_line(
    inner: &Inner,
    bytes: &[u8],
    out: &mut Vec<u8>,
    scratch: &mut ReadScratch,
) -> bool {
    let Ok(text) = std::str::from_utf8(bytes) else {
        // Reject rather than substitute U+FFFD: a mangled APPLY or
        // REFRESH spec must not reach the session looking legitimate.
        inner.obs.parse_errors.inc();
        out.extend_from_slice(b"ERR invalid utf-8\n");
        return true;
    };
    let response = match parse_request(text) {
        Err(e) => {
            inner.obs.parse_errors.inc();
            format!("ERR {e}")
        }
        Ok(req) => {
            // Per-verb accounting: latency into the verb's histogram
            // and the trace ring (SLOWLOG), counts per verb. Handles
            // were resolved at server start, so nothing here allocates
            // or locks the registry; timing is inlined (rather than a
            // `Span`, which would clone an `Arc` per request) to keep
            // the read path under its overhead budget.
            let verb = req.verb();
            let vm = inner.obs.verb(verb);
            vm.requests.inc();
            let start = Instant::now();
            if matches!(req, Request::Shutdown) {
                out.extend_from_slice(b"OK bye\n");
                record_request(vm, verb, start);
                trigger_shutdown(inner);
                return false;
            }
            let response = handle_request(inner, req, scratch);
            record_request(vm, verb, start);
            if response.starts_with("ERR") {
                vm.errors.inc();
            }
            response
        }
    };
    // METRICS/SLOWLOG responses embed payload newlines; the header
    // line's `lines=<k>` tells clients how much follows.
    out.extend_from_slice(response.as_bytes());
    out.push(b'\n');
    true
}

/// Decode and execute one binary frame, appending the encoded reply to
/// `out`. A batch is atomic: any invalid row fails the whole frame
/// with one error frame. Returns `Some(next_lsn)` when the frame was a
/// granted `OP_LOG_SUBSCRIBE` — the caller installs the tail on the
/// connection.
///
/// This is the allocation-free path: requests decode into the worker's
/// scratch arenas, posteriors are computed through the `*_into`
/// kernels, and OK replies for the batched verbs are encoded straight
/// into `out` (the connection's capacity-retaining output buffer). The
/// error branches still allocate — they are off the steady-state path
/// by definition.
fn handle_frame(
    inner: &Inner,
    opcode: u8,
    payload: &[u8],
    scratch: &mut ReadScratch,
    out: &mut Vec<u8>,
) -> Option<u64> {
    let Some(name) = frame::opcode_name(opcode) else {
        inner.obs.parse_errors.inc();
        let fm = inner.obs.opcode("UNKNOWN");
        fm.frames.inc();
        fm.errors.inc();
        out.extend_from_slice(&frame::encode_err(&format!(
            "unknown opcode 0x{opcode:02x}"
        )));
        return None;
    };
    let fm = inner.obs.opcode(name);
    fm.frames.inc();
    let start = Instant::now();
    let mut granted = None;
    // `Err((message, is_parse_error))`: a malformed frame counts
    // against `snorkel_serve_parse_errors_total`, a well-formed one
    // rejected by the session does not — the same split the owned
    // decode path kept.
    let result: Result<(), (String, bool)> = match opcode {
        frame::OP_PING => {
            if payload.is_empty() {
                let gen = read_state(inner).generation;
                out.extend_from_slice(&frame::encode_pong(gen));
                Ok(())
            } else {
                Err((format!("{} trailing bytes in frame", payload.len()), true))
            }
        }
        frame::OP_MARGINAL => match hotpath::decode_marginal(payload, scratch) {
            Err(e) => Err((e, true)),
            Ok(rows) => {
                fm.items.add(rows as u64);
                inner.obs.batch_size.record_ns(rows as u64);
                inner.queries.fetch_add(rows as u64, Ordering::Relaxed);
                let state = read_state(inner);
                match hotpath::compute_marginal(
                    &state.session,
                    state.generation,
                    &inner.memo,
                    scratch,
                ) {
                    Err(e) => Err((e, false)),
                    Ok(outcome) => {
                        inner
                            .memo_hits
                            .fetch_add(outcome.memo_hits, Ordering::Relaxed);
                        frame::encode_marginal_reply_flat_into(
                            state.generation,
                            scratch.probs(),
                            outcome.width,
                            out,
                        );
                        Ok(())
                    }
                }
            }
        },
        frame::OP_PREDICT => match hotpath::decode_predict(payload, scratch) {
            Err(e) => Err((e, true)),
            Ok(rows) => {
                fm.items.add(rows as u64);
                inner.obs.batch_size.record_ns(rows as u64);
                inner.queries.fetch_add(rows as u64, Ordering::Relaxed);
                let state = read_state(inner);
                match hotpath::compute_predict(&state.session, payload, scratch) {
                    Err(e) => Err((e, false)),
                    Ok(outcome) => {
                        frame::encode_predict_reply_flat_into(
                            state.generation,
                            outcome.disc_gen,
                            scratch.probs(),
                            outcome.width,
                            out,
                        );
                        Ok(())
                    }
                }
            }
        },
        frame::OP_INGEST => match frame::decode_request(opcode, payload) {
            Err(e) => Err((e, true)),
            Ok(frame::BinRequest::Ingest(rows)) => {
                fm.items.add(rows.len() as u64);
                inner.obs.batch_size.record_ns(rows.len() as u64);
                match handle_ingest_core(inner, &rows) {
                    Err(e) => Err((e, false)),
                    Ok(s) => {
                        out.extend_from_slice(&frame::encode_ingest_reply(
                            s.gen,
                            s.rows,
                            s.total,
                            s.online,
                            s.drift_score,
                            s.auto_refit,
                        ));
                        Ok(())
                    }
                }
            }
            Ok(_) => unreachable!("OP_INGEST decodes to BinRequest::Ingest"),
        },
        frame::OP_LOG_SUBSCRIBE => match frame::decode_request(opcode, payload) {
            Err(e) => Err((e, true)),
            Ok(frame::BinRequest::LogSubscribe { from }) => match subscribe_grant(inner, from) {
                Ok((next, tip, gen)) => {
                    out.extend_from_slice(&frame::encode_sub_ack(next, tip, gen));
                    granted = Some(next);
                    Ok(())
                }
                Err(e) => Err((e, false)),
            },
            Ok(_) => unreachable!("OP_LOG_SUBSCRIBE decodes to BinRequest::LogSubscribe"),
        },
        frame::OP_LOG_RECORD | frame::OP_LOG_HEARTBEAT => Err((
            format!("opcode 0x{opcode:02x} is server-push only, not a request"),
            true,
        )),
        _ => unreachable!("opcode_name covered every defined opcode"),
    };
    if let Err((e, is_parse_error)) = result {
        if is_parse_error {
            inner.obs.parse_errors.inc();
        }
        fm.errors.inc();
        out.extend_from_slice(&frame::encode_err(&e));
    }
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    fm.latency.record_ns(ns);
    if trace_level() >= TraceLevel::Info {
        TraceRing::global().record(name, ns);
    }
    granted
}

/// Recover a lock even if a previous holder panicked — the server keeps
/// serving (state mutations happen through `&mut` methods that either
/// complete or panic before the swap, so a poisoned lock's data is the
/// last consistent state).
fn lock_unpoisoned<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn read_unpoisoned<'a, T>(l: &'a RwLock<T>) -> std::sync::RwLockReadGuard<'a, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn write_unpoisoned<'a, T>(l: &'a RwLock<T>) -> std::sync::RwLockWriteGuard<'a, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// Take the state read lock, feeding `snorkel_serve_lock_wait_seconds`.
/// The histogram records *waits*: an uncontended `try_read` acquisition
/// records nothing and never touches the clock, keeping the `MARGINAL`
/// hot path cheap; only a contended acquisition (which is already
/// blocking) pays for `Instant` and lands a sample.
fn read_state<'a>(inner: &'a Inner) -> std::sync::RwLockReadGuard<'a, ServeState> {
    match inner.state.try_read() {
        Ok(g) => g,
        Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
        Err(std::sync::TryLockError::WouldBlock) => {
            let start = Instant::now();
            let g = read_unpoisoned(&inner.state);
            inner.obs.lock_wait_read.record(start.elapsed());
            g
        }
    }
}

/// Take the state write lock, feeding the `lock="write"` wait histogram
/// (same try-first, contended-only shape as [`read_state`]).
fn write_state<'a>(inner: &'a Inner) -> std::sync::RwLockWriteGuard<'a, ServeState> {
    match inner.state.try_write() {
        Ok(g) => g,
        Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
        Err(std::sync::TryLockError::WouldBlock) => {
            let start = Instant::now();
            let g = write_unpoisoned(&inner.state);
            inner.obs.lock_wait_write.record(start.elapsed());
            g
        }
    }
}

/// Publish the point-in-time serve gauges (memo occupancy and how far
/// the distilled model lags the label model). Called from the `STATS`
/// and `METRICS` handlers rather than the `MARGINAL` hot path — gauges
/// describe state, so refreshing them at observation time is enough.
fn publish_serve_gauges(inner: &Inner, state: &ServeState) {
    let lag = state
        .session
        .disc()
        .map_or(0, |d| state.generation.saturating_sub(d.generation));
    inner.obs.disc_gen_lag.set(lag.min(i64::MAX as u64) as i64);
    let memo = lock_unpoisoned(&inner.memo);
    inner.obs.memo_size.set(memo.len() as i64);
    inner
        .obs
        .memo_generation
        .set(memo.generation().min(i64::MAX as u64) as i64);
    inner
        .obs
        .ingest_queue_depth
        .set(inner.ingest_gate.depth().min(i64::MAX as usize) as i64);
}

fn write_snapshot(inner: &Inner, path: &std::path::Path) -> Result<u64, SnapError> {
    let snapshot = {
        let state = read_state(inner);
        Snapshot {
            session: state.session.freeze(),
            train: state.session.config().train.clone(),
            repl: inner.repl.as_ref().map(|_| ReplMark {
                applied_lsn: state.applied_lsn,
                generation: state.generation,
            }),
        }
    };
    let bytes = snapshot.write_file(path)?;
    inner.snapshots_written.fetch_add(1, Ordering::Relaxed);
    Ok(bytes)
}

// ----------------------------------------------------------------------
// Replication: WAL recovery, op logging, the follower tail
// ----------------------------------------------------------------------

/// Recover the on-disk WAL at boot: truncate any torn tail, verify the
/// log agrees with the snapshot mark, replay every record past the mark
/// through the same entry points live traffic uses, and seed the
/// in-memory op log so subscribers can resume from anywhere the file
/// covers. Any contradiction between the log and the snapshot is a
/// startup error — never a silent partial replay.
fn recover_wal(
    session: &mut IncrementalSession,
    generation: &mut u64,
    applied_lsn: &mut u64,
    path: &std::path::Path,
    mark: ReplMark,
) -> std::io::Result<(WalFile, OpLog)> {
    let (wal_file, scan) = WalFile::open_or_create(path, mark.applied_lsn)
        .map_err(|e| std::io::Error::other(format!("WAL {}: {e}", path.display())))?;
    if scan.base_lsn > mark.applied_lsn {
        return Err(std::io::Error::other(format!(
            "WAL {} begins after lsn {} but the snapshot mark is {} — \
             the log and the snapshot are from different histories",
            path.display(),
            scan.base_lsn,
            mark.applied_lsn
        )));
    }
    if let Some(last) = scan.records.last() {
        if last.lsn < mark.applied_lsn {
            return Err(std::io::Error::other(format!(
                "WAL {} ends at lsn {} before the snapshot mark {} — \
                 the log and the snapshot are from different histories",
                path.display(),
                last.lsn,
                mark.applied_lsn
            )));
        }
    } else if scan.base_lsn != mark.applied_lsn {
        return Err(std::io::Error::other(format!(
            "empty WAL {} based at lsn {} does not match the snapshot mark {}",
            path.display(),
            scan.base_lsn,
            mark.applied_lsn
        )));
    }
    let oplog = OpLog::new(scan.base_lsn);
    for rec in &scan.records {
        // Re-encode rather than re-frame the file bytes: the scan
        // already checksum-validated every record, and `encode_body` is
        // canonical, so the in-memory log ships subscribers exactly
        // what a live append would have.
        let body = wal::encode_body(rec.lsn, rec.gen_after, &rec.op);
        if rec.lsn > mark.applied_lsn {
            let outcome = repl::apply_op(session, generation, &rec.op).map_err(|e| {
                std::io::Error::other(format!(
                    "WAL {} replay failed at lsn {}: {e}",
                    path.display(),
                    rec.lsn
                ))
            })?;
            if *generation != rec.gen_after {
                return Err(std::io::Error::other(format!(
                    "WAL {} replay diverged at lsn {}: reached generation {} \
                     but the record says {}",
                    path.display(),
                    rec.lsn,
                    generation,
                    rec.gen_after
                )));
            }
            // Recovery is synchronous — no readers yet — so a due disc
            // retrain runs inline instead of through the phased path.
            if let repl::Applied::Refresh {
                training: Some(set),
                ..
            } = outcome
            {
                let (disc_state, _) = set.train();
                session.install_disc(disc_state);
            }
            *applied_lsn = rec.lsn;
        }
        oplog.append(body.into());
    }
    Ok((wal_file, oplog))
}

/// True when this server currently refuses mutations (`ERR readonly`).
fn is_follower(inner: &Inner) -> bool {
    inner
        .repl
        .as_ref()
        .is_some_and(|r| r.role.load(Ordering::SeqCst) == ROLE_FOLLOWER)
}

/// Append one already-applied op to the log(s), under the same write
/// lock that applied it. No-op on a non-replicated server.
fn log_op(inner: &Inner, state: &mut ServeState, op: &wal::Op) {
    let Some(repl) = &inner.repl else { return };
    let lsn = state.applied_lsn + 1;
    let body = wal::encode_body(lsn, state.generation, op);
    commit_record(repl, state, lsn, body);
}

/// Durably record one encoded record body at `lsn`: WAL append (when
/// configured), in-memory op-log append, and the applied-LSN advance —
/// all inside the caller's write-lock critical section, so a reply is
/// never sent for a mutation the log does not carry.
fn commit_record(repl: &Repl, state: &mut ServeState, lsn: u64, body: Vec<u8>) {
    if let Some(wal) = &repl.wal {
        let mut wal = lock_unpoisoned(wal);
        match wal.append_body(lsn, &body) {
            Ok(bytes) => {
                let _ = wal.sync();
                repl.obs.wal_records.inc();
                repl.obs.wal_bytes.add(bytes);
            }
            Err(e) => {
                // Serving continues on the in-memory log; durability is
                // degraded until the next successful snapshot. The
                // counter makes the gap visible.
                repl.obs.wal_append_errors.inc();
                eprintln!("snorkel-serve: WAL append failed at lsn {lsn}: {e}");
            }
        }
    }
    repl.oplog.append(body.into());
    state.applied_lsn = lsn;
    repl.obs.applied_lsn.set(lsn.min(i64::MAX as u64) as i64);
}

/// Validate an `OP_LOG_SUBSCRIBE` resume point and return
/// `(next, tip, gen)` for the acknowledgment. Subscriptions are served
/// by any replicated server regardless of role, so replicas can chain
/// and an ex-follower keeps its subscribers after a `PROMOTE`.
fn subscribe_grant(inner: &Inner, from: u64) -> Result<(u64, u64, u64), String> {
    let Some(repl) = &inner.repl else {
        return Err("not replicated (no WAL or follow address configured)".into());
    };
    // Read lock: the tip cannot advance mid-grant, so `(tip, gen)` is a
    // consistent pair and no record between `from` and `tip` can be
    // missed before the connection's tail cursor is installed.
    let state = read_state(inner);
    let tip = repl.oplog.tip();
    let first = repl.oplog.first_lsn();
    if from < first {
        return Err(format!(
            "lsn {from} predates the log (first available {first}); \
             bootstrap from a newer snapshot"
        ));
    }
    if from > tip + 1 {
        return Err(format!("lsn {from} is beyond the log tip {tip}"));
    }
    repl.obs.subscribers.add(1);
    Ok((from, tip, state.generation))
}

/// Leader address poll cadences for the follower tail.
const TAIL_CONNECT_TIMEOUT: Duration = Duration::from_secs(2);
/// Read timeout on the live tail — well above the leader's
/// [`HEARTBEAT_EVERY`], so a timeout means the leader is gone, not idle.
const TAIL_READ_TIMEOUT: Duration = Duration::from_secs(1);

/// Sleep in small slices, returning early on shutdown or promote.
fn sleep_interruptible(inner: &Inner, repl: &Repl, total: Duration) {
    let slice = Duration::from_millis(20);
    let mut remaining = total;
    while !remaining.is_zero() {
        if inner.shutdown.load(Ordering::SeqCst) || repl.tail_stop.load(Ordering::SeqCst) {
            return;
        }
        let nap = remaining.min(slice);
        std::thread::sleep(nap);
        remaining -= nap;
    }
}

/// The follower's tail thread: subscribe to the leader at the next
/// unapplied LSN, replay every pushed record, reconnect with backoff on
/// transient failures. A *rejected* subscription or a replay failure
/// halts the tail permanently — the follower keeps serving its last
/// consistent state (staleness is visible on `snorkel_repl_lag_records`
/// and in `STATS`), because serving stale beats replaying garbage.
fn follower_loop(inner: &Arc<Inner>) {
    let Some(repl) = &inner.repl else { return };
    let Some(addr) = repl.follow.clone() else {
        return;
    };
    let mut backoff = Backoff::new();
    'resubscribe: loop {
        if inner.shutdown.load(Ordering::SeqCst) || repl.tail_stop.load(Ordering::SeqCst) {
            return;
        }
        let resume = read_state(inner).applied_lsn + 1;
        let mut conn =
            match TailConn::connect(&addr, resume, TAIL_CONNECT_TIMEOUT, TAIL_READ_TIMEOUT) {
                Ok(conn) => conn,
                Err(ConnectError::Rejected(msg)) => {
                    repl.obs.replay_errors.inc();
                    eprintln!("snorkel-serve: follower tail halted: {msg}");
                    return;
                }
                Err(ConnectError::Io(_)) => {
                    sleep_interruptible(inner, repl, backoff.step());
                    continue 'resubscribe;
                }
            };
        repl.obs.reconnects.inc();
        backoff.reset();
        loop {
            if inner.shutdown.load(Ordering::SeqCst) || repl.tail_stop.load(Ordering::SeqCst) {
                return;
            }
            match conn.next_event() {
                Ok(TailEvent::Record(body)) => match apply_replicated(inner, repl, &body) {
                    Ok(true) => {}
                    Ok(false) => return,
                    Err(e) => {
                        repl.obs.replay_errors.inc();
                        eprintln!("snorkel-serve: follower tail halted: {e}");
                        return;
                    }
                },
                Ok(TailEvent::Heartbeat { tip, .. }) => {
                    repl.obs.heartbeats.inc();
                    let applied = read_state(inner).applied_lsn;
                    repl.obs
                        .lag_records
                        .set(tip.saturating_sub(applied).min(i64::MAX as u64) as i64);
                }
                // Timeout or disconnect: resubscribe from the last
                // applied LSN.
                Err(_) => continue 'resubscribe,
            }
        }
    }
}

/// Replay one record pushed over the live tail. `Ok(false)` means the
/// tail must stop (shutdown or promote won the race); `Err` is a
/// permanent halt (corrupt record, LSN gap, divergence).
fn apply_replicated(inner: &Inner, repl: &Repl, body: &[u8]) -> Result<bool, String> {
    let rec = wal::Record::decode_body(body).map_err(|e| format!("bad pushed record: {e}"))?;
    // Tokenize outside the lock, exactly like the leader's ingest path.
    let prepared = match &rec.op {
        wal::Op::Ingest(rows) => Some(repl::prepare_ingest(rows)?),
        _ => None,
    };
    let mut state = write_state(inner);
    if inner.shutdown.load(Ordering::SeqCst) || repl.tail_stop.load(Ordering::SeqCst) {
        return Ok(false);
    }
    if rec.lsn <= state.applied_lsn {
        // Duplicate after a reconnect race — already applied.
        return Ok(true);
    }
    if rec.lsn != state.applied_lsn + 1 {
        return Err(format!(
            "lsn gap: leader pushed {} but {} is next",
            rec.lsn,
            state.applied_lsn + 1
        ));
    }
    let st = &mut *state;
    let training = match &rec.op {
        wal::Op::Refresh(edit) => {
            let (_, training) =
                repl::apply_refresh(&mut st.session, &mut st.generation, edit.as_ref())?;
            inner.refreshes.fetch_add(1, Ordering::Relaxed);
            training
        }
        wal::Op::Ingest(_) => {
            let batch = prepared.expect("prepared above for Op::Ingest");
            repl::apply_ingest(&mut st.session, &mut st.generation, batch);
            None
        }
        wal::Op::Seal => None,
    };
    if st.generation != rec.gen_after {
        return Err(format!(
            "divergence at lsn {}: reached generation {} but the leader logged {}",
            rec.lsn, st.generation, rec.gen_after
        ));
    }
    commit_record(repl, st, rec.lsn, body.to_vec());
    repl.obs.ops_replayed.inc();
    drop(state);
    // Disc retrain outside the lock, then a short write lock to
    // install — the same phasing as the leader's REFRESH.
    if let Some(set) = training {
        let (disc_state, _) = set.train();
        let mut state = write_state(inner);
        state.session.install_disc(disc_state);
    }
    Ok(true)
}

/// `PROMOTE`: stop tailing, seal the log, and start accepting writes.
fn handle_promote(inner: &Inner) -> String {
    let Some(repl) = &inner.repl else {
        return "ERR not replicated (no WAL or follow address configured)".into();
    };
    if repl.role.load(Ordering::SeqCst) == ROLE_LEADER {
        return "ERR already leader".into();
    }
    // Order matters: set the stop flag, then take the write lock. Any
    // in-flight replay either committed before we got the lock (its LSN
    // precedes the seal) or sees the flag under the lock and aborts.
    repl.tail_stop.store(true, Ordering::SeqCst);
    let mut state = write_state(inner);
    repl.role.store(ROLE_LEADER, Ordering::SeqCst);
    let st = &mut *state;
    log_op(inner, st, &wal::Op::Seal);
    format!("OK role=leader lsn={}", st.applied_lsn)
}

/// Close out one request's timing: latency histogram plus a trace-ring
/// entry for `SLOWLOG` (unless tracing is off via `SNORKEL_OBS_TRACE`).
#[inline]
fn record_request(vm: &VerbMetrics, verb: &'static str, start: Instant) {
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    vm.latency.record_ns(ns);
    if trace_level() >= TraceLevel::Info {
        TraceRing::global().record(verb, ns);
    }
}

fn handle_request(inner: &Inner, req: Request, scratch: &mut ReadScratch) -> String {
    match req {
        Request::Ping => "OK pong".into(),
        Request::Marginal { cols, votes } => handle_marginal(inner, cols, votes, scratch),
        Request::Apply { span1, span2, text } => handle_apply(inner, span1, span2, &text),
        Request::Predict { features } => handle_predict(inner, &features),
        Request::PredictText { span1, span2, text } => {
            handle_predict_text(inner, span1, span2, &text)
        }
        Request::Ingest { rows } => match handle_ingest_core(inner, &rows) {
            Ok(s) => format!(
                "OK gen={} rows={} total={} online={} drift={} refit={}",
                s.gen,
                s.rows,
                s.total,
                u8::from(s.online),
                s.drift_score,
                u8::from(s.auto_refit)
            ),
            Err(e) => format!("ERR {e}"),
        },
        Request::Refresh(edit) => handle_refresh(inner, edit),
        Request::Snapshot { path } => {
            let target = path
                .map(PathBuf::from)
                .or_else(|| inner.snapshot_path.clone());
            let Some(target) = target else {
                return "ERR no snapshot path configured".into();
            };
            match write_snapshot(inner, &target) {
                Ok(bytes) => format!("OK bytes={bytes} path={}", target.display()),
                Err(e) => format!("ERR snapshot failed: {e}"),
            }
        }
        Request::Stats => {
            let state = read_state(inner);
            publish_serve_gauges(inner, &state);
            let cache = state.session.cache_stats();
            let (memo_size, memo_gen) = {
                let memo = lock_unpoisoned(&inner.memo);
                (memo.len(), memo.generation())
            };
            let disc = match state.session.disc() {
                None => "-".to_string(),
                Some(d) => format!(
                    "{}{}",
                    d.generation,
                    if state.session.disc_is_stale() {
                        "(stale)"
                    } else {
                        ""
                    }
                ),
            };
            let drift_score = state
                .session
                .stream()
                .map_or_else(|| "-".to_string(), |s| s.drift_score().to_string());
            let role = if is_follower(inner) {
                "follower"
            } else {
                "leader"
            };
            format!(
                "OK gen={} rows={} lfs={} backend={} disc_gen={disc} conns={} queries={} \
                 memo_hits={} refreshes={} snapshots={} cache_hits={} cache_misses={} \
                 cache_extensions={} cache_cols={} cache_cap={} memo_size={memo_size} \
                 memo_gen={memo_gen} scratch_bytes={} ingest_queue={}/{} \
                 drift_score={drift_score} role={role} lsn={} lf_names={}",
                state.generation,
                state.session.num_candidates(),
                state.session.num_lfs(),
                state.session.backend_name().unwrap_or("-"),
                inner.open_conns.load(Ordering::Relaxed),
                inner.queries.load(Ordering::Relaxed),
                inner.memo_hits.load(Ordering::Relaxed),
                inner.refreshes.load(Ordering::Relaxed),
                inner.snapshots_written.load(Ordering::Relaxed),
                cache.hits,
                cache.misses,
                cache.extensions,
                state.session.cache_len(),
                state.session.cache_capacity(),
                inner.scratch_high.load(Ordering::Relaxed),
                inner.ingest_gate.depth(),
                inner.ingest_gate.capacity(),
                state.applied_lsn,
                state.session.lf_names().join(","),
            )
        }
        Request::Metrics => handle_metrics(inner),
        Request::Slowlog { n } => handle_slowlog(n),
        Request::Promote => handle_promote(inner),
        Request::Shutdown => unreachable!("handled in the connection loop"),
    }
}

/// `METRICS`: refresh the point-in-time serve gauges, then expose the
/// whole process-global registry as Prometheus text. The reply is the
/// only multi-line response besides `SLOWLOG`: a header announcing the
/// series and line counts, then the exposition verbatim.
fn handle_metrics(inner: &Inner) -> String {
    {
        let state = read_state(inner);
        publish_serve_gauges(inner, &state);
    }
    let registry = snorkel_obs::global();
    let text = registry.expose();
    let series = registry.num_series();
    let mut out = format!("OK series={series} lines={}", text.lines().count());
    for l in text.lines() {
        out.push('\n');
        out.push_str(l);
    }
    out
}

/// `SLOWLOG <n>`: the `n` slowest spans still buffered in the global
/// trace ring, slowest first. One payload line per entry.
fn handle_slowlog(n: usize) -> String {
    let entries = TraceRing::global().slowest(n);
    let mut out = format!("OK count={} lines={}", entries.len(), entries.len());
    for e in &entries {
        out.push_str(&format!(
            "\nspan={} dur_ns={} seq={}",
            e.name, e.dur_ns, e.seq
        ));
    }
    out
}

/// Validate a vote row against the scheme and compute its posterior
/// under the current model (majority vote when no model is trained —
/// mirroring the session's MV labeling path).
fn posterior_for(
    session: &IncrementalSession,
    cols: &[u32],
    votes: &[Vote],
) -> Result<Vec<f64>, String> {
    let cardinality = session.config().executor.cardinality;
    let scheme = LabelScheme::from_cardinality(cardinality);
    if let Some(&v) = votes
        .iter()
        .find(|&&v| !snorkel_matrix::is_legal_vote(cardinality, v))
    {
        return Err(format!("vote {v} illegal for cardinality {cardinality}"));
    }
    match session.model() {
        Some(model) => {
            if let Some(&c) = cols.iter().find(|&&c| (c as usize) >= model.num_lfs()) {
                return Err(format!(
                    "column {c} out of range (model covers {} LFs)",
                    model.num_lfs()
                ));
            }
            Ok(model.posterior(cols, votes))
        }
        None => Ok(majority_probs(scheme, votes)),
    }
}

/// Plurality-class probabilities for one vote row (uniform on ties and
/// all-abstain) — the no-model fallback, mirroring the session's
/// majority-vote labeling path.
fn majority_probs(scheme: LabelScheme, votes: &[Vote]) -> Vec<f64> {
    let k = scheme.num_classes();
    let mut tally = vec![0usize; k];
    for &v in votes {
        if let Some(c) = scheme.class_of_vote(v) {
            tally[c] += 1;
        }
    }
    let best = tally.iter().copied().max().unwrap_or(0);
    let winners: Vec<usize> = (0..k).filter(|&c| tally[c] == best).collect();
    let mut p = vec![0.0; k];
    if best == 0 || winners.len() > 1 {
        p.iter_mut().for_each(|x| *x = 1.0 / k as f64);
    } else {
        p[winners[0]] = 1.0;
    }
    p
}

/// Text `MARGINAL`: a batch of one through the same
/// [`hotpath::compute_marginal`] core (and the same signature memo) as
/// the binary plane, so the two planes answer bit-identically and warm
/// each other's memo.
fn handle_marginal(
    inner: &Inner,
    cols: Vec<u32>,
    votes: Vec<Vote>,
    scratch: &mut ReadScratch,
) -> String {
    inner.queries.fetch_add(1, Ordering::Relaxed);
    scratch.set_vote_row(&cols, &votes);
    let state = read_state(inner);
    match hotpath::compute_marginal(&state.session, state.generation, &inner.memo, scratch) {
        Ok(outcome) => {
            inner
                .memo_hits
                .fetch_add(outcome.memo_hits, Ordering::Relaxed);
            format!(
                "OK gen={} p={}",
                state.generation,
                format_probs(&scratch.probs()[..outcome.width])
            )
        }
        Err(e) => format!("ERR {e}"),
    }
}

/// Distilled-model posteriors for a batch of raw feature vectors under
/// one state read-lock acquisition (the batched core of the text
/// `PREDICT` and binary `OP_PREDICT` paths).
fn predict_batch(inner: &Inner, rows: &[Vec<String>]) -> Result<(u64, u64, Vec<Vec<f64>>), String> {
    inner
        .queries
        .fetch_add(rows.len() as u64, Ordering::Relaxed);
    let state = read_state(inner);
    let Some(disc) = state.session.disc() else {
        return Err("no distilled model (enable distillation and REFRESH)".into());
    };
    let probs = rows
        .iter()
        .map(|features| {
            let x =
                snorkel_disc::hash_features(features.iter().map(String::as_str), disc.model.dim());
            disc.model.predict_proba(&x)
        })
        .collect();
    Ok((state.generation, disc.generation, probs))
}

/// Build a transient two-span candidate in a scratch corpus (serving a
/// labeling query must not grow server state) — the server-side half of
/// the `APPLY`/`PREDICT_TEXT` shared grammar.
fn transient_candidate(
    span1: (usize, usize),
    span2: (usize, usize),
    text: &str,
) -> Result<(Corpus, snorkel_context::CandidateId), String> {
    let tokens = snorkel_nlp::tokenize(text);
    for (lo, hi) in [span1, span2] {
        if lo >= hi || hi > tokens.len() {
            return Err(format!(
                "span {lo}..{hi} invalid for {} tokens",
                tokens.len()
            ));
        }
    }
    let mut scratch = Corpus::new();
    let doc = scratch.add_document("probe");
    let sent = scratch.add_sentence(doc, text, tokens);
    let a = scratch.add_span(sent, span1.0, span1.1, None);
    let b = scratch.add_span(sent, span2.0, span2.1, None);
    let cand = scratch.add_candidate(vec![a, b]);
    Ok((scratch, cand))
}

fn handle_apply(inner: &Inner, span1: (usize, usize), span2: (usize, usize), text: &str) -> String {
    inner.queries.fetch_add(1, Ordering::Relaxed);
    let (scratch, cand) = match transient_candidate(span1, span2, text) {
        Ok(built) => built,
        Err(e) => return format!("ERR {e}"),
    };

    let state = read_state(inner);
    let votes = state.session.apply_lfs(&scratch.candidate(cand));
    let non_abstain: (Vec<u32>, Vec<Vote>) = votes
        .iter()
        .enumerate()
        .filter(|(_, &v)| v != 0)
        .map(|(j, &v)| (j as u32, v))
        .unzip();
    // The live suite can differ from the last-trained model's layout
    // for any un-refreshed add/edit/remove; the model may only score
    // votes whose column indexes refer to exactly the layout it was
    // fitted on (an equal LF *count* is not enough — a remove+add of
    // the same arity would silently misalign columns).
    let model_ok = state.session.model().is_some() && state.session.suite_matches_last_refresh();
    let p = if model_ok {
        posterior_for(&state.session, &non_abstain.0, &non_abstain.1)
    } else {
        let scheme = LabelScheme::from_cardinality(state.session.config().executor.cardinality);
        Ok(majority_probs(scheme, &non_abstain.1))
    };
    match p {
        Ok(p) => {
            let vote_strs: Vec<String> = votes.iter().map(|v| v.to_string()).collect();
            format!(
                "OK gen={} votes={} p={}",
                state.generation,
                vote_strs.join(","),
                format_probs(&p)
            )
        }
        Err(e) => format!("ERR {e}"),
    }
}

/// Distilled-model posterior for raw (pre-hashed-name) features —
/// answers for candidates with zero LF coverage. Runs entirely under
/// the read lock; the reply's `disc_gen=` says which refresh generation
/// the serving model was trained on (it can lag `gen=` while a retrain
/// runs — reads never wait for one).
fn handle_predict(inner: &Inner, features: &[String]) -> String {
    let row = features.to_vec();
    match predict_batch(inner, std::slice::from_ref(&row)) {
        Ok((gen, disc_gen, probs)) => {
            format!(
                "OK gen={gen} disc_gen={disc_gen} p={}",
                format_probs(&probs[0])
            )
        }
        Err(e) => format!("ERR {e}"),
    }
}

/// Featurize a transient two-span candidate (same grammar as `APPLY`)
/// and answer from the distilled model.
fn handle_predict_text(
    inner: &Inner,
    span1: (usize, usize),
    span2: (usize, usize),
    text: &str,
) -> String {
    inner.queries.fetch_add(1, Ordering::Relaxed);
    let (scratch, cand) = match transient_candidate(span1, span2, text) {
        Ok(built) => built,
        Err(e) => return format!("ERR {e}"),
    };

    let state = read_state(inner);
    let Some(disc) = state.session.disc() else {
        return "ERR no distilled model (enable distillation and REFRESH)".into();
    };
    let x = disc.config.featurizer.featurize(&scratch.candidate(cand));
    format!(
        "OK gen={} disc_gen={} p={}",
        state.generation,
        disc.generation,
        format_probs(&disc.model.predict_proba(&x))
    )
}

/// The summary both planes' `INGEST` replies are built from.
struct IngestSummary {
    gen: u64,
    rows: u64,
    total: u64,
    online: bool,
    drift_score: f64,
    auto_refit: bool,
}

/// Execute one ingest batch — the shared core of the text `INGEST`
/// verb and the binary `OP_INGEST` frame.
///
/// Admission first: the bounded [`IngestGate`] is tried before any
/// work; a full gate refuses with `backpressure` (never queues) and
/// the permit is held for the whole execution so the gate depth counts
/// in-flight ingests honestly. Tokenization and span validation run
/// outside the lock; the write lock covers only the corpus append and
/// the session's [`ingest_batch`](IncrementalSession::ingest_batch)
/// (cache-extend, Λ row splice, online moment solve). A batch is
/// atomic: nothing is ingested unless every row validates.
fn handle_ingest_core(inner: &Inner, rows: &[frame::IngestRow]) -> Result<IngestSummary, String> {
    if is_follower(inner) {
        return Err("readonly (follower serves reads; PROMOTE to accept writes)".into());
    }
    let Some(_permit) = inner.ingest_gate.try_enter() else {
        inner.obs.backpressure.inc();
        return Err(format!(
            "backpressure: ingest queue full ({} in flight, capacity {})",
            inner.ingest_gate.depth(),
            inner.ingest_gate.capacity()
        ));
    };
    inner
        .obs
        .ingest_queue_depth
        .set(inner.ingest_gate.depth().min(i64::MAX as usize) as i64);
    // Tokenize and validate every row before taking the lock (the write
    // lock pays only for the splice, and an invalid row rejects the
    // batch before anything grows), through the shared replication
    // entry points — the same code path a follower replays through.
    let prepared = repl::prepare_ingest(rows)?;
    let row_count = prepared.len() as u64;
    let mut state = write_state(inner);
    let st = &mut *state;
    let report = repl::apply_ingest(&mut st.session, &mut st.generation, prepared);
    if inner.repl.is_some() {
        log_op(inner, st, &wal::Op::Ingest(rows.to_vec()));
    }
    Ok(IngestSummary {
        gen: st.generation,
        rows: row_count,
        total: st.session.num_candidates() as u64,
        online: report.online_fit,
        drift_score: report.drift_score,
        auto_refit: report.auto_refit,
    })
}

fn handle_refresh(inner: &Inner, edit: Option<SuiteEdit>) -> String {
    if is_follower(inner) {
        return "ERR readonly (follower serves reads; PROMOTE to accept writes)".into();
    }
    // Phase 1 (write lock): suite edit + label-model refresh through
    // the shared replication entry point (the same code path a follower
    // replays through), then the op-log append — the record carries the
    // post-refresh generation. The distillation training set is cloned
    // out before the lock drops so the expensive disc retrain below
    // runs lock-free.
    let (response, training_set) = {
        let mut state = write_state(inner);
        let st = &mut *state;
        let (report, training_set) =
            match repl::apply_refresh(&mut st.session, &mut st.generation, edit.as_ref()) {
                Ok(done) => done,
                Err(e) => return format!("ERR {e}"),
            };
        inner.refreshes.fetch_add(1, Ordering::Relaxed);
        log_op(inner, st, &wal::Op::Refresh(edit));
        let strategy = match &report.strategy {
            snorkel_core::optimizer::ModelingStrategy::MajorityVote => "mv",
            snorkel_core::optimizer::ModelingStrategy::MomentMatching => "moment",
            snorkel_core::optimizer::ModelingStrategy::GenerativeModel { .. } => "gm",
        };
        let response = format!(
            "OK gen={} strategy={strategy} backend={} rows={} lfs={} lf_invocations={} \
             columns_recomputed={} columns_reused={} columns_extended={} \
             warm_started={} unique_patterns={} disc={}",
            st.generation,
            report.backend,
            st.session.num_candidates(),
            st.session.num_lfs(),
            report.lf_invocations,
            report.columns_recomputed,
            report.columns_reused,
            report.columns_extended,
            report.warm_started,
            report
                .unique_patterns
                .map_or_else(|| "-".into(), |p| p.to_string()),
            if training_set.is_some() {
                "retraining"
            } else {
                "-"
            },
        );
        (response, training_set)
    };
    // Phase 2 (no lock): distill. Concurrent MARGINAL/PREDICT reads are
    // served meanwhile — from the previous disc model, whose `disc_gen=`
    // makes the staleness visible. Phase 3 (short write lock): install.
    if let Some(set) = training_set {
        let (disc_state, _) = set.train();
        let mut state = write_state(inner);
        state.session.install_disc(disc_state);
    }
    response
}

/// Minimal blocking client for tests, examples, and the CI smoke
/// script: one request line out, one response line back.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Send one request line, read one response line (without the
    /// trailing newline).
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// Send one request line and read a multi-line reply (`METRICS`,
    /// `SLOWLOG`): the header's `lines=<k>` field says how many payload
    /// lines follow. Returns `(header, payload_lines)`; a reply without
    /// a `lines=` field (e.g. an `ERR`) comes back with no payload.
    pub fn request_lines(&mut self, line: &str) -> std::io::Result<(String, Vec<String>)> {
        let header = self.request(line)?;
        let count = header
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("lines="))
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        let mut lines = Vec::with_capacity(count);
        for _ in 0..count {
            let mut payload = String::new();
            if self.reader.read_line(&mut payload)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-reply",
                ));
            }
            lines.push(payload.trim_end().to_string());
        }
        Ok((header, lines))
    }
}
