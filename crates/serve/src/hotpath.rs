//! The allocation-free read path for the batched binary verbs.
//!
//! At deployment scale the server answers the same small family of
//! `OP_MARGINAL` / `OP_PREDICT` requests millions of times, and the
//! per-request heap churn of the straightforward implementation — a
//! `Vec` per decoded vote row, a `String` per feature name, a fresh
//! posterior `Vec` per reply row, a `HashMap` key clone per memo probe
//! — costs more than the posterior arithmetic it wraps. This module is
//! the reset-and-reuse rewrite:
//!
//! * [`ReadScratch`] — one per worker thread: every buffer a request
//!   decode or posterior batch needs, grown to the traffic's high-water
//!   mark and reset (not freed) per request.
//! * [`SigMemo`] — the per-generation posterior memo in
//!   structure-of-arrays form: flat signature/posterior arenas plus an
//!   open-addressing probe table, so a steady-state lookup borrows
//!   `&[f64]` straight out of the arena with zero allocations and zero
//!   hashing-related clones.
//! * [`decode_marginal`] / [`decode_predict`] — zero-copy decoders
//!   that validate exactly what [`crate::frame::decode_request`]
//!   validates (same error strings, property-tested) but write into
//!   the scratch arenas instead of fresh `Vec`s.
//! * [`compute_marginal`] / [`compute_predict`] — the batch cores both
//!   wire planes route through. Replies are bit-identical to the
//!   allocating path: every `*_into` kernel they call replicates its
//!   allocating counterpart's float-op sequence exactly.
//!
//! The zero-allocation claim is enforced, not aspirational:
//! `tests/no_alloc_read_path.rs` runs the steady-state batch path
//! under a counting global allocator and asserts **0 allocations per
//! request** (in release mode; debug builds only report). The
//! normative per-verb budgets live in `docs/PERFORMANCE.md`.

use std::sync::Mutex;

use snorkel_arena::ScratchVec;
use snorkel_core::label_model::{LabelModel, MajorityVoteModel};
use snorkel_core::model::LabelScheme;
use snorkel_incr::IncrementalSession;
use snorkel_lf::Vote;
use snorkel_linalg::SparseVec;

use crate::frame;
use crate::wire::Reader;

/// Cap on memoized signatures — deployment traffic has few distinct
/// patterns; a cap this size only matters under adversarial query
/// diversity, where we fall back to recomputing.
pub const MEMO_CAP: usize = 65_536;

/// Slots the probe table starts with (power of two; grows by doubling).
const INITIAL_TABLE: usize = 1024;

/// Memoized posteriors per vote signature, valid for one generation —
/// the structure-of-arrays replacement for the `HashMap` memo.
///
/// Keys (vote signatures) and values (posterior rows) live in flat
/// arenas addressed by per-entry bounds, exactly the layout the
/// training-side `PatternIndex` uses for the same data. An
/// open-addressing table of entry indices (linear probing, power-of-two
/// capacity) makes lookup a hash + slice compare: no key clone to
/// probe, no `Vec` clone to return — a hit borrows the arena.
///
/// A generation bump ([`Self::begin_generation`]) resets the arenas
/// and zeroes the table without freeing either, so the memo re-warms
/// after a `REFRESH` without re-allocating.
pub struct SigMemo {
    generation: u64,
    /// Flat signature arena: entry `e`'s columns and votes are the
    /// `key_bounds[e]` range of these two parallel arrays.
    key_cols: Vec<u32>,
    key_votes: Vec<Vote>,
    key_bounds: Vec<(u32, u32)>,
    /// Flat posterior arena, addressed by `val_bounds`.
    vals: Vec<f64>,
    val_bounds: Vec<(u32, u32)>,
    /// Probe table: entry index + 1, `0` = empty.
    table: Vec<u32>,
}

impl Default for SigMemo {
    fn default() -> Self {
        SigMemo::new()
    }
}

impl SigMemo {
    /// An empty memo at generation 0 (no allocation until first use).
    pub fn new() -> SigMemo {
        SigMemo {
            generation: 0,
            key_cols: Vec::new(),
            key_votes: Vec::new(),
            key_bounds: Vec::new(),
            vals: Vec::new(),
            val_bounds: Vec::new(),
            table: Vec::new(),
        }
    }

    /// The generation the memoized posteriors belong to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of memoized signatures.
    pub fn len(&self) -> usize {
        self.key_bounds.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.key_bounds.is_empty()
    }

    /// High-water heap footprint in bytes (capacities, which never
    /// shrink across generations).
    pub fn bytes(&self) -> usize {
        self.key_cols.capacity() * std::mem::size_of::<u32>()
            + self.key_votes.capacity() * std::mem::size_of::<Vote>()
            + self.key_bounds.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.vals.capacity() * std::mem::size_of::<f64>()
            + self.val_bounds.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.table.capacity() * std::mem::size_of::<u32>()
    }

    /// Invalidate everything and adopt `gen`: arenas reset, table
    /// zeroed, all capacity retained.
    pub fn begin_generation(&mut self, gen: u64) {
        self.generation = gen;
        self.key_cols.clear();
        self.key_votes.clear();
        self.key_bounds.clear();
        self.vals.clear();
        self.val_bounds.clear();
        self.table.iter_mut().for_each(|slot| *slot = 0);
    }

    /// FNV-1a over the signature bytes, with the length folded in so a
    /// prefix signature does not collide with its extension trivially.
    fn hash(cols: &[u32], votes: &[Vote]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for (&c, &v) in cols.iter().zip(votes) {
            for b in c.to_le_bytes() {
                mix(b);
            }
            mix(v as u8);
        }
        h ^ cols.len() as u64
    }

    fn key_at(&self, e: usize) -> (&[u32], &[Vote]) {
        let (off, len) = self.key_bounds[e];
        let (off, len) = (off as usize, len as usize);
        (
            &self.key_cols[off..off + len],
            &self.key_votes[off..off + len],
        )
    }

    /// The memoized posterior for a signature, if present. Borrows the
    /// value arena — nothing is cloned or allocated on a hit or a miss.
    pub fn lookup(&self, cols: &[u32], votes: &[Vote]) -> Option<&[f64]> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut i = (Self::hash(cols, votes) as usize) & mask;
        loop {
            let slot = self.table[i];
            if slot == 0 {
                return None;
            }
            let e = (slot - 1) as usize;
            let (kc, kv) = self.key_at(e);
            if kc == cols && kv == votes {
                let (off, len) = self.val_bounds[e];
                return Some(&self.vals[off as usize..(off + len) as usize]);
            }
            i = (i + 1) & mask;
        }
    }

    /// Memoize one signature's posterior. A no-op at [`MEMO_CAP`] or if
    /// the signature is already present (the values would be identical:
    /// same generation, same model). Growth (arena append, table
    /// doubling) allocates — that happens only while the signature set
    /// is still being discovered, never in the steady state of repeated
    /// lookups.
    pub fn insert(&mut self, cols: &[u32], votes: &[Vote], probs: &[f64]) {
        if self.len() >= MEMO_CAP || self.lookup(cols, votes).is_some() {
            return;
        }
        self.grow_table_if_loaded();
        let e = self.key_bounds.len();
        self.key_bounds
            .push((self.key_cols.len() as u32, cols.len() as u32));
        self.key_cols.extend_from_slice(cols);
        self.key_votes.extend_from_slice(votes);
        self.val_bounds
            .push((self.vals.len() as u32, probs.len() as u32));
        self.vals.extend_from_slice(probs);
        let mask = self.table.len() - 1;
        let mut i = (Self::hash(cols, votes) as usize) & mask;
        while self.table[i] != 0 {
            i = (i + 1) & mask;
        }
        self.table[i] = (e + 1) as u32;
    }

    /// Keep the probe table under ~70% load (doubling + rehash).
    fn grow_table_if_loaded(&mut self) {
        if self.table.is_empty() {
            self.table = vec![0; INITIAL_TABLE];
            return;
        }
        if (self.len() + 1) * 10 < self.table.len() * 7 {
            return;
        }
        let new_len = self.table.len() * 2;
        let mut table = vec![0u32; new_len];
        let mask = new_len - 1;
        for e in 0..self.key_bounds.len() {
            let (kc, kv) = self.key_at(e);
            let mut i = (Self::hash(kc, kv) as usize) & mask;
            while table[i] != 0 {
                i = (i + 1) & mask;
            }
            table[i] = (e + 1) as u32;
        }
        self.table = table;
    }
}

/// One worker thread's scratch arenas: everything the read path needs
/// to decode a request, compute a posterior batch, and encode the
/// reply without touching the allocator once warm. Reset per request;
/// capacity is the high-water mark of the traffic this worker has
/// seen ([`Self::bytes`] feeds the `snorkel_serve_scratch_bytes`
/// gauge).
#[derive(Default)]
pub struct ReadScratch {
    /// Decoded `OP_MARGINAL` batch, structure-of-arrays: flat columns
    /// and votes plus per-row `(offset, len)` bounds.
    cols: ScratchVec<u32>,
    votes: ScratchVec<Vote>,
    rows: ScratchVec<(u32, u32)>,
    /// Decoded `OP_PREDICT` batch: per-feature `(offset, len)` byte
    /// ranges into the request payload (zero-copy — the names stay in
    /// the connection's input buffer) plus per-row ranges into it.
    feats: ScratchVec<(u32, u32)>,
    feat_rows: ScratchVec<(u32, u32)>,
    /// Computed posterior rows, flat: row `i` at `i*width..(i+1)*width`.
    probs: ScratchVec<f64>,
    /// Row indices that missed the memo (marginal pass bookkeeping).
    pending: ScratchVec<u32>,
    /// Feature-hash staging and the reusable hashed feature vector.
    pairs: ScratchVec<(u32, f64)>,
    x: SparseVec,
}

impl ReadScratch {
    /// Empty scratch (no allocation until first use).
    pub fn new() -> ReadScratch {
        ReadScratch::default()
    }

    /// High-water heap footprint across all buffers, in bytes.
    pub fn bytes(&self) -> usize {
        self.cols.bytes()
            + self.votes.bytes()
            + self.rows.bytes()
            + self.feats.bytes()
            + self.feat_rows.bytes()
            + self.probs.bytes()
            + self.pending.bytes()
            + self.pairs.bytes()
            + self.x.capacity_bytes()
    }

    /// Load one in-memory vote row as if a one-row binary batch had
    /// been decoded — how the text `MARGINAL` handler routes through
    /// the same [`compute_marginal`] core (and the same memo) as the
    /// binary plane.
    pub fn set_vote_row(&mut self, cols: &[u32], votes: &[Vote]) {
        self.cols.reset();
        self.votes.reset();
        self.rows.reset();
        self.cols.extend_from_slice(cols);
        self.votes.extend_from_slice(votes);
        self.rows.push((0, cols.len() as u32));
    }

    /// The computed posterior rows, flat (row `i` of a width-`w` batch
    /// at `i*w..(i+1)*w`). Valid after a successful compute call.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }
}

/// What a marginal batch cost and produced (the posteriors themselves
/// are in [`ReadScratch::probs`]).
pub struct MarginalOutcome {
    /// Rows answered.
    pub rows: usize,
    /// Posterior row width (number of classes).
    pub width: usize,
    /// Rows served straight from the signature memo.
    pub memo_hits: u64,
}

/// What a predict batch produced.
pub struct PredictOutcome {
    /// Rows answered.
    pub rows: usize,
    /// Posterior row width (number of classes).
    pub width: usize,
    /// Refresh generation the serving distilled model was trained on.
    pub disc_gen: u64,
}

/// Decode an `OP_MARGINAL` payload into the scratch arenas, enforcing
/// exactly what [`frame::decode_request`] enforces (same error
/// strings): non-empty batch, non-empty rows, strictly increasing
/// columns, non-abstain votes, no trailing bytes. Returns the row
/// count.
pub fn decode_marginal(payload: &[u8], scratch: &mut ReadScratch) -> Result<usize, String> {
    let mut r = Reader::new(payload);
    scratch.cols.reset();
    scratch.votes.reset();
    scratch.rows.reset();
    // A row is at least 4 bytes (its count); an entry 5.
    let n = frame::batch_len(&mut r, 4, "vote rows")?;
    for _ in 0..n {
        let k = frame::u32_len(&mut r, 5, "vote-row length")?;
        if k == 0 {
            return Err("empty vote row".into());
        }
        let start = scratch.cols.len() as u32;
        for j in 0..k {
            let col = r.u32("vote column").map_err(frame::wire_err)?;
            let vote = r.i8("vote").map_err(frame::wire_err)?;
            if j > 0 && scratch.cols.last().is_some_and(|&prev| prev >= col) {
                return Err("columns must be strictly increasing".into());
            }
            if vote == 0 {
                return Err("votes in requests must be non-abstain".into());
            }
            scratch.cols.push(col);
            scratch.votes.push(vote);
        }
        scratch.rows.push((start, k as u32));
    }
    if !r.is_exhausted() {
        return Err(format!("{} trailing bytes in frame", r.remaining()));
    }
    Ok(n)
}

/// Decode an `OP_PREDICT` payload into the scratch arenas: feature
/// names are UTF-8-validated in place and recorded as byte ranges into
/// `payload` (no copies — [`compute_predict`] reads them back out of
/// the same payload slice). Same validation and error strings as
/// [`frame::decode_request`]. Returns the row count.
pub fn decode_predict(payload: &[u8], scratch: &mut ReadScratch) -> Result<usize, String> {
    let mut r = Reader::new(payload);
    scratch.feats.reset();
    scratch.feat_rows.reset();
    let n = frame::batch_len(&mut r, 4, "feature vectors")?;
    for _ in 0..n {
        let k = frame::u32_len(&mut r, 8, "feature-vector length")?;
        if k == 0 {
            return Err("PREDICT needs at least one feature".into());
        }
        let start = scratch.feats.len() as u32;
        for _ in 0..k {
            let name = r.str_bytes("feature name").map_err(frame::wire_err)?;
            let off = (r.position() - name.len()) as u32;
            scratch.feats.push((off, name.len() as u32));
        }
        scratch.feat_rows.push((start, k as u32));
    }
    if !r.is_exhausted() {
        return Err(format!("{} trailing bytes in frame", r.remaining()));
    }
    Ok(n)
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Row `i` of a decoded structure-of-arrays vote batch.
fn row_at<'a>(
    rows: &'a [(u32, u32)],
    cols: &'a [u32],
    votes: &'a [Vote],
    i: usize,
) -> (&'a [u32], &'a [Vote]) {
    let (off, len) = rows[i];
    let (off, len) = (off as usize, len as usize);
    (&cols[off..off + len], &votes[off..off + len])
}

/// Posteriors for the decoded vote rows, written flat into
/// `scratch.probs` — the batch core both wire planes route through,
/// under the caller's state read lock.
///
/// Memo protocol (unchanged from the `HashMap` era, so replies are
/// bit-identical to the allocating path): one lock pass harvests hits
/// — on a generation mismatch the memo resets and everything is a miss
/// — the misses are computed lock-free via the `posterior_into`
/// kernels (majority vote when no model is trained, mirroring the
/// session's MV labeling path), and a second lock pass publishes them.
/// The batch is atomic: the first invalid row fails the whole call,
/// and nothing is published.
///
/// The memo lock nests inside the state read lock; `REFRESH` holds the
/// state write lock, so a generation observed here stays current until
/// the caller's guard drops.
pub fn compute_marginal(
    session: &IncrementalSession,
    generation: u64,
    memo: &Mutex<SigMemo>,
    scratch: &mut ReadScratch,
) -> Result<MarginalOutcome, String> {
    let cardinality = session.config().executor.cardinality;
    let scheme = LabelScheme::from_cardinality(cardinality);
    let width = scheme.num_classes();
    let num_lfs = session.num_lfs();
    let model = session.model();
    let ReadScratch {
        cols,
        votes,
        rows,
        probs,
        pending,
        ..
    } = scratch;
    let n = rows.len();
    probs.reset();
    probs.resize(n * width, 0.0);
    pending.reset();
    let mut memo_hits = 0u64;
    // Memo pass 1: harvest hits for the whole batch under one lock.
    {
        let mut memo = lock_unpoisoned(memo);
        if memo.generation() != generation {
            memo.begin_generation(generation);
            pending.extend((0..n).map(|i| i as u32));
        } else {
            for i in 0..n {
                let (rc, rv) = row_at(rows, cols, votes, i);
                match memo.lookup(rc, rv) {
                    Some(p) => {
                        probs[i * width..(i + 1) * width].copy_from_slice(p);
                        memo_hits += 1;
                    }
                    None => pending.push(i as u32),
                }
            }
        }
    }
    // Compute the misses lock-free (the caller's state guard is held,
    // so the model cannot change under us). Validation mirrors the
    // text plane: illegal votes and out-of-range columns fail the
    // whole batch.
    for &i in pending.iter() {
        let (rc, rv) = row_at(rows, cols, votes, i as usize);
        if let Some(&v) = rv
            .iter()
            .find(|&&v| !snorkel_matrix::is_legal_vote(cardinality, v))
        {
            return Err(format!("vote {v} illegal for cardinality {cardinality}"));
        }
        let out_row = &mut probs[i as usize * width..(i as usize + 1) * width];
        match model {
            Some(model) => {
                if let Some(&c) = rc.iter().find(|&&c| (c as usize) >= model.num_lfs()) {
                    return Err(format!(
                        "column {c} out of range (model covers {} LFs)",
                        model.num_lfs()
                    ));
                }
                model.posterior_into(rc, rv, out_row);
            }
            None => MajorityVoteModel::new(num_lfs, scheme).posterior_into(rc, rv, out_row),
        }
    }
    // Memo pass 2: publish the new signatures under one lock.
    if !pending.is_empty() {
        let mut memo = lock_unpoisoned(memo);
        if memo.generation() == generation {
            for &i in pending.iter() {
                let (rc, rv) = row_at(rows, cols, votes, i as usize);
                let p = &probs[i as usize * width..(i as usize + 1) * width];
                memo.insert(rc, rv, p);
            }
        }
    }
    Ok(MarginalOutcome {
        rows: n,
        width,
        memo_hits,
    })
}

/// Distilled-model posteriors for the decoded feature rows, written
/// flat into `scratch.probs`, under the caller's state read lock.
/// Feature names are read back out of `payload` (the ranges
/// [`decode_predict`] recorded), hashed into the reusable sparse
/// vector, and scored through the `*_into` kernels — bit-identical to
/// the owned `hash_features` + `predict_proba` path.
pub fn compute_predict(
    session: &IncrementalSession,
    payload: &[u8],
    scratch: &mut ReadScratch,
) -> Result<PredictOutcome, String> {
    let Some(disc) = session.disc() else {
        return Err("no distilled model (enable distillation and REFRESH)".into());
    };
    let width = disc.model.num_classes();
    let dim = disc.model.dim();
    let ReadScratch {
        feats,
        feat_rows,
        probs,
        pairs,
        x,
        ..
    } = scratch;
    let n = feat_rows.len();
    probs.reset();
    probs.resize(n * width, 0.0);
    for (i, &(off, len)) in feat_rows.iter().enumerate() {
        let names =
            feats[off as usize..(off + len) as usize]
                .iter()
                .map(|&(start, bytes)| -> &str {
                    std::str::from_utf8(&payload[start as usize..(start + bytes) as usize])
                        .expect("decode_predict validated UTF-8")
                });
        snorkel_disc::hash_features_into(names, dim, pairs, x);
        disc.model
            .predict_proba_into(x, &mut probs[i * width..(i + 1) * width]);
    }
    Ok(PredictOutcome {
        rows: n,
        width,
        disc_gen: disc.generation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sig_memo_lookup_insert_and_generation_reset() {
        let mut memo = SigMemo::new();
        assert!(memo.lookup(&[0, 2], &[1, -1]).is_none());
        memo.insert(&[0, 2], &[1, -1], &[0.25, 0.75]);
        memo.insert(&[1], &[1], &[0.9, 0.1]);
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.lookup(&[0, 2], &[1, -1]), Some(&[0.25, 0.75][..]));
        assert_eq!(memo.lookup(&[1], &[1]), Some(&[0.9, 0.1][..]));
        // Same columns, different votes: distinct signature.
        assert!(memo.lookup(&[0, 2], &[1, 1]).is_none());
        // Re-inserting an existing signature is a no-op.
        memo.insert(&[1], &[1], &[0.0, 1.0]);
        assert_eq!(memo.lookup(&[1], &[1]), Some(&[0.9, 0.1][..]));

        let bytes = memo.bytes();
        memo.begin_generation(7);
        assert_eq!(memo.generation(), 7);
        assert!(memo.is_empty());
        assert!(memo.lookup(&[1], &[1]).is_none());
        assert_eq!(memo.bytes(), bytes, "reset keeps every allocation");
        memo.insert(&[1], &[1], &[0.5, 0.5]);
        assert_eq!(memo.lookup(&[1], &[1]), Some(&[0.5, 0.5][..]));
    }

    #[test]
    fn sig_memo_survives_table_growth() {
        let mut memo = SigMemo::new();
        // Enough distinct signatures to force at least one doubling
        // past the initial table.
        let count = (INITIAL_TABLE * 7) / 10 + 64;
        for i in 0..count as u32 {
            memo.insert(&[i, i + 1], &[1, -1], &[i as f64, 1.0]);
        }
        assert_eq!(memo.len(), count);
        for i in 0..count as u32 {
            assert_eq!(
                memo.lookup(&[i, i + 1], &[1, -1]),
                Some(&[i as f64, 1.0][..]),
                "signature {i} survives rehash"
            );
        }
    }

    #[test]
    fn sig_memo_stops_at_the_cap() {
        let mut memo = SigMemo::new();
        for i in 0..(MEMO_CAP + 10) as u32 {
            memo.insert(&[i], &[1], &[1.0, 0.0]);
        }
        assert_eq!(memo.len(), MEMO_CAP);
    }

    #[test]
    fn zero_copy_decoders_reject_what_decode_request_rejects() {
        let mut scratch = ReadScratch::new();
        // Mirror frame::tests::invalid_requests_are_rejected through
        // the scratch decoders: identical error strings.
        let body_of = |frame_bytes: &[u8]| -> Vec<u8> {
            frame_bytes[crate::frame::FRAME_HEADER_BYTES..].to_vec()
        };
        let body = body_of(&frame::encode_marginal(&[]));
        assert!(decode_marginal(&body, &mut scratch)
            .unwrap_err()
            .contains("empty batch"));
        let body = body_of(&frame::encode_marginal(&[(vec![3, 0], vec![1, 1])]));
        assert_eq!(
            decode_marginal(&body, &mut scratch).unwrap_err(),
            "columns must be strictly increasing"
        );
        let body = body_of(&frame::encode_marginal(&[(vec![0], vec![0])]));
        assert_eq!(
            decode_marginal(&body, &mut scratch).unwrap_err(),
            "votes in requests must be non-abstain"
        );
        // Strictly-increasing applies within a row, not across rows.
        let rows = vec![(vec![5, 9], vec![1, -1]), (vec![2], vec![1])];
        let body = body_of(&frame::encode_marginal(&rows));
        assert_eq!(decode_marginal(&body, &mut scratch), Ok(2));
        assert_eq!(scratch.cols.as_slice(), &[5, 9, 2]);
        assert_eq!(scratch.votes.as_slice(), &[1, -1, 1]);
        assert_eq!(scratch.rows.as_slice(), &[(0, 2), (2, 1)]);

        let body = body_of(&frame::encode_predict(&[vec![]]));
        assert_eq!(
            decode_predict(&body, &mut scratch).unwrap_err(),
            "PREDICT needs at least one feature"
        );
        let feats = vec![
            vec!["btw=cause".to_string(), "u=x".to_string()],
            vec!["héllo".to_string()],
        ];
        let body = body_of(&frame::encode_predict(&feats));
        assert_eq!(decode_predict(&body, &mut scratch), Ok(2));
        let name =
            |f: (u32, u32)| std::str::from_utf8(&body[f.0 as usize..(f.0 + f.1) as usize]).unwrap();
        assert_eq!(scratch.feat_rows.as_slice(), &[(0, 2), (2, 1)]);
        assert_eq!(name(scratch.feats[0]), "btw=cause");
        assert_eq!(name(scratch.feats[1]), "u=x");
        assert_eq!(name(scratch.feats[2]), "héllo");

        let mut trailing = body.clone();
        trailing.push(0xAA);
        assert_eq!(
            decode_predict(&trailing, &mut scratch).unwrap_err(),
            "1 trailing bytes in frame"
        );
    }
}
