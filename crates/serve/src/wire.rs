//! Little-endian byte encoding primitives for the snapshot format.
//!
//! Everything in a snapshot funnels through [`Writer`] and [`Reader`]:
//! fixed-width little-endian integers, floats as raw IEEE-754 bits (so
//! round trips are bit-exact, `NaN` payloads included), and
//! length-prefixed strings/sequences. Every read is bounds-checked and
//! returns [`SnapError::Truncated`](crate::snap::SnapError::Truncated)
//! instead of panicking — [`Reader`] is the first line of defense
//! against corrupted or truncated files. Length prefixes are validated
//! against the bytes actually remaining before any allocation, so a
//! corrupted count cannot balloon memory.

use crate::snap::SnapError;

/// Append-only byte buffer with typed little-endian putters.
#[derive(Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Floats are stored as raw bits: bit-exact round trips, no textual
    /// rounding, `NaN`s preserved.
    pub(crate) fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub(crate) fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked cursor over a byte slice.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once every byte has been consumed — decoders check this to
    /// reject trailing garbage inside a section.
    pub(crate) fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u8(&mut self, context: &'static str) -> Result<u8, SnapError> {
        Ok(self.take(1, context)?[0])
    }

    pub(crate) fn i8(&mut self, context: &'static str) -> Result<i8, SnapError> {
        Ok(self.take(1, context)?[0] as i8)
    }

    pub(crate) fn u32(&mut self, context: &'static str) -> Result<u32, SnapError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self, context: &'static str) -> Result<u64, SnapError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub(crate) fn usize(&mut self, context: &'static str) -> Result<usize, SnapError> {
        let v = self.u64(context)?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt {
            context: format!("{context}: value {v} exceeds this platform's usize"),
        })
    }

    pub(crate) fn f64(&mut self, context: &'static str) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Read a sequence length and validate it against the bytes actually
    /// left (`min_elem_bytes` per element) *before* the caller
    /// allocates: a corrupted count field fails here instead of
    /// triggering a huge `Vec::with_capacity`.
    pub(crate) fn len(
        &mut self,
        min_elem_bytes: usize,
        context: &'static str,
    ) -> Result<usize, SnapError> {
        let n = self.usize(context)?;
        if n.checked_mul(min_elem_bytes.max(1))
            .is_none_or(|bytes| bytes > self.remaining())
        {
            return Err(SnapError::Corrupt {
                context: format!("{context}: count {n} exceeds the bytes remaining"),
            });
        }
        Ok(n)
    }

    /// Length-prefixed raw bytes (same prefix validation as
    /// [`Self::str`], no UTF-8 requirement) — opaque payloads such as
    /// replication log record bodies travel through this.
    pub(crate) fn bytes(&mut self, context: &'static str) -> Result<&'a [u8], SnapError> {
        let n = self.len(1, context)?;
        self.take(n, context)
    }

    pub(crate) fn str(&mut self, context: &'static str) -> Result<String, SnapError> {
        let n = self.len(1, context)?;
        let bytes = self.take(n, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Corrupt {
            context: format!("{context}: invalid UTF-8"),
        })
    }

    /// Like [`Self::str`], but borrowing: validates UTF-8 in place and
    /// returns a slice of the underlying buffer, with the same error
    /// semantics. The serving hot path decodes feature names through
    /// this so a request costs zero per-name heap allocations.
    pub(crate) fn str_bytes(&mut self, context: &'static str) -> Result<&'a str, SnapError> {
        let n = self.len(1, context)?;
        let bytes = self.take(n, context)?;
        std::str::from_utf8(bytes).map_err(|_| SnapError::Corrupt {
            context: format!("{context}: invalid UTF-8"),
        })
    }

    /// Cursor offset from the start of the buffer. Zero-copy decoders
    /// use this to record byte ranges into the payload instead of
    /// copying the bytes out.
    pub(crate) fn position(&self) -> usize {
        self.pos
    }
}

/// FNV-1a, 64-bit — the snapshot checksum. Not cryptographic (snapshots
/// are trusted local files); it exists to catch torn writes, truncation,
/// and bit rot, which it does with probability `1 − 2^{-64}` per
/// section.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_primitives() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_i8(-3);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_f64(-0.0);
        w.put_f64(f64::from_bits(0x7FF8_0000_0000_1234)); // NaN payload
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.i8("b").unwrap(), -3);
        assert_eq!(r.u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("d").unwrap(), u64::MAX);
        assert_eq!(r.f64("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64("f").unwrap().to_bits(), 0x7FF8_0000_0000_1234);
        assert_eq!(r.str("g").unwrap(), "héllo");
        assert!(r.is_exhausted());
    }

    #[test]
    fn reads_past_the_end_are_truncation_errors() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(matches!(
            r.u32("x"),
            Err(SnapError::Truncated { context: "x" })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.len(8, "seq"), Err(SnapError::Corrupt { .. })));
    }
}
