//! The leader's in-memory op log — the buffer `OP_LOG_SUBSCRIBE`
//! streams tail from.
//!
//! Bodies are appended under the server's write lock (which serializes
//! mutations and so LSN assignment); readers only need the lock held
//! long enough to clone one `Arc`, so tail pumping never contends with
//! request handling for more than an index lookup.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An append-only, in-memory sequence of encoded record bodies,
/// addressed by LSN.
///
/// The log holds every record since `base_lsn` (the position of the
/// snapshot the process booted from). Followers whose resume point
/// predates `base_lsn` are refused and must bootstrap from a newer
/// snapshot — the refusal is typed, never a silent partial replay.
#[derive(Debug)]
pub struct OpLog {
    base_lsn: u64,
    tip: AtomicU64,
    records: Mutex<Vec<Arc<[u8]>>>,
}

impl OpLog {
    /// An empty log whose first record will carry `base_lsn + 1`.
    pub fn new(base_lsn: u64) -> OpLog {
        OpLog {
            base_lsn,
            tip: AtomicU64::new(base_lsn),
            records: Mutex::new(Vec::new()),
        }
    }

    /// The LSN before the first record this log can serve.
    pub fn base_lsn(&self) -> u64 {
        self.base_lsn
    }

    /// The oldest LSN this log can serve (`base_lsn + 1`).
    pub fn first_lsn(&self) -> u64 {
        self.base_lsn + 1
    }

    /// The newest LSN in the log (equal to [`Self::base_lsn`] while
    /// empty).
    pub fn tip(&self) -> u64 {
        self.tip.load(Ordering::Acquire)
    }

    /// Append one encoded body, returning the LSN it was assigned.
    /// Callers serialize appends (the server's write lock); the log
    /// itself only guarantees readers see a consistent tip.
    pub fn append(&self, body: Arc<[u8]>) -> u64 {
        let mut records = self.records.lock().unwrap_or_else(|p| p.into_inner());
        records.push(body);
        let lsn = self.base_lsn + records.len() as u64;
        self.tip.store(lsn, Ordering::Release);
        lsn
    }

    /// The body at `lsn`, or `None` when it is outside
    /// `(base_lsn, tip]`.
    pub fn get(&self, lsn: u64) -> Option<Arc<[u8]>> {
        if lsn <= self.base_lsn {
            return None;
        }
        let records = self.records.lock().unwrap_or_else(|p| p.into_inner());
        records.get((lsn - self.base_lsn - 1) as usize).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsn_addressing() {
        let log = OpLog::new(10);
        assert_eq!(log.tip(), 10);
        assert_eq!(log.first_lsn(), 11);
        assert!(log.get(10).is_none());
        assert!(log.get(11).is_none());
        assert_eq!(log.append(Arc::from(&b"a"[..])), 11);
        assert_eq!(log.append(Arc::from(&b"b"[..])), 12);
        assert_eq!(log.tip(), 12);
        assert_eq!(log.get(11).unwrap().as_ref(), b"a");
        assert_eq!(log.get(12).unwrap().as_ref(), b"b");
        assert!(log.get(13).is_none());
    }
}
