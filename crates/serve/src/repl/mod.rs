//! Leader/follower replication: a checksummed write-ahead log of
//! mutating ops, an in-memory op log for live tailing, and the shared
//! replay entry points that make a follower's state bit-identical to
//! the leader's at every LSN.
//!
//! The division of labor:
//!
//! * [`wal`] — the on-disk log format and its torn-tail recovery.
//! * [`leader`] — the in-memory [`OpLog`](leader::OpLog) subscribers
//!   tail over `OP_LOG_SUBSCRIBE`.
//! * [`follower`] — the tailing client (subscribe, heartbeat tracking,
//!   reconnect backoff).
//! * this module — [`apply_op`] and friends: the *single* code path
//!   through which a mutation reaches an [`IncrementalSession`], used
//!   identically by the leader's request handlers, WAL recovery at
//!   boot, and the follower's live tail. One code path is what makes
//!   "replica marginals are bit-identical" a structural property
//!   instead of a hope.
//!
//! The full log grammar, LSN/generation mapping, promote semantics,
//! and divergence policy are documented in `docs/REPLICATION.md`.

pub mod follower;
pub mod leader;
pub mod wal;

use snorkel_context::Token;
use snorkel_incr::{DiscTrainingSet, IncrementalSession, IngestReport, RefreshReport};

use crate::frame::IngestRow;
use crate::protocol::SuiteEdit;
use wal::Op;

/// Replication position carried inside a snapshot: the LSN and server
/// generation the snapshot's state corresponds to. A follower thawing
/// the snapshot resumes tailing at `applied_lsn + 1`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplMark {
    /// Last log sequence number applied to the snapshotted state.
    pub applied_lsn: u64,
    /// Server generation at that LSN.
    pub generation: u64,
}

/// One tokenized, span-validated ingest row awaiting the write lock.
type PreparedRow = ((usize, usize), (usize, usize), String, Vec<Token>);

/// An `INGEST` batch validated and tokenized *outside* any lock.
/// Produced by [`prepare_ingest`], consumed by [`apply_ingest`].
pub struct PreparedIngest {
    rows: Vec<PreparedRow>,
}

impl PreparedIngest {
    /// Number of candidate rows in the batch.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the batch carries no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Tokenize and span-validate an ingest batch. This is the expensive,
/// lock-free half of an ingest; errors reproduce the serving layer's
/// exact messages so leader and replayed refusals read identically.
pub fn prepare_ingest(rows: &[IngestRow]) -> Result<PreparedIngest, String> {
    let mut prepared = Vec::with_capacity(rows.len());
    for (span1, span2, text) in rows {
        let tokens = snorkel_nlp::tokenize(text);
        for (lo, hi) in [*span1, *span2] {
            if lo >= hi || hi > tokens.len() {
                return Err(format!(
                    "span {lo}..{hi} invalid for {} tokens",
                    tokens.len()
                ));
            }
        }
        prepared.push((*span1, *span2, text.clone(), tokens));
    }
    Ok(PreparedIngest { rows: prepared })
}

/// Append a prepared batch to the corpus and absorb it through the
/// streaming plane — the write-lock half of an ingest. Bumps
/// `generation` exactly when the streaming plane refit (online or
/// warm), mirroring the leader's visible generation semantics.
pub fn apply_ingest(
    session: &mut IncrementalSession,
    generation: &mut u64,
    batch: PreparedIngest,
) -> IngestReport {
    let mut ids = Vec::with_capacity(batch.rows.len());
    for (s1, s2, text, tokens) in batch.rows {
        let corpus = session.corpus_mut();
        let doc = corpus.add_document("ingest");
        let sent = corpus.add_sentence(doc, text, tokens);
        let a = corpus.add_span(sent, s1.0, s1.1, None);
        let b = corpus.add_span(sent, s2.0, s2.1, None);
        ids.push(corpus.add_candidate(vec![a, b]));
    }
    let report = session.ingest_batch(&ids);
    if report.online_fit || report.auto_refit {
        *generation += 1;
    }
    report
}

/// Apply an optional suite edit and refresh — the write-lock half of a
/// `REFRESH`. On success the caller owns the (already computed)
/// [`RefreshReport`] and, when distillation is configured, the
/// training set to run *outside* the lock. Error strings match the
/// serving layer's refusals byte-for-byte.
pub fn apply_refresh(
    session: &mut IncrementalSession,
    generation: &mut u64,
    edit: Option<&SuiteEdit>,
) -> Result<(RefreshReport, Option<DiscTrainingSet>), String> {
    let names: Vec<String> = session.lf_names().iter().map(|n| n.to_string()).collect();
    match edit {
        Some(SuiteEdit::Add(spec)) => {
            if names.iter().any(|n| n == spec.name()) {
                return Err(format!("LF {:?} already exists (use EDIT)", spec.name()));
            }
            let lf = spec.build()?;
            session.add_lf_tagged(lf, spec.content_tag());
        }
        Some(SuiteEdit::Edit(spec)) => {
            if !names.iter().any(|n| n == spec.name()) {
                return Err(format!("LF {:?} not in the suite (use ADD)", spec.name()));
            }
            let lf = spec.build()?;
            session.edit_lf_tagged(lf, spec.content_tag());
        }
        Some(SuiteEdit::Remove(name)) => {
            session
                .remove_lf(name)
                .ok_or_else(|| format!("LF {name:?} not in the suite"))?;
        }
        None => {}
    }
    let (_, report) = session.refresh();
    *generation += 1;
    Ok((report, session.disc_training_set()))
}

/// What one replayed op did to the session.
pub enum Applied {
    /// A refresh ran; `training` is `Some` when a distilled-model
    /// retrain is due (run it outside any lock, then
    /// [`install_disc`](IncrementalSession::install_disc)).
    Refresh {
        /// The refresh's cache/fit report (boxed: it dwarfs the other
        /// variants).
        report: Box<RefreshReport>,
        /// Pending distilled-model training work, if configured.
        training: Option<DiscTrainingSet>,
    },
    /// An ingest batch was absorbed.
    Ingest {
        /// The streaming plane's ingest report.
        report: IngestReport,
    },
    /// A seal: no state change.
    Seal,
}

/// Replay one logged op through the same session entry points the
/// leader's handlers use. `generation` mirrors the server generation
/// and must be compared against the record's `gen_after` afterwards —
/// a mismatch is divergence.
pub fn apply_op(
    session: &mut IncrementalSession,
    generation: &mut u64,
    op: &Op,
) -> Result<Applied, String> {
    match op {
        Op::Refresh(edit) => {
            let (report, training) = apply_refresh(session, generation, edit.as_ref())?;
            Ok(Applied::Refresh {
                report: Box::new(report),
                training,
            })
        }
        Op::Ingest(rows) => {
            let batch = prepare_ingest(rows)?;
            let report = apply_ingest(session, generation, batch);
            Ok(Applied::Ingest { report })
        }
        Op::Seal => Ok(Applied::Seal),
    }
}
