//! The tailing side of replication: connect to a leader, subscribe to
//! its op log at a resume LSN, and surface the pushed record and
//! heartbeat frames — plus the reconnect backoff the server's follower
//! thread drives.
//!
//! This module is deliberately just the wire client; *applying* the
//! records it yields (under the follower's write lock, through
//! [`apply_op`](crate::repl::apply_op)) lives with the server, so the
//! session entry points stay identical between leader and follower.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::frame::{self, BinReply, FrameClient};

/// Why a subscription attempt failed.
#[derive(Debug)]
pub enum ConnectError {
    /// The TCP connect or handshake I/O failed — transient, retry with
    /// backoff.
    Io(io::Error),
    /// The leader refused the subscription (resume LSN outside its
    /// log, replication not enabled) — fatal; the follower needs a
    /// newer snapshot or a config fix, not a retry.
    Rejected(String),
}

impl std::fmt::Display for ConnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectError::Io(e) => write!(f, "connect failed: {e}"),
            ConnectError::Rejected(msg) => write!(f, "subscription refused: {msg}"),
        }
    }
}

impl std::error::Error for ConnectError {}

/// One event pushed over a live subscription.
#[derive(Debug)]
pub enum TailEvent {
    /// An encoded WAL record body to replay.
    Record(Vec<u8>),
    /// An idle heartbeat: the leader's log tip and generation.
    Heartbeat {
        /// Leader log tip.
        tip: u64,
        /// Leader server generation.
        gen: u64,
    },
}

/// A live `OP_LOG_SUBSCRIBE` stream.
pub struct TailConn {
    client: FrameClient,
    /// Log tip the leader reported when the subscription was accepted.
    pub tip_at_subscribe: u64,
}

impl TailConn {
    /// Connect to `addr`, subscribe from `from`, and return the live
    /// stream. `read_timeout` bounds every subsequent
    /// [`Self::next_event`] so a silent leader is noticed promptly.
    pub fn connect(
        addr: &str,
        from: u64,
        connect_timeout: Duration,
        read_timeout: Duration,
    ) -> Result<TailConn, ConnectError> {
        let sock = addr
            .to_socket_addrs()
            .map_err(ConnectError::Io)?
            .next()
            .ok_or_else(|| {
                ConnectError::Io(io::Error::new(
                    io::ErrorKind::AddrNotAvailable,
                    format!("no address for {addr}"),
                ))
            })?;
        let stream =
            TcpStream::connect_timeout(&sock, connect_timeout).map_err(ConnectError::Io)?;
        stream.set_nodelay(true).map_err(ConnectError::Io)?;
        stream
            .set_read_timeout(Some(read_timeout))
            .map_err(ConnectError::Io)?;
        let mut client = FrameClient::from(stream);
        client
            .send_raw(&frame::encode_log_subscribe(from))
            .map_err(ConnectError::Io)?;
        match client.read_reply().map_err(ConnectError::Io)? {
            BinReply::SubAck { tip, .. } => Ok(TailConn {
                client,
                tip_at_subscribe: tip,
            }),
            BinReply::Err { message } => Err(ConnectError::Rejected(message)),
            other => Err(ConnectError::Rejected(format!(
                "unexpected subscribe reply: {other:?}"
            ))),
        }
    }

    /// Block (up to the read timeout) for the next pushed frame. A
    /// timeout or disconnect is an `Err` — the caller reconnects.
    pub fn next_event(&mut self) -> io::Result<TailEvent> {
        match self.client.read_reply()? {
            BinReply::LogRecord { body } => Ok(TailEvent::Record(body)),
            BinReply::Heartbeat { tip, gen } => Ok(TailEvent::Heartbeat { tip, gen }),
            BinReply::Err { message } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("leader pushed an error: {message}"),
            )),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected push frame: {other:?}"),
            )),
        }
    }
}

/// Exponential reconnect backoff: 100 ms doubling to a 2 s ceiling,
/// reset after a successful subscribe.
#[derive(Debug)]
pub struct Backoff {
    next: Duration,
}

/// First retry delay.
pub const BACKOFF_FLOOR: Duration = Duration::from_millis(100);
/// Retry delay ceiling.
pub const BACKOFF_CEIL: Duration = Duration::from_secs(2);

impl Backoff {
    /// A fresh backoff at the floor.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Backoff {
        Backoff {
            next: BACKOFF_FLOOR,
        }
    }

    /// The delay to sleep before the next attempt (doubles, capped).
    pub fn step(&mut self) -> Duration {
        let d = self.next;
        self.next = (self.next * 2).min(BACKOFF_CEIL);
        d
    }

    /// Back to the floor (call after a successful subscribe).
    pub fn reset(&mut self) {
        self.next = BACKOFF_FLOOR;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_to_the_ceiling_and_resets() {
        let mut b = Backoff::new();
        assert_eq!(b.step(), Duration::from_millis(100));
        assert_eq!(b.step(), Duration::from_millis(200));
        assert_eq!(b.step(), Duration::from_millis(400));
        assert_eq!(b.step(), Duration::from_millis(800));
        assert_eq!(b.step(), Duration::from_millis(1600));
        assert_eq!(b.step(), Duration::from_secs(2));
        assert_eq!(b.step(), Duration::from_secs(2));
        b.reset();
        assert_eq!(b.step(), Duration::from_millis(100));
    }
}
