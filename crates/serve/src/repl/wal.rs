//! The replication write-ahead log: length-prefixed, checksummed
//! records of mutating ops, replayable in LSN order.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! header:  magic [8] = "SNKLWAL\0" | version u32 | base_lsn u64
//! record:  len u32 | crc u64 | body[len]
//! body:    lsn u64 | gen_after u64 | op
//! op:      tag u8 | payload            (see [`Op`])
//! ```
//!
//! `crc` is FNV-1a-64 over `body`. `base_lsn` is the LSN *before* the
//! first record, so a log created against a snapshot taken at LSN `n`
//! carries records `n+1, n+2, …`. `gen_after` is the server generation
//! *after* the op applied — replicas verify it after replay, which turns
//! any nondeterminism into a typed divergence error instead of silent
//! drift.
//!
//! Recovery ([`scan`]) distinguishes two failure shapes:
//!
//! * a **torn tail** — the file ends mid-record (crash during append).
//!   The partial record is dropped and the file truncated back to the
//!   last complete record; this is normal operation, not an error.
//! * **corruption** — a complete record whose checksum, LSN sequence,
//!   generation monotonicity, or op grammar is wrong. This is a typed
//!   [`WalError`], never a panic and never a silently-replayed guess.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::Path;

use crate::frame::IngestRow;
use crate::protocol::{LfSpec, SuiteEdit};
use crate::snap::SnapError;
use crate::wire::{fnv1a, Reader, Writer};

/// First eight bytes of every WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"SNKLWAL\0";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Fixed header size: magic + version + base LSN.
pub const WAL_HEADER_BYTES: usize = 20;
/// Per-record prefix: `len u32 | crc u64`.
pub const RECORD_PREFIX_BYTES: usize = 12;
/// Sanity cap on one record body; a length field above this is
/// corruption, not a large batch.
pub const MAX_RECORD_BYTES: u32 = 1 << 24;

const OP_TAG_REFRESH: u8 = 1;
const OP_TAG_INGEST: u8 = 2;
const OP_TAG_SEAL: u8 = 3;

const EDIT_TAG_NONE: u8 = 0;
const EDIT_TAG_ADD: u8 = 1;
const EDIT_TAG_EDIT: u8 = 2;
const EDIT_TAG_REMOVE: u8 = 3;

/// Typed WAL failure — the replication counterpart of
/// [`crate::snap::SnapError`].
#[derive(Debug)]
pub enum WalError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with [`WAL_MAGIC`].
    BadMagic,
    /// The file's version is not one this build can replay.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this build supports.
        supported: u32,
    },
    /// The header itself is incomplete (shorter than
    /// [`WAL_HEADER_BYTES`]).
    TruncatedHeader,
    /// A complete record failed its checksum.
    ChecksumMismatch {
        /// Byte offset of the record's length prefix.
        offset: u64,
    },
    /// A structurally invalid record: bad op grammar, LSN gap, or
    /// generation regression.
    Corrupt {
        /// What was being decoded.
        context: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
            WalError::BadMagic => write!(f, "not a WAL file (bad magic)"),
            WalError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported WAL version {found} (this build reads <= {supported})"
                )
            }
            WalError::TruncatedHeader => write!(f, "truncated WAL header"),
            WalError::ChecksumMismatch { offset } => {
                write!(f, "WAL record checksum mismatch at byte offset {offset}")
            }
            WalError::Corrupt { context } => write!(f, "corrupt WAL: {context}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

fn corrupt(context: impl Into<String>) -> WalError {
    WalError::Corrupt {
        context: context.into(),
    }
}

fn from_snap(e: SnapError) -> WalError {
    corrupt(e.to_string())
}

/// One mutating operation, exactly as the leader applied it. Replaying
/// the ops of a log in LSN order through the same
/// [`IncrementalSession`](snorkel_incr::IncrementalSession) entry
/// points reproduces the leader's state bit-for-bit.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// A `REFRESH` (optionally with a suite edit). LF specs travel as
    /// their canonical text, so replay rebuilds the identical
    /// content-tagged LF.
    Refresh(Option<SuiteEdit>),
    /// An `INGEST` batch (text verb or binary `OP_INGEST` frame).
    Ingest(Vec<IngestRow>),
    /// Log seal written by `PROMOTE`: applies as a no-op and marks the
    /// point where a follower took over as leader.
    Seal,
}

/// One decoded WAL record.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// This record's log sequence number (`base_lsn + ordinal`).
    pub lsn: u64,
    /// Server generation immediately after the op applied.
    pub gen_after: u64,
    /// The operation itself.
    pub op: Op,
}

/// Encode a record body (`lsn | gen_after | op`) — the unit the
/// checksum covers and the unit shipped over `OP_LOG_SUBSCRIBE`.
pub fn encode_body(lsn: u64, gen_after: u64, op: &Op) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(lsn);
    w.put_u64(gen_after);
    match op {
        Op::Refresh(edit) => {
            w.put_u8(OP_TAG_REFRESH);
            match edit {
                None => w.put_u8(EDIT_TAG_NONE),
                Some(SuiteEdit::Add(spec)) => {
                    w.put_u8(EDIT_TAG_ADD);
                    w.put_str(&spec.canonical());
                }
                Some(SuiteEdit::Edit(spec)) => {
                    w.put_u8(EDIT_TAG_EDIT);
                    w.put_str(&spec.canonical());
                }
                Some(SuiteEdit::Remove(name)) => {
                    w.put_u8(EDIT_TAG_REMOVE);
                    w.put_str(name);
                }
            }
        }
        Op::Ingest(rows) => {
            w.put_u8(OP_TAG_INGEST);
            w.put_u32(u32::try_from(rows.len()).unwrap_or(u32::MAX));
            for ((s1, e1), (s2, e2), text) in rows {
                w.put_usize(*s1);
                w.put_usize(*e1);
                w.put_usize(*s2);
                w.put_usize(*e2);
                w.put_str(text);
            }
        }
        Op::Seal => w.put_u8(OP_TAG_SEAL),
    }
    w.into_bytes()
}

/// Frame a body for the file: `len | crc | body`.
pub fn frame_body(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_PREFIX_BYTES + body.len());
    out.extend_from_slice(
        &u32::try_from(body.len())
            .expect("record fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(&fnv1a(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

impl Record {
    /// Decode a record body previously produced by [`encode_body`].
    /// Every structural failure is a typed [`WalError::Corrupt`].
    pub fn decode_body(body: &[u8]) -> Result<Record, WalError> {
        let mut r = Reader::new(body);
        let lsn = r.u64("record lsn").map_err(from_snap)?;
        let gen_after = r.u64("record generation").map_err(from_snap)?;
        let op = match r.u8("op tag").map_err(from_snap)? {
            OP_TAG_REFRESH => {
                let edit = match r.u8("edit tag").map_err(from_snap)? {
                    EDIT_TAG_NONE => None,
                    EDIT_TAG_ADD => Some(SuiteEdit::Add(decode_spec(&mut r)?)),
                    EDIT_TAG_EDIT => Some(SuiteEdit::Edit(decode_spec(&mut r)?)),
                    EDIT_TAG_REMOVE => {
                        Some(SuiteEdit::Remove(r.str("LF name").map_err(from_snap)?))
                    }
                    other => return Err(corrupt(format!("unknown edit tag {other}"))),
                };
                Op::Refresh(edit)
            }
            OP_TAG_INGEST => {
                let n = r.u32("ingest row count").map_err(from_snap)? as usize;
                // Four spans + one length prefix per row, 8 bytes each.
                if n.checked_mul(40).is_none_or(|bytes| bytes > r.remaining()) {
                    return Err(corrupt(format!(
                        "ingest row count {n} exceeds the bytes remaining"
                    )));
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let s1 = r.usize("span1 start").map_err(from_snap)?;
                    let e1 = r.usize("span1 end").map_err(from_snap)?;
                    let s2 = r.usize("span2 start").map_err(from_snap)?;
                    let e2 = r.usize("span2 end").map_err(from_snap)?;
                    let text = r.str("sentence text").map_err(from_snap)?;
                    rows.push(((s1, e1), (s2, e2), text));
                }
                Op::Ingest(rows)
            }
            OP_TAG_SEAL => Op::Seal,
            other => return Err(corrupt(format!("unknown op tag {other}"))),
        };
        if !r.is_exhausted() {
            return Err(corrupt(format!(
                "{} trailing bytes in record body",
                r.remaining()
            )));
        }
        Ok(Record { lsn, gen_after, op })
    }
}

fn decode_spec(r: &mut Reader<'_>) -> Result<LfSpec, WalError> {
    let canonical = r.str("LF spec").map_err(from_snap)?;
    LfSpec::parse(&canonical).map_err(|e| corrupt(format!("bad LF spec in record: {e}")))
}

/// Result of scanning a WAL byte image: the decoded records plus the
/// clean length a recovering process should truncate the file to.
#[derive(Debug)]
pub struct WalScan {
    /// LSN before the first record (from the header).
    pub base_lsn: u64,
    /// Every complete, checksum-valid record, in LSN order.
    pub records: Vec<Record>,
    /// Byte length of the clean prefix (header + complete records).
    pub clean_len: u64,
    /// Bytes of torn tail dropped past `clean_len` (0 on a clean file).
    pub dropped_bytes: u64,
}

/// Scan a WAL byte image. A torn final record is dropped (reported via
/// [`WalScan::dropped_bytes`]); everything else invalid is a typed
/// [`WalError`].
pub fn scan(bytes: &[u8]) -> Result<WalScan, WalError> {
    if bytes.len() < WAL_HEADER_BYTES {
        return Err(WalError::TruncatedHeader);
    }
    if bytes[..8] != WAL_MAGIC {
        return Err(WalError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version == 0 || version > WAL_VERSION {
        return Err(WalError::UnsupportedVersion {
            found: version,
            supported: WAL_VERSION,
        });
    }
    let base_lsn = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_BYTES;
    let mut expected_lsn = base_lsn;
    let mut last_gen: Option<u64> = None;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            break;
        }
        if remaining < RECORD_PREFIX_BYTES {
            break; // torn tail: prefix itself is incomplete
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        if len > MAX_RECORD_BYTES {
            return Err(corrupt(format!(
                "record length {len} at offset {pos} exceeds the {MAX_RECORD_BYTES}-byte cap"
            )));
        }
        let total = RECORD_PREFIX_BYTES + len as usize;
        if total > remaining {
            break; // torn tail: body extends past EOF
        }
        let crc = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let body = &bytes[pos + RECORD_PREFIX_BYTES..pos + total];
        if fnv1a(body) != crc {
            return Err(WalError::ChecksumMismatch { offset: pos as u64 });
        }
        let rec = Record::decode_body(body)?;
        if rec.lsn != expected_lsn + 1 {
            return Err(corrupt(format!(
                "LSN gap: record at offset {pos} has lsn {}, expected {}",
                rec.lsn,
                expected_lsn + 1
            )));
        }
        if last_gen.is_some_and(|g| rec.gen_after < g) {
            return Err(corrupt(format!(
                "generation regression at lsn {}: {} after {}",
                rec.lsn,
                rec.gen_after,
                last_gen.unwrap_or(0)
            )));
        }
        expected_lsn = rec.lsn;
        last_gen = Some(rec.gen_after);
        records.push(rec);
        pos += total;
    }
    Ok(WalScan {
        base_lsn,
        records,
        clean_len: pos as u64,
        dropped_bytes: (bytes.len() - pos) as u64,
    })
}

/// An open WAL file positioned for appending.
///
/// Appends are `write_all` + `flush`; there is no per-record `fsync`
/// (the torn-tail recovery path makes a lost tail safe, and a follower
/// re-fetches anything past its durable prefix from the leader).
#[derive(Debug)]
pub struct WalFile {
    file: File,
    base_lsn: u64,
    next_lsn: u64,
}

impl WalFile {
    /// Open an existing WAL (recovering its clean prefix and truncating
    /// any torn tail in place) or create a fresh one with
    /// `base_if_new` as its base LSN.
    pub fn open_or_create(path: &Path, base_if_new: u64) -> Result<(WalFile, WalScan), WalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            let mut header = Vec::with_capacity(WAL_HEADER_BYTES);
            header.extend_from_slice(&WAL_MAGIC);
            header.extend_from_slice(&WAL_VERSION.to_le_bytes());
            header.extend_from_slice(&base_if_new.to_le_bytes());
            file.write_all(&header)?;
            file.flush()?;
            return Ok((
                WalFile {
                    file,
                    base_lsn: base_if_new,
                    next_lsn: base_if_new + 1,
                },
                WalScan {
                    base_lsn: base_if_new,
                    records: Vec::new(),
                    clean_len: WAL_HEADER_BYTES as u64,
                    dropped_bytes: 0,
                },
            ));
        }
        let scan = scan(&bytes)?;
        if scan.dropped_bytes > 0 {
            file.set_len(scan.clean_len)?;
        }
        file.seek(SeekFrom::Start(scan.clean_len))?;
        let next_lsn = scan.records.last().map_or(scan.base_lsn, |r| r.lsn) + 1;
        Ok((
            WalFile {
                file,
                base_lsn: scan.base_lsn,
                next_lsn,
            },
            scan,
        ))
    }

    /// Append an already-encoded record body. `lsn` must be exactly
    /// [`Self::next_lsn`] — the caller (who assigned it under the write
    /// lock) is re-checked here so a file can never hold a gap.
    pub fn append_body(&mut self, lsn: u64, body: &[u8]) -> Result<u64, WalError> {
        if lsn != self.next_lsn {
            return Err(corrupt(format!(
                "append out of order: lsn {lsn}, WAL expects {}",
                self.next_lsn
            )));
        }
        let framed = frame_body(body);
        self.file.write_all(&framed)?;
        self.file.flush()?;
        self.next_lsn = lsn + 1;
        Ok(framed.len() as u64)
    }

    /// Make everything appended so far durable (`fsync`).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// The LSN before the first record of this file.
    pub fn base_lsn(&self) -> u64 {
        self.base_lsn
    }

    /// The LSN the next append must carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::Refresh(None),
            Op::Refresh(Some(SuiteEdit::Add(
                LfSpec::parse("lf_causes KEYWORD 1 -1 causes,caused").unwrap(),
            ))),
            Op::Ingest(vec![
                ((0, 1), (2, 3), "magnesium causes weakness".into()),
                ((0, 2), (3, 4), "low iron level treats nothing".into()),
            ]),
            Op::Refresh(Some(SuiteEdit::Remove("lf_causes".into()))),
            Op::Seal,
        ]
    }

    fn build_log(base: u64) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&WAL_VERSION.to_le_bytes());
        bytes.extend_from_slice(&base.to_le_bytes());
        for (i, op) in sample_ops().iter().enumerate() {
            let body = encode_body(base + 1 + i as u64, i as u64, op);
            bytes.extend_from_slice(&frame_body(&body));
        }
        bytes
    }

    #[test]
    fn bodies_round_trip() {
        for (i, op) in sample_ops().iter().enumerate() {
            let body = encode_body(7 + i as u64, 3, op);
            let rec = Record::decode_body(&body).unwrap();
            assert_eq!(rec.lsn, 7 + i as u64);
            assert_eq!(rec.gen_after, 3);
            assert_eq!(&rec.op, op);
        }
    }

    #[test]
    fn scan_round_trips() {
        let bytes = build_log(4);
        let scan = scan(&bytes).unwrap();
        assert_eq!(scan.base_lsn, 4);
        assert_eq!(scan.records.len(), sample_ops().len());
        assert_eq!(scan.dropped_bytes, 0);
        assert_eq!(scan.clean_len, bytes.len() as u64);
        assert_eq!(scan.records[2].lsn, 7);
    }

    #[test]
    fn torn_tail_is_dropped_not_an_error() {
        let bytes = build_log(0);
        let clean = scan(&bytes).unwrap();
        // The final (Seal) record occupies the last 29 bytes; every cut
        // strictly inside it leaves a torn tail that must be dropped.
        let seal_bytes = RECORD_PREFIX_BYTES + encode_body(5, 4, &Op::Seal).len();
        for cut in (bytes.len() - seal_bytes + 1)..bytes.len() {
            let s = scan(&bytes[..cut]).unwrap();
            assert_eq!(s.records.len(), sample_ops().len() - 1, "cut at {cut}");
            assert!(s.dropped_bytes > 0);
            assert!(s.clean_len < clean.clean_len);
        }
    }

    #[test]
    fn checksum_flip_is_typed() {
        let mut bytes = build_log(0);
        // Flip one bit in the first record's body.
        let pos = WAL_HEADER_BYTES + RECORD_PREFIX_BYTES;
        bytes[pos] ^= 0x40;
        assert!(matches!(
            scan(&bytes),
            Err(WalError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn lsn_gap_is_typed() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&WAL_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&frame_body(&encode_body(1, 0, &Op::Seal)));
        bytes.extend_from_slice(&frame_body(&encode_body(3, 0, &Op::Seal)));
        assert!(matches!(scan(&bytes), Err(WalError::Corrupt { .. })));
    }

    #[test]
    fn header_failures_are_typed() {
        assert!(matches!(scan(&[]), Err(WalError::TruncatedHeader)));
        assert!(matches!(
            scan(&[0u8; WAL_HEADER_BYTES]),
            Err(WalError::BadMagic)
        ));
        let mut bytes = build_log(0);
        bytes[8..12].copy_from_slice(&(WAL_VERSION + 1).to_le_bytes());
        assert!(matches!(
            scan(&bytes),
            Err(WalError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn file_recovery_truncates_torn_tail_and_resumes() {
        let dir = std::env::temp_dir().join(format!("snorkel_wal_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.wal");
        let mut bytes = build_log(0);
        bytes.truncate(bytes.len() - 3); // tear the Seal record
        std::fs::write(&path, &bytes).unwrap();

        let (mut wal, scan) = WalFile::open_or_create(&path, 0).unwrap();
        assert_eq!(scan.records.len(), sample_ops().len() - 1);
        assert!(scan.dropped_bytes > 0);
        assert_eq!(wal.next_lsn(), sample_ops().len() as u64);

        // Appending after recovery produces a clean, gap-free log.
        let lsn = wal.next_lsn();
        wal.append_body(lsn, &encode_body(lsn, 9, &Op::Seal))
            .unwrap();
        assert!(matches!(
            wal.append_body(lsn + 2, &encode_body(lsn + 2, 9, &Op::Seal)),
            Err(WalError::Corrupt { .. })
        ));
        drop(wal);
        let reread = std::fs::read(&path).unwrap();
        let s = scan_ok(&reread);
        assert_eq!(s.records.len(), sample_ops().len());
        assert_eq!(s.dropped_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn scan_ok(bytes: &[u8]) -> WalScan {
        scan(bytes).unwrap()
    }
}
