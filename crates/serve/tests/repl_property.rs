//! Replication's core guarantee, as a property test: an arbitrary
//! interleaving of suite edits and ingest batches applied live on a
//! leader, and replayed on a follower bootstrapped from the leader's
//! initial snapshot, produces **bit-identical** state at every prefix
//! LSN — not just the same marginals at the end, but the same frozen
//! image (matrix, model weights, cache, stream plane, generation)
//! after every single op.
//!
//! Ops take the real wire path: each is encoded with
//! [`wal::encode_body`], decoded back through [`Record::decode_body`],
//! and the *decoded* op is what the follower applies — so the test
//! covers the log grammar round trip, not just the apply functions.

use proptest::prelude::*;
use snorkel_context::Corpus;
use snorkel_core::optimizer::OptimizerConfig;
use snorkel_incr::{IncrementalSession, SessionConfig};
use snorkel_lf::{lf, BoxedLf};
use snorkel_nlp::tokenize;
use snorkel_serve::repl::wal::{self, Op, Record};
use snorkel_serve::repl::{self, ReplMark};
use snorkel_serve::SuiteEdit;
use snorkel_serve::{LfSpec, Snapshot};

fn build_corpus(n: usize) -> Corpus {
    let mut corpus = Corpus::new();
    let doc = corpus.add_document("d");
    for i in 0..n {
        let verb = if i % 3 == 0 { "causes" } else { "treats" };
        let text = format!("alpha{} {} beta{}", i % 7, verb, i % 5);
        let s = corpus.add_sentence(doc, &text, tokenize(&text));
        let a = corpus.add_span(s, 0, 1, Some("A"));
        let b = corpus.add_span(s, 2, 3, Some("B"));
        corpus.add_candidate(vec![a, b]);
    }
    corpus
}

/// Moment backend at test scale — it has the online ingest path, so
/// generation bumps from `INGEST` are part of what replay must mirror.
fn moment_config() -> SessionConfig {
    SessionConfig {
        optimizer: OptimizerConfig {
            skip_structure_search: true,
            moment_min_rows: 40,
            gamma: 0.0,
            ..OptimizerConfig::default()
        },
        ..SessionConfig::default()
    }
}

fn mod_lf(name: &str, vote_mod: u64) -> BoxedLf {
    lf(name.to_string(), move |x| {
        let len = x.sentence().text().len() as u64;
        if len.is_multiple_of(vote_mod) {
            1
        } else {
            -1
        }
    })
}

fn base_lfs() -> Vec<BoxedLf> {
    (0..4u64)
        .map(|j| mod_lf(&format!("lf_{j}"), 2 + j))
        .collect()
}

/// One abstract action from proptest, converted by [`to_valid_op`]
/// into an op that is valid against the current suite (the leader only
/// ever logs ops it accepted, so the property quantifies over valid
/// logs — invalid requests are refused before logging and are covered
/// by the server tests).
#[derive(Clone, Debug)]
enum Action {
    Refresh,
    AddOrEdit(u8, u8),
    Remove(u8),
    Ingest(u8),
    Seal,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        Just(Action::Refresh),
        (0u8..4, 0u8..4).prop_map(|(i, w)| Action::AddOrEdit(i, w)),
        (0u8..4).prop_map(Action::Remove),
        (1u8..4).prop_map(Action::Ingest),
        Just(Action::Seal),
    ]
}

fn dyn_name(i: u8) -> String {
    format!("lf_dyn_{i}")
}

fn dyn_spec(i: u8, words: u8) -> LfSpec {
    let keywords = ["causes", "treats", "causes,caused", "alpha1,beta2"][words as usize % 4];
    LfSpec::parse(&format!("{} KEYWORD 1 -1 {keywords}", dyn_name(i))).expect("valid spec")
}

/// Map an abstract action onto a valid op given the live suite names.
fn to_valid_op(action: &Action, names: &mut std::collections::HashSet<String>, salt: usize) -> Op {
    match action {
        Action::Refresh => Op::Refresh(None),
        Action::AddOrEdit(i, w) => {
            let spec = dyn_spec(*i, *w);
            if names.insert(dyn_name(*i)) {
                Op::Refresh(Some(SuiteEdit::Add(spec)))
            } else {
                Op::Refresh(Some(SuiteEdit::Edit(spec)))
            }
        }
        Action::Remove(i) => {
            if names.remove(&dyn_name(*i)) {
                Op::Refresh(Some(SuiteEdit::Remove(dyn_name(*i))))
            } else {
                Op::Refresh(None)
            }
        }
        Action::Ingest(n) => Op::Ingest(
            (0..*n as usize)
                .map(|r| {
                    let text = format!("gamma{salt} causes delta{r}");
                    ((0, 1), (2, 3), text)
                })
                .collect(),
        ),
        Action::Seal => Op::Seal,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn follower_replay_is_bit_identical_at_every_prefix(
        rows in 50usize..90,
        actions in prop::collection::vec(action_strategy(), 1..10),
    ) {
        // --- Leader: live session, plus the server's two counters.
        let mut leader =
            IncrementalSession::over_all_candidates(build_corpus(rows), moment_config());
        for lf in base_lfs() {
            leader.add_lf(lf);
        }
        let (_, report) = leader.refresh();
        prop_assert_eq!(report.backend, "moment");
        let mut leader_gen = 0u64;
        let mut lsn = 0u64;

        // --- Follower: bootstrapped from the leader's snapshot, the
        // way a real follower thaws one shipped over the wire (through
        // snapshot *bytes*, so the full snap codec is on the path).
        let snap_bytes = Snapshot {
            session: leader.freeze(),
            train: leader.config().train.clone(),
            repl: Some(ReplMark { applied_lsn: lsn, generation: leader_gen }),
        }
        .to_bytes();
        let thawed = Snapshot::from_bytes(&snap_bytes).expect("own bytes parse");
        let mark = thawed.repl.expect("replicated snapshot carries a mark");
        let mut follower = IncrementalSession::thaw(
            build_corpus(rows),
            moment_config(),
            thawed.session,
            base_lfs(),
        )
        .expect("thaw");
        let mut follower_gen = mark.generation;
        prop_assert_eq!(mark.applied_lsn, lsn);

        let mut names = std::collections::HashSet::new();
        for (step, action) in actions.iter().enumerate() {
            // Leader applies, then logs with the post-apply generation
            // — exactly the order the server's write-lock section uses.
            let op = to_valid_op(action, &mut names, step);
            repl::apply_op(&mut leader, &mut leader_gen, &op)
                .unwrap_or_else(|e| panic!("valid-by-construction op refused: {e}"));
            lsn += 1;
            let body = wal::encode_body(lsn, leader_gen, &op);

            // Follower replays the *decoded* record.
            let record = Record::decode_body(&body).expect("own body decodes");
            prop_assert_eq!(&record.op, &op, "op grammar round trip");
            prop_assert_eq!(record.lsn, lsn);
            repl::apply_op(&mut follower, &mut follower_gen, &record.op)
                .unwrap_or_else(|e| panic!("replay refused at lsn {lsn}: {e}"));

            // --- Bit-identical at this prefix: the generation the
            // record promised, and the *entire frozen image* (matrix,
            // model weights, cache, stream plane) — which subsumes
            // "marginals and STATS generations match".
            prop_assert_eq!(
                follower_gen, record.gen_after,
                "follower generation diverged at lsn {}", lsn
            );
            prop_assert_eq!(leader_gen, follower_gen);
            prop_assert_eq!(
                format!("{:?}", leader.freeze()),
                format!("{:?}", follower.freeze()),
                "frozen state diverged at lsn {}", lsn
            );
            let lm = leader.label_matrix().expect("Λ built");
            let leader_marginals = leader.model().expect("model").marginals(lm, None);
            let fm = follower.label_matrix().expect("Λ restored");
            let follower_marginals = follower.model().expect("model").marginals(fm, None);
            prop_assert_eq!(
                format!("{leader_marginals:?}"),
                format!("{follower_marginals:?}"),
                "marginals diverged at lsn {}", lsn
            );
        }
    }
}
