//! Serving-layer integration tests:
//!
//! * **kill/resume** — a server is stopped mid-session and restarted
//!   from its snapshot; the resumed server answers its first `MARGINAL`
//!   without executing a single LF (counted by instrumented LFs) and
//!   reproduces the pre-kill posteriors bit-for-bit.
//! * **no torn reads** — N concurrent clients hammer `MARGINAL` while
//!   an LF edit lands mid-stream; every response must equal the pre- or
//!   the post-edit posterior exactly, with the generation tag matching.

mod common;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use common::{wait_until, Deadline};
use snorkel_context::{CandidateId, Corpus};
use snorkel_core::optimizer::ModelingStrategy;
use snorkel_incr::{IncrementalSession, SessionConfig};
use snorkel_lf::{lf, BoxedLf};
use snorkel_nlp::tokenize;
use snorkel_serve::{Client, LabelServer, LfSpec, ServeConfig, Snapshot};

fn build_corpus(n: usize) -> Corpus {
    let mut corpus = Corpus::new();
    let doc = corpus.add_document("d");
    for i in 0..n {
        let verb = match i % 5 {
            0 | 1 => "causes",
            2 => "treats",
            3 => "worsens",
            _ => "mentions",
        };
        let text = format!("alpha{} {} beta{}", i % 7, verb, i % 5);
        let s = corpus.add_sentence(doc, &text, tokenize(&text));
        let a = corpus.add_span(s, 0, 1, Some("A"));
        let b = corpus.add_span(s, 2, 3, Some("B"));
        corpus.add_candidate(vec![a, b]);
    }
    corpus
}

fn gm_config() -> SessionConfig {
    SessionConfig {
        force_strategy: Some(ModelingStrategy::GenerativeModel {
            epsilon: 0.0,
            correlations: Vec::new(),
            strengths: Vec::new(),
        }),
        ..SessionConfig::default()
    }
}

/// An LF that counts its own invocations (the kill/resume assertion).
fn counting_lf(name: &str, counter: Arc<AtomicUsize>) -> BoxedLf {
    lf(name.to_string(), move |x| {
        counter.fetch_add(1, Ordering::Relaxed);
        if x.sentence().text().contains("worsens") {
            1
        } else {
            0
        }
    })
}

const SPEC_CAUSES: &str = "lf_causes KEYWORD 1 -1 causes";
const SPEC_TREATS: &str = "lf_treats KEYWORD -1 1 treats";

fn wire_lf(spec: &str) -> (BoxedLf, u64) {
    let spec = LfSpec::parse(spec).expect("valid spec");
    (spec.build().expect("buildable"), spec.content_tag())
}

/// Session with two wire-expressible LFs plus one counting closure LF.
fn primed_session(corpus: Corpus, counter: Arc<AtomicUsize>) -> IncrementalSession {
    let ids: Vec<CandidateId> = corpus.candidate_ids().collect();
    let mut session = IncrementalSession::new(corpus, gm_config());
    session.ingest_candidates(&ids);
    for spec in [SPEC_CAUSES, SPEC_TREATS] {
        let (lf, tag) = wire_lf(spec);
        session.add_lf_tagged(lf, tag);
    }
    session.add_lf_tagged(counting_lf("lf_count", counter), 7);
    session.refresh();
    session
}

fn field<'a>(response: &'a str, key: &str) -> &'a str {
    response
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= in {response:?}"))
}

#[test]
fn kill_and_resume_serves_first_marginal_without_lf_execution() {
    let dir = std::env::temp_dir().join(format!("snorkel-serve-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap_path = dir.join("server.snap");

    // ---- First life: serve, snapshot, die. ----
    let rows = 200;
    let c1 = Arc::new(AtomicUsize::new(0));
    let session = primed_session(build_corpus(rows), Arc::clone(&c1));
    let invocations_before_serving = c1.load(Ordering::Relaxed);
    assert!(invocations_before_serving > 0, "priming executed LFs");

    let server = LabelServer::start(
        session,
        ServeConfig {
            snapshot_path: Some(snap_path.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let pre = client.request("MARGINAL 0:1,1:-1").expect("marginal");
    assert!(pre.starts_with("OK "), "{pre}");
    let pre_p = field(&pre, "p").to_string();
    let apply = client
        .request("APPLY 0 1 2 3 alpha1 causes beta2")
        .expect("apply");
    assert!(apply.starts_with("OK "), "{apply}");
    let snap = client.request("SNAPSHOT").expect("snapshot");
    assert!(snap.starts_with("OK "), "{snap}");
    assert!(client.request("SHUTDOWN").expect("shutdown") == "OK bye");
    server.wait().expect("clean shutdown");
    // MARGINAL and SNAPSHOT run no LF code; the one APPLY probe ran the
    // suite once, on its single transient candidate.
    assert_eq!(
        c1.load(Ordering::Relaxed),
        invocations_before_serving + 1,
        "only APPLY may execute LFs while serving"
    );

    // ---- Second life: thaw from the snapshot, serve warm. ----
    let snapshot = Snapshot::read_file(&snap_path).expect("snapshot loads");
    let c2 = Arc::new(AtomicUsize::new(0));
    let lfs: Vec<BoxedLf> = vec![
        wire_lf(SPEC_CAUSES).0,
        wire_lf(SPEC_TREATS).0,
        counting_lf("lf_count", Arc::clone(&c2)),
    ];
    let thawed = IncrementalSession::thaw(build_corpus(rows), gm_config(), snapshot.session, lfs)
        .unwrap_or_else(|e| panic!("thaw: {e}"));
    let server = LabelServer::start(thawed, ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    // First MARGINAL after resume: warm, bit-identical, zero LF runs.
    let post = client.request("MARGINAL 0:1,1:-1").expect("marginal");
    assert_eq!(field(&post, "p"), pre_p, "resumed posterior bit-identical");
    assert_eq!(
        c2.load(Ordering::Relaxed),
        0,
        "warm-started server answered MARGINAL without executing any LF"
    );

    // A full relabel is also free: everything is cache-served.
    let refresh = client.request("REFRESH").expect("refresh");
    assert_eq!(field(&refresh, "lf_invocations"), "0");
    assert_eq!(field(&refresh, "columns_reused"), "3");
    assert_eq!(c2.load(Ordering::Relaxed), 0);

    // Editing one LF over the wire re-executes exactly that column.
    let edited = client
        .request("REFRESH EDIT lf_causes KEYWORD 1 -1 causes,worsens")
        .expect("edit");
    assert_eq!(field(&edited, "columns_recomputed"), "1");
    assert_eq!(field(&edited, "lf_invocations"), rows.to_string());
    // Reverting the edit is a full cache hit (content-derived tags).
    let reverted = client
        .request(&format!("REFRESH EDIT {SPEC_CAUSES}"))
        .expect("revert");
    assert_eq!(field(&reverted, "lf_invocations"), "0");

    client.request("SHUTDOWN").expect("shutdown");
    server.wait().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_marginals_with_midstream_edit_see_no_torn_reads() {
    const CLIENTS: usize = 8;
    const QUERIES_PER_CLIENT: usize = 150; // 1200 total ≥ the 1k floor

    let c = Arc::new(AtomicUsize::new(0));
    let session = primed_session(build_corpus(300), c);
    let server = LabelServer::start(session, ServeConfig::default()).expect("bind");
    let addr = server.addr();

    let mut control = Client::connect(addr).expect("connect");
    let sig = "MARGINAL 0:1,1:-1";
    let pre = control.request(sig).expect("pre query");
    let (pre_gen, pre_p) = (field(&pre, "gen").to_string(), field(&pre, "p").to_string());

    // Hammer from N clients; land one LF edit mid-stream. Each client
    // issues at least its quota *and* keeps querying until the edit has
    // committed (`edit_done`), then one final query — so the stream is
    // guaranteed to span the edit on both sides.
    let edit_done = Arc::new(AtomicUsize::new(0));
    let warmed_up = Arc::new(AtomicUsize::new(0));
    let responses: Vec<Vec<String>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..CLIENTS {
            let edit_done = Arc::clone(&edit_done);
            let warmed_up = Arc::clone(&warmed_up);
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut responses = Vec::with_capacity(QUERIES_PER_CLIENT + 1);
                let watchdog = Deadline::new(Duration::from_secs(60), "hammer client quota");
                while responses.len() < QUERIES_PER_CLIENT || edit_done.load(Ordering::SeqCst) == 0
                {
                    watchdog.check();
                    responses.push(client.request(sig).expect("query"));
                    if responses.len() == 1 {
                        warmed_up.fetch_add(1, Ordering::SeqCst);
                    }
                }
                responses.push(client.request(sig).expect("post-edit query"));
                responses
            }));
        }
        // Once every hammer thread has a query in flight, land the
        // edit: replacing lf_causes with a much broader keyword set
        // moves the fitted weights, so pre- and post-edit posteriors
        // differ. (Readiness-based, not a fixed sleep: the edit lands
        // as soon as every client is provably mid-stream.)
        wait_until(
            Duration::from_secs(30),
            "every hammer client to issue its first query",
            || (warmed_up.load(Ordering::SeqCst) == CLIENTS).then_some(()),
        );
        let edited = control
            .request("REFRESH EDIT lf_causes KEYWORD 1 -1 causes,mentions,worsens")
            .expect("edit");
        assert!(edited.starts_with("OK "), "{edited}");
        edit_done.store(1, Ordering::SeqCst);
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    let post = control.request(sig).expect("post query");
    let (post_gen, post_p) = (
        field(&post, "gen").to_string(),
        field(&post, "p").to_string(),
    );
    assert_ne!(pre_gen, post_gen, "the edit bumped the generation");
    assert_ne!(
        pre_p, post_p,
        "the edit must change this posterior, or the test checks nothing"
    );

    let mut saw_pre = 0usize;
    let mut saw_post = 0usize;
    for response in responses.iter().flatten() {
        let (gen, p) = (field(response, "gen"), field(response, "p"));
        if gen == pre_gen {
            assert_eq!(p, pre_p, "torn read: pre-edit gen with wrong posterior");
            saw_pre += 1;
        } else if gen == post_gen {
            assert_eq!(p, post_p, "torn read: post-edit gen with wrong posterior");
            saw_post += 1;
        } else {
            panic!("response from unknown generation: {response}");
        }
    }
    let total = responses.iter().map(Vec::len).sum::<usize>();
    assert_eq!(saw_pre + saw_post, total);
    assert!(total >= CLIENTS * QUERIES_PER_CLIENT, "≥1k queries issued");
    assert!(saw_post >= CLIENTS, "every client observed the new model");

    server.shutdown().expect("clean shutdown");
}

#[test]
fn stats_and_errors_are_well_formed() {
    let c = Arc::new(AtomicUsize::new(0));
    let session = primed_session(build_corpus(60), c);
    let server = LabelServer::start(session, ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    assert_eq!(client.request("PING").expect("ping"), "OK pong");
    let stats = client.request("STATS").expect("stats");
    assert_eq!(field(&stats, "rows"), "60");
    assert_eq!(field(&stats, "lfs"), "3");
    assert_eq!(field(&stats, "lf_names"), "lf_causes,lf_treats,lf_count");

    // Errors are reported, never disconnects or panics.
    for bad in [
        "NOPE",
        "MARGINAL",
        "MARGINAL 9:1",          // column out of model range
        "MARGINAL 0:7",          // illegal vote for binary
        "APPLY 5 4 0 1 too few", // inverted span
        "REFRESH REMOVE lf_nope",
        "REFRESH EDIT lf_new KEYWORD 1 -1 x", // EDIT of absent LF
        "REFRESH ADD lf_causes KEYWORD 1 -1 x", // ADD of existing LF
        "SNAPSHOT",                           // no path configured
    ] {
        let response = client.request(bad).expect("still connected");
        assert!(response.starts_with("ERR "), "{bad:?} -> {response}");
    }
    // The connection still works after all those errors.
    assert_eq!(client.request("PING").expect("ping"), "OK pong");
    // A marginal memo hit shows up in STATS.
    client.request("MARGINAL 0:1").expect("q1");
    client.request("MARGINAL 0:1").expect("q2");
    let stats = client.request("STATS").expect("stats");
    let hits: u64 = field(&stats, "memo_hits").parse().expect("number");
    assert!(hits >= 1, "repeat signature served from the posterior memo");

    server.shutdown().expect("clean shutdown");
}

/// The distillation test corpus: two cue verbs per class on the same
/// rows (agreement makes LF accuracies identifiable without ground
/// truth). Built twice — once to serve, once to thaw — and the
/// kill/resume assertion depends on both builds being identical.
fn build_distill_corpus(n: usize) -> Corpus {
    let mut corpus = Corpus::new();
    let doc = corpus.add_document("d");
    for i in 0..n {
        let verb = match i % 5 {
            0 | 1 => "causes and induces",
            2 => "treats and cures",
            3 => "worsens",
            _ => "mentions",
        };
        let text = format!("alpha{} {verb} beta{}", i % 7, i % 5);
        let tokens = tokenize(&text);
        let last = tokens.len();
        let s = corpus.add_sentence(doc, &text, tokens);
        let a = corpus.add_span(s, 0, 1, Some("A"));
        let b = corpus.add_span(s, last - 1, last, Some("B"));
        corpus.add_candidate(vec![a, b]);
    }
    corpus
}

#[test]
fn predict_answers_zero_coverage_candidates_and_survives_kill_resume() {
    use snorkel_core::pipeline::DiscTrainerConfig;

    let dir = std::env::temp_dir().join(format!("snorkel-predict-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap_path = dir.join("predict.snap");

    // A session with distillation enabled (see build_distill_corpus for
    // why two LFs per class vote on the same rows).
    let corpus = build_distill_corpus(400);
    let ids: Vec<CandidateId> = corpus.candidate_ids().collect();
    let mut disc_cfg = DiscTrainerConfig::with_dim(1 << 12);
    // Small corpus: more epochs / smaller batches than the
    // deployment-scale defaults so the linear model converges.
    disc_cfg.train.epochs = 40;
    disc_cfg.train.batch_size = 32;
    let config = SessionConfig {
        distill: Some(disc_cfg),
        ..gm_config()
    };
    let mut session = IncrementalSession::new(corpus, config.clone());
    session.ingest_candidates(&ids);
    const DISTILL_SPECS: [&str; 4] = [
        "lf_causes KEYWORD 1 1 causes",
        "lf_induces KEYWORD 1 1 induces",
        "lf_treats KEYWORD -1 -1 treats",
        "lf_cures KEYWORD -1 -1 cures",
    ];
    for spec in DISTILL_SPECS {
        let (lf, tag) = wire_lf(spec);
        session.add_lf_tagged(lf, tag);
    }

    let server = LabelServer::start(
        session,
        ServeConfig {
            snapshot_path: Some(snap_path.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Before any refresh there is no distilled model.
    let early = client.request("PREDICT btw=causes").expect("request");
    assert!(early.starts_with("ERR no distilled model"), "{early}");

    // REFRESH trains the label model, then distills (retrain runs after
    // the write lock drops; the reply advertises it).
    let refreshed = client.request("REFRESH").expect("refresh");
    assert!(refreshed.starts_with("OK "), "{refreshed}");
    assert_eq!(field(&refreshed, "disc"), "retraining");

    // PREDICT: raw feature strings for a candidate *absent from Λ* —
    // "alpha99" is out of corpus. Feature names follow the featurizer's
    // conventions (lemma level: `btw=cause`, not `btw=causes`).
    let pos = client.request("PREDICT btw=induce u=alpha99").expect("ok");
    assert!(pos.starts_with("OK "), "{pos}");
    assert_eq!(field(&pos, "disc_gen"), "1");
    let p_pos: f64 = field(&pos, "p").split(',').next().unwrap().parse().unwrap();
    assert!(p_pos > 0.5, "'induces' features must score positive: {pos}");

    let neg = client.request("PREDICT btw=cure u=alpha99").expect("ok");
    let p_neg: f64 = field(&neg, "p").split(',').next().unwrap().parse().unwrap();
    assert!(p_neg < 0.5, "'cures' features must score negative: {neg}");

    // PREDICT_TEXT featurizes a transient candidate server-side. The
    // sentence shares no span text with the corpus: zero LF coverage,
    // answered purely by the distilled model.
    let text = client
        .request("PREDICT_TEXT 0 1 2 3 gamma5 causes delta2")
        .expect("ok");
    assert!(text.starts_with("OK "), "{text}");
    let p_text: f64 = field(&text, "p")
        .split(',')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        p_text > 0.5,
        "'causes' sentence must score positive: {text}"
    );

    // STATS reports the disc generation and freshness.
    let stats = client.request("STATS").expect("stats");
    assert_eq!(field(&stats, "disc_gen"), "1", "{stats}");

    // Kill: snapshot + shutdown.
    let snap = client.request("SNAPSHOT").expect("snapshot");
    assert!(snap.starts_with("OK bytes="), "{snap}");
    client.request("SHUTDOWN").expect("bye");
    server.wait().expect("clean shutdown");

    // Resume from the snapshot: the distilled model must serve PREDICT
    // immediately, bit-identically, with its generation intact.
    let snapshot = Snapshot::read_file(&snap_path).expect("snapshot loads");
    let lfs: Vec<BoxedLf> = DISTILL_SPECS.iter().map(|s| wire_lf(s).0).collect();
    // The corpus is derived state: rebuild an identical one for thawing.
    let resumed =
        IncrementalSession::thaw(build_distill_corpus(400), config, snapshot.session, lfs)
            .expect("thaw");
    let server = LabelServer::start(resumed, ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let pos2 = client.request("PREDICT btw=induce u=alpha99").expect("ok");
    assert_eq!(field(&pos2, "disc_gen"), "1");
    assert_eq!(
        field(&pos2, "p"),
        field(&pos, "p"),
        "resumed disc predictions are bit-identical"
    );
    let text2 = client
        .request("PREDICT_TEXT 0 1 2 3 gamma5 causes delta2")
        .expect("ok");
    assert_eq!(field(&text2, "p"), field(&text, "p"));
    client.request("SHUTDOWN").expect("bye");
    server.wait().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
}
