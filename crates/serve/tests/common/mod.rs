//! Shared readiness helpers for the serve integration tests.
//!
//! Anything that waits on another thread (a snapshot landing on disk, a
//! background disc retrain, a follower catching up to the leader's LSN)
//! polls against a deadline instead of sleeping a fixed interval: the
//! test proceeds the moment the condition holds on a fast machine and
//! only fails after a real, generous deadline on a slow one.

// Each integration-test crate compiles its own copy of this module and
// typically uses a subset of it.
#![allow(dead_code)]

use std::time::{Duration, Instant};

/// Poll `poll` every couple of milliseconds until it yields `Some`,
/// returning the value. Panics with `what` when `timeout` elapses
/// first — the panic message names the condition so a CI timeout reads
/// as "waited for X", not a bare assert.
pub fn wait_until<T>(timeout: Duration, what: &str, mut poll: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(v) = poll() {
            return v;
        }
        assert!(
            Instant::now() < deadline,
            "timed out after {timeout:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// A watchdog for loops that make progress themselves (hammer threads,
/// retry loops): `check()` panics once the deadline passes, turning a
/// silent hang into a named failure.
#[derive(Clone, Copy)]
pub struct Deadline {
    at: Instant,
    what: &'static str,
}

impl Deadline {
    pub fn new(timeout: Duration, what: &'static str) -> Deadline {
        Deadline {
            at: Instant::now() + timeout,
            what,
        }
    }

    pub fn check(&self) {
        assert!(Instant::now() < self.at, "deadline passed: {}", self.what);
    }
}
