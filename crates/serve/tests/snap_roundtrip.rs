//! Snapshot format property tests: bit-identical round trips over
//! arbitrary matrices/models/cardinalities, and corruption tests —
//! bit-flips, truncations, version bumps, and random garbage must all
//! yield a typed `SnapError`, never a panic or a silent misread.

use proptest::prelude::*;

use snorkel_context::{CandidateId, Corpus};
use snorkel_core::model::Scaleout;
use snorkel_core::optimizer::ModelingStrategy;
use snorkel_incr::{IncrementalSession, SessionConfig};
use snorkel_lf::{lf, BoxedLf, LfExecutor, Vote};
use snorkel_nlp::tokenize;
use snorkel_serve::{SnapError, Snapshot, FORMAT_VERSION};

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_add(0x632B_E5AB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

fn build_corpus(n: usize) -> (Corpus, Vec<CandidateId>) {
    let mut corpus = Corpus::new();
    let doc = corpus.add_document("d");
    let mut ids = Vec::new();
    for i in 0..n {
        let verb = if mix(i as u64, 11).is_multiple_of(2) {
            "causes"
        } else {
            "treats"
        };
        let text = format!("alpha{} {} beta{}", i % 7, verb, i % 5);
        let s = corpus.add_sentence(doc, &text, tokenize(&text));
        let a = corpus.add_span(s, 0, 1, Some("A"));
        let b = corpus.add_span(s, 2, 3, Some("B"));
        ids.push(corpus.add_candidate(vec![a, b]));
    }
    (corpus, ids)
}

/// Deterministic text-hash LF emitting votes legal for `cardinality`,
/// with behavior fully determined by `(salt, cardinality)` — two builds
/// with the same salt are behaviorally identical, which is the thaw
/// contract.
fn salted_lf(name: &str, salt: u64, cardinality: u8) -> BoxedLf {
    lf(name.to_string(), move |x| {
        let text = x.sentence().text();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in text.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        let r = mix(h, salt) % 1000;
        if r < 420 {
            return 0; // abstain
        }
        if cardinality == 2 {
            if r.is_multiple_of(2) {
                1
            } else {
                -1
            }
        } else {
            (1 + (r % cardinality as u64) as i8) as Vote
        }
    })
}

fn session_for(
    rows: usize,
    lf_salts: &[u64],
    cardinality: u8,
    scaleout: Scaleout,
) -> IncrementalSession {
    let (corpus, _) = build_corpus(rows);
    let config = SessionConfig {
        executor: LfExecutor {
            cardinality,
            ..LfExecutor::default()
        },
        force_strategy: Some(ModelingStrategy::GenerativeModel {
            epsilon: 0.0,
            correlations: Vec::new(),
            strengths: Vec::new(),
        }),
        scaleout,
        ..SessionConfig::default()
    };
    let mut session = IncrementalSession::over_all_candidates(corpus, config);
    for (j, &salt) in lf_salts.iter().enumerate() {
        session.add_lf_tagged(salted_lf(&format!("lf_{j}"), salt, cardinality), salt);
    }
    session.refresh();
    session
}

fn snapshot_of(session: &IncrementalSession) -> Snapshot {
    Snapshot {
        session: session.freeze(),
        train: session.config().train.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Freeze → bytes → parse → thaw reproduces the session exactly: a
    /// bit-identical matrix, model weights, cache, plan, and marginals.
    #[test]
    fn round_trip_is_bit_identical(
        rows in 1usize..120,
        lf_salts in prop::collection::vec(0u64..1_000_000, 1..6),
        cardinality in 2u8..5,
        sharded in prop_oneof![
            Just(Scaleout::RowWise),
            Just(Scaleout::Sharded { shards: 3 }),
        ],
    ) {
        let session = session_for(rows, &lf_salts, cardinality, sharded);
        let snapshot = snapshot_of(&session);
        let bytes = snapshot.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("own bytes parse");

        // Bit-exact state round trip (Debug formatting of f64 is
        // shortest-round-trip, hence injective on finite values).
        prop_assert_eq!(
            format!("{:?}", back.session),
            format!("{:?}", snapshot.session)
        );
        prop_assert_eq!(format!("{:?}", back.train), format!("{:?}", snapshot.train));

        // Thaw and compare marginals to the last bit.
        let (corpus, _) = build_corpus(rows);
        let config = session.config().clone();
        let lfs: Vec<BoxedLf> = lf_salts
            .iter()
            .enumerate()
            .map(|(j, &salt)| salted_lf(&format!("lf_{j}"), salt, cardinality))
            .collect();
        let thawed = match IncrementalSession::thaw(corpus, config, back.session, lfs) {
            Ok(s) => s,
            Err(e) => panic!("thaw: {e}"),
        };
        let lambda = session.label_matrix().expect("Λ built");
        prop_assert_eq!(thawed.label_matrix().expect("Λ restored"), lambda);
        let frozen_marginals = session.model().expect("model").marginals_rowwise(lambda);
        let thawed_marginals = thawed.model().expect("model").marginals_rowwise(lambda);
        prop_assert_eq!(thawed_marginals, frozen_marginals);
    }

    /// Any single-bit flip anywhere in the file is detected.
    #[test]
    fn every_bit_flip_is_detected(case_salt in 0u64..1000) {
        let session = session_for(17, &[case_salt, case_salt + 1], 2, Scaleout::RowWise);
        let bytes = snapshot_of(&session).to_bytes();
        // Sampled positions (every flip at small sizes is ~8·len decode
        // attempts; sample densely but boundedly).
        let stride = (bytes.len() / 97).max(1);
        for pos in (0..bytes.len()).step_by(stride) {
            for bit in 0..8 {
                let mut corrupted = bytes.clone();
                corrupted[pos] ^= 1 << bit;
                prop_assert!(
                    Snapshot::from_bytes(&corrupted).is_err(),
                    "bit {bit} of byte {pos} flipped silently"
                );
            }
        }
    }

    /// Every truncation is detected.
    #[test]
    fn every_truncation_is_detected(case_salt in 0u64..1000) {
        let session = session_for(13, &[case_salt], 2, Scaleout::RowWise);
        let bytes = snapshot_of(&session).to_bytes();
        let stride = (bytes.len() / 163).max(1);
        for len in (0..bytes.len()).step_by(stride) {
            prop_assert!(
                Snapshot::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes parsed"
            );
        }
    }

    /// Random garbage never panics — it errors.
    #[test]
    fn random_garbage_never_panics(
        garbage in prop::collection::vec(0u8..=255, 0..512)
    ) {
        prop_assert!(Snapshot::from_bytes(&garbage).is_err());
    }
}

#[test]
fn version_bump_is_a_typed_error() {
    let session = session_for(9, &[3], 2, Scaleout::RowWise);
    let mut bytes = snapshot_of(&session).to_bytes();
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match Snapshot::from_bytes(&bytes) {
        Err(SnapError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("want UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn bad_magic_and_short_files_are_typed_errors() {
    let session = session_for(9, &[4], 2, Scaleout::RowWise);
    let mut bytes = snapshot_of(&session).to_bytes();
    bytes[0] ^= 0xFF;
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(SnapError::BadMagic)
    ));
    assert!(matches!(
        Snapshot::from_bytes(&[]),
        Err(SnapError::Truncated { .. })
    ));
    assert!(matches!(
        Snapshot::from_bytes(b"SNKLSNA"),
        Err(SnapError::Truncated { .. })
    ));
}

#[test]
fn flipped_payload_reports_checksum_mismatch() {
    let session = session_for(20, &[5, 6], 2, Scaleout::RowWise);
    let snapshot = snapshot_of(&session);
    let bytes = snapshot.to_bytes();
    // Flip a byte deep in the payload region (past the header).
    let mut corrupted = bytes.clone();
    let pos = bytes.len() - 9;
    corrupted[pos] ^= 0x10;
    assert!(matches!(
        Snapshot::from_bytes(&corrupted),
        Err(SnapError::ChecksumMismatch { .. })
    ));
}

#[test]
fn file_round_trip_is_atomic_and_loadable() {
    let dir = std::env::temp_dir().join(format!("snorkel-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("session.snap");
    let session = session_for(25, &[7, 8, 9], 2, Scaleout::Sharded { shards: 2 });
    let snapshot = snapshot_of(&session);
    let written = snapshot.write_file(&path).expect("write");
    assert_eq!(written, std::fs::metadata(&path).expect("stat").len());
    let back = Snapshot::read_file(&path).expect("read");
    assert_eq!(
        format!("{:?}", back.session),
        format!("{:?}", snapshot.session)
    );
    // The temp file used for atomic replacement is gone: the snapshot
    // is the only file left in the directory.
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("list")
        .map(|e| e.expect("entry").file_name())
        .collect();
    assert_eq!(entries, vec![std::ffi::OsString::from("session.snap")]);
    std::fs::remove_dir_all(&dir).ok();
}
