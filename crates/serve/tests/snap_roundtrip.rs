//! Snapshot format property tests: bit-identical round trips over
//! arbitrary matrices/models/cardinalities, and corruption tests —
//! bit-flips, truncations, version bumps, and random garbage must all
//! yield a typed `SnapError`, never a panic or a silent misread.

use proptest::prelude::*;

use snorkel_context::{CandidateId, Corpus};
use snorkel_core::label_model::ModelSnapshot;
use snorkel_core::model::{ParamsError, Scaleout};
use snorkel_core::optimizer::ModelingStrategy;
use snorkel_incr::{IncrementalSession, SessionConfig};
use snorkel_lf::{lf, BoxedLf, LfExecutor, Vote};
use snorkel_nlp::tokenize;
use snorkel_serve::{SnapError, Snapshot, FORMAT_VERSION};

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_add(0x632B_E5AB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

fn build_corpus(n: usize) -> (Corpus, Vec<CandidateId>) {
    let mut corpus = Corpus::new();
    let doc = corpus.add_document("d");
    let mut ids = Vec::new();
    for i in 0..n {
        let verb = if mix(i as u64, 11).is_multiple_of(2) {
            "causes"
        } else {
            "treats"
        };
        let text = format!("alpha{} {} beta{}", i % 7, verb, i % 5);
        let s = corpus.add_sentence(doc, &text, tokenize(&text));
        let a = corpus.add_span(s, 0, 1, Some("A"));
        let b = corpus.add_span(s, 2, 3, Some("B"));
        ids.push(corpus.add_candidate(vec![a, b]));
    }
    (corpus, ids)
}

/// Deterministic text-hash LF emitting votes legal for `cardinality`,
/// with behavior fully determined by `(salt, cardinality)` — two builds
/// with the same salt are behaviorally identical, which is the thaw
/// contract.
fn salted_lf(name: &str, salt: u64, cardinality: u8) -> BoxedLf {
    lf(name.to_string(), move |x| {
        let text = x.sentence().text();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in text.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        let r = mix(h, salt) % 1000;
        if r < 420 {
            return 0; // abstain
        }
        if cardinality == 2 {
            if r.is_multiple_of(2) {
                1
            } else {
                -1
            }
        } else {
            (1 + (r % cardinality as u64) as i8) as Vote
        }
    })
}

fn session_with_strategy(
    rows: usize,
    lf_salts: &[u64],
    cardinality: u8,
    scaleout: Scaleout,
    strategy: ModelingStrategy,
) -> IncrementalSession {
    let (corpus, _) = build_corpus(rows);
    let config = SessionConfig {
        executor: LfExecutor {
            cardinality,
            ..LfExecutor::default()
        },
        force_strategy: Some(strategy),
        scaleout,
        ..SessionConfig::default()
    };
    let mut session = IncrementalSession::over_all_candidates(corpus, config);
    for (j, &salt) in lf_salts.iter().enumerate() {
        session.add_lf_tagged(salted_lf(&format!("lf_{j}"), salt, cardinality), salt);
    }
    session.refresh();
    session
}

fn session_for(
    rows: usize,
    lf_salts: &[u64],
    cardinality: u8,
    scaleout: Scaleout,
) -> IncrementalSession {
    session_with_strategy(
        rows,
        lf_salts,
        cardinality,
        scaleout,
        ModelingStrategy::GenerativeModel {
            epsilon: 0.0,
            correlations: Vec::new(),
            strengths: Vec::new(),
        },
    )
}

fn snapshot_of(session: &IncrementalSession) -> Snapshot {
    Snapshot {
        session: session.freeze(),
        train: session.config().train.clone(),
        repl: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Freeze → bytes → parse → thaw reproduces the session exactly: a
    /// bit-identical matrix, model weights, cache, plan, and marginals.
    #[test]
    fn round_trip_is_bit_identical(
        rows in 1usize..120,
        lf_salts in prop::collection::vec(0u64..1_000_000, 1..6),
        cardinality in 2u8..5,
        sharded in prop_oneof![
            Just(Scaleout::RowWise),
            Just(Scaleout::Sharded { shards: 3 }),
        ],
    ) {
        let session = session_for(rows, &lf_salts, cardinality, sharded);
        let snapshot = snapshot_of(&session);
        let bytes = snapshot.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("own bytes parse");

        // Bit-exact state round trip (Debug formatting of f64 is
        // shortest-round-trip, hence injective on finite values).
        prop_assert_eq!(
            format!("{:?}", back.session),
            format!("{:?}", snapshot.session)
        );
        prop_assert_eq!(format!("{:?}", back.train), format!("{:?}", snapshot.train));

        // Thaw and compare marginals to the last bit.
        let (corpus, _) = build_corpus(rows);
        let config = session.config().clone();
        let lfs: Vec<BoxedLf> = lf_salts
            .iter()
            .enumerate()
            .map(|(j, &salt)| salted_lf(&format!("lf_{j}"), salt, cardinality))
            .collect();
        let thawed = match IncrementalSession::thaw(corpus, config, back.session, lfs) {
            Ok(s) => s,
            Err(e) => panic!("thaw: {e}"),
        };
        let lambda = session.label_matrix().expect("Λ built");
        prop_assert_eq!(thawed.label_matrix().expect("Λ restored"), lambda);
        let frozen_marginals = session.model().expect("model").marginals(lambda, None);
        let thawed_marginals = thawed.model().expect("model").marginals(lambda, None);
        prop_assert_eq!(thawed_marginals, frozen_marginals);
    }

    /// Any single-bit flip anywhere in the file is detected.
    #[test]
    fn every_bit_flip_is_detected(case_salt in 0u64..1000) {
        let session = session_for(17, &[case_salt, case_salt + 1], 2, Scaleout::RowWise);
        let bytes = snapshot_of(&session).to_bytes();
        // Sampled positions (every flip at small sizes is ~8·len decode
        // attempts; sample densely but boundedly).
        let stride = (bytes.len() / 97).max(1);
        for pos in (0..bytes.len()).step_by(stride) {
            for bit in 0..8 {
                let mut corrupted = bytes.clone();
                corrupted[pos] ^= 1 << bit;
                prop_assert!(
                    Snapshot::from_bytes(&corrupted).is_err(),
                    "bit {bit} of byte {pos} flipped silently"
                );
            }
        }
    }

    /// Every truncation is detected.
    #[test]
    fn every_truncation_is_detected(case_salt in 0u64..1000) {
        let session = session_for(13, &[case_salt], 2, Scaleout::RowWise);
        let bytes = snapshot_of(&session).to_bytes();
        let stride = (bytes.len() / 163).max(1);
        for len in (0..bytes.len()).step_by(stride) {
            prop_assert!(
                Snapshot::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes parsed"
            );
        }
    }

    /// Random garbage never panics — it errors.
    #[test]
    fn random_garbage_never_panics(
        garbage in prop::collection::vec(0u8..=255, 0..512)
    ) {
        prop_assert!(Snapshot::from_bytes(&garbage).is_err());
    }
}

/// FNV-1a 64 (the snapshot checksum), reimplemented locally so tests can
/// re-seal deliberately corrupted files.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Patch one byte inside a section's payload, then re-seal the section
/// and header checksums so the corruption reaches the semantic decoder
/// instead of tripping the checksum layer.
fn patch_section(bytes: &mut [u8], tag: &[u8; 4], offset_in_section: usize, value: u8) {
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let header_end = 16 + 28 * count + 8;
    for s in 0..count {
        let at = 16 + 28 * s;
        if &bytes[at..at + 4] != tag {
            continue;
        }
        let off = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().unwrap()) as usize;
        bytes[off + offset_in_section] = value;
        let checksum = fnv1a(&bytes[off..off + len]);
        bytes[at + 20..at + 28].copy_from_slice(&checksum.to_le_bytes());
        let header_checksum = fnv1a(&bytes[..header_end - 8]);
        bytes[header_end - 8..header_end].copy_from_slice(&header_checksum.to_le_bytes());
        return;
    }
    panic!("section {tag:?} not present");
}

#[test]
fn v1_snapshot_thaws_with_generative_backend() {
    // A pre-redesign (v1) snapshot must still load and thaw into a
    // session running the generative backend, bit-identical marginals
    // included.
    let salts = [21u64, 22, 23];
    let session = session_for(40, &salts, 2, Scaleout::RowWise);
    let snapshot = snapshot_of(&session);
    let v1_bytes = snapshot
        .to_bytes_with_version(1)
        .expect("generative models encode as v1");
    let back = Snapshot::from_bytes(&v1_bytes).expect("v1 parses");
    assert!(matches!(
        back.session.model,
        Some(ModelSnapshot::Generative(_))
    ));

    let (corpus, _) = build_corpus(40);
    let lfs: Vec<BoxedLf> = salts
        .iter()
        .enumerate()
        .map(|(j, &salt)| salted_lf(&format!("lf_{j}"), salt, 2))
        .collect();
    let thawed = IncrementalSession::thaw(corpus, session.config().clone(), back.session, lfs)
        .expect("v1 snapshot thaws");
    assert_eq!(thawed.backend_name(), Some("generative"));
    let lambda = session.label_matrix().expect("Λ");
    assert_eq!(
        thawed.model().expect("model").marginals(lambda, None),
        session.model().expect("model").marginals(lambda, None),
    );
}

#[test]
fn v1_cannot_encode_non_generative_backends() {
    let session = session_with_strategy(
        30,
        &[31, 32],
        2,
        Scaleout::RowWise,
        ModelingStrategy::MajorityVote,
    );
    assert_eq!(session.backend_name(), Some("majority-vote"));
    let snapshot = snapshot_of(&session);
    // v2 carries it fine…
    assert!(Snapshot::from_bytes(&snapshot.to_bytes()).is_ok());
    // …but v1 has no tag to express it: typed refusal, not a misread.
    assert!(matches!(
        snapshot.to_bytes_with_version(1),
        Err(SnapError::Corrupt { .. })
    ));
}

#[test]
fn mv_and_moment_backends_round_trip_through_snapshots() {
    for (strategy, backend) in [
        (ModelingStrategy::MajorityVote, "majority-vote"),
        (ModelingStrategy::MomentMatching, "moment"),
    ] {
        let salts = [41u64, 42, 43];
        let session = session_with_strategy(35, &salts, 2, Scaleout::RowWise, strategy);
        assert_eq!(session.backend_name(), Some(backend));
        let bytes = snapshot_of(&session).to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("own bytes parse");
        let (corpus, _) = build_corpus(35);
        let lfs: Vec<BoxedLf> = salts
            .iter()
            .enumerate()
            .map(|(j, &salt)| salted_lf(&format!("lf_{j}"), salt, 2))
            .collect();
        let thawed = IncrementalSession::thaw(corpus, session.config().clone(), back.session, lfs)
            .unwrap_or_else(|e| panic!("{backend} thaw: {e}"));
        assert_eq!(thawed.backend_name(), Some(backend));
        let lambda = session.label_matrix().expect("Λ");
        assert_eq!(
            thawed.model().expect("model").marginals(lambda, None),
            session.model().expect("model").marginals(lambda, None),
            "{backend} marginals changed across the snapshot round trip"
        );
    }
}

#[test]
fn unknown_backend_tag_is_a_typed_error() {
    let session = session_for(20, &[51, 52], 2, Scaleout::RowWise);
    let mut bytes = snapshot_of(&session).to_bytes();
    // The v2 MODL section opens with the backend tag byte; overwrite it
    // with an unassigned value and re-seal the checksums.
    patch_section(&mut bytes, b"MODL", 0, 200);
    match Snapshot::from_bytes(&bytes) {
        Err(SnapError::UnknownBackend { tag: 200 }) => {}
        other => panic!("want UnknownBackend, got {other:?}"),
    }
}

#[test]
fn corrupt_model_params_are_typed_errors() {
    let session = session_for(20, &[61, 62], 2, Scaleout::RowWise);
    let mut snapshot = snapshot_of(&session);
    // Poison a weight in the encoded model; the decoder must refuse
    // with the typed ParamsError, not thaw a NaN model.
    match &mut snapshot.session.model {
        Some(ModelSnapshot::Generative(params)) => params.w_acc[0] = f64::NAN,
        other => panic!("expected a generative model, got {other:?}"),
    }
    let bytes = snapshot.to_bytes();
    match Snapshot::from_bytes(&bytes) {
        Err(SnapError::Model(ParamsError::NonFiniteWeight { field: "w_acc" })) => {}
        other => panic!("want Model(NonFiniteWeight), got {other:?}"),
    }
}

#[test]
fn version_bump_is_a_typed_error() {
    let session = session_for(9, &[3], 2, Scaleout::RowWise);
    let mut bytes = snapshot_of(&session).to_bytes();
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match Snapshot::from_bytes(&bytes) {
        Err(SnapError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("want UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn bad_magic_and_short_files_are_typed_errors() {
    let session = session_for(9, &[4], 2, Scaleout::RowWise);
    let mut bytes = snapshot_of(&session).to_bytes();
    bytes[0] ^= 0xFF;
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(SnapError::BadMagic)
    ));
    assert!(matches!(
        Snapshot::from_bytes(&[]),
        Err(SnapError::Truncated { .. })
    ));
    assert!(matches!(
        Snapshot::from_bytes(b"SNKLSNA"),
        Err(SnapError::Truncated { .. })
    ));
}

#[test]
fn flipped_payload_reports_checksum_mismatch() {
    let session = session_for(20, &[5, 6], 2, Scaleout::RowWise);
    let snapshot = snapshot_of(&session);
    let bytes = snapshot.to_bytes();
    // Flip a byte deep in the payload region (past the header).
    let mut corrupted = bytes.clone();
    let pos = bytes.len() - 9;
    corrupted[pos] ^= 0x10;
    assert!(matches!(
        Snapshot::from_bytes(&corrupted),
        Err(SnapError::ChecksumMismatch { .. })
    ));
}

#[test]
fn file_round_trip_is_atomic_and_loadable() {
    let dir = std::env::temp_dir().join(format!("snorkel-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("session.snap");
    let session = session_for(25, &[7, 8, 9], 2, Scaleout::Sharded { shards: 2 });
    let snapshot = snapshot_of(&session);
    let written = snapshot.write_file(&path).expect("write");
    assert_eq!(written, std::fs::metadata(&path).expect("stat").len());
    let back = Snapshot::read_file(&path).expect("read");
    assert_eq!(
        format!("{:?}", back.session),
        format!("{:?}", snapshot.session)
    );
    // The temp file used for atomic replacement is gone: the snapshot
    // is the only file left in the directory.
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("list")
        .map(|e| e.expect("entry").file_name())
        .collect();
    assert_eq!(entries, vec![std::ffi::OsString::from("session.snap")]);
    std::fs::remove_dir_all(&dir).ok();
}

/// A refreshed + distilled binary session (forced generative backend).
fn distilled_session(rows: usize, salts: &[u64]) -> IncrementalSession {
    use snorkel_core::pipeline::DiscTrainerConfig;
    let (corpus, _) = build_corpus(rows);
    let config = SessionConfig {
        force_strategy: Some(ModelingStrategy::GenerativeModel {
            epsilon: 0.0,
            correlations: Vec::new(),
            strengths: Vec::new(),
        }),
        distill: Some(DiscTrainerConfig::with_dim(1 << 12)),
        ..SessionConfig::default()
    };
    let mut session = IncrementalSession::over_all_candidates(corpus, config);
    for (j, &salt) in salts.iter().enumerate() {
        session.add_lf_tagged(salted_lf(&format!("lf_{j}"), salt, 2), salt);
    }
    session.refresh();
    session.distill().expect("distills");
    session
}

#[test]
fn disc_model_round_trips_in_v3_with_staleness() {
    let salts = [41u64, 42, 43];
    let mut session = distilled_session(60, &salts);
    // Leave the disc model stale so the staleness relation is what the
    // round trip must preserve, not just the model bytes.
    session.edit_lf_tagged(salted_lf("lf_1", 99, 2), 99);
    session.refresh();
    assert!(session.disc_is_stale());
    let probe = snorkel_disc::hash_features(["u=alpha1", "btw=causes"], 1 << 12);
    let before = session.disc().unwrap().model.predict_proba(&probe);

    let snapshot = snapshot_of(&session);
    let bytes = snapshot.to_bytes();
    let back = Snapshot::from_bytes(&bytes).expect("v3 parses");
    assert_eq!(back.session.refresh_generation, 2);
    let frozen_disc = back.session.disc.as_ref().expect("DISC section decoded");
    assert_eq!(frozen_disc.generation, 1);

    let (corpus, _) = build_corpus(60);
    let lfs: Vec<BoxedLf> = vec![
        salted_lf("lf_0", 41, 2),
        salted_lf("lf_1", 99, 2),
        salted_lf("lf_2", 43, 2),
    ];
    let thawed = IncrementalSession::thaw(corpus, session.config().clone(), back.session, lfs)
        .expect("v3 snapshot thaws");
    assert!(thawed.disc_is_stale(), "staleness survives the round trip");
    let after = thawed.disc().unwrap().model.predict_proba(&probe);
    assert_eq!(before, after, "disc predictions are bit-identical");
}

#[test]
fn older_versions_cannot_encode_a_distilled_model() {
    let session = distilled_session(40, &[51, 52]);
    let snapshot = snapshot_of(&session);
    for version in [1, 2] {
        assert!(
            matches!(
                snapshot.to_bytes_with_version(version),
                Err(SnapError::Corrupt { .. })
            ),
            "v{version} must refuse a disc model"
        );
    }
    assert!(Snapshot::from_bytes(&snapshot.to_bytes()).is_ok());
}

#[test]
fn v2_files_still_thaw_without_a_disc_model() {
    // A session that never distilled writes a valid v2 file, and this
    // build reads it back: no disc model, generation counter at zero.
    let salts = [61u64, 62];
    let session = session_for(30, &salts, 2, Scaleout::RowWise);
    let v2_bytes = snapshot_of(&session)
        .to_bytes_with_version(2)
        .expect("no disc model: v2 encodes");
    let back = Snapshot::from_bytes(&v2_bytes).expect("v2 parses");
    assert!(back.session.disc.is_none());
    assert_eq!(back.session.refresh_generation, 0);

    let (corpus, _) = build_corpus(30);
    let lfs: Vec<BoxedLf> = salts
        .iter()
        .enumerate()
        .map(|(j, &salt)| salted_lf(&format!("lf_{j}"), salt, 2))
        .collect();
    let thawed = IncrementalSession::thaw(corpus, session.config().clone(), back.session, lfs)
        .expect("v2 snapshot thaws");
    assert!(thawed.disc().is_none());
}

/// A moment-backend session that has ingested two streamed batches —
/// the streaming state a v4 `STRM` section must carry. The corpus text
/// formula continues seamlessly, so `build_corpus(base + extra)`
/// rebuilds the exact corpus a thaw needs.
fn streaming_session(base: usize, extra: usize, salts: &[u64]) -> IncrementalSession {
    let mut session = session_with_strategy(
        base,
        salts,
        2,
        Scaleout::RowWise,
        ModelingStrategy::MomentMatching,
    );
    assert_eq!(session.backend_name(), Some("moment"));
    let half = extra / 2;
    for (start, count) in [(base, half), (base + half, extra - half)] {
        let ids: Vec<CandidateId> = {
            let corpus = session.corpus_mut();
            let doc = corpus.add_document(format!("ingest-{start}"));
            (start..start + count)
                .map(|i| {
                    let verb = if mix(i as u64, 11).is_multiple_of(2) {
                        "causes"
                    } else {
                        "treats"
                    };
                    let text = format!("alpha{} {} beta{}", i % 7, verb, i % 5);
                    let s = corpus.add_sentence(doc, &text, tokenize(&text));
                    let a = corpus.add_span(s, 0, 1, Some("A"));
                    let b = corpus.add_span(s, 2, 3, Some("B"));
                    corpus.add_candidate(vec![a, b])
                })
                .collect()
        };
        let report = session.ingest_batch(&ids);
        assert!(report.online_fit, "moment session must ingest online");
    }
    session
}

#[test]
fn v4_round_trips_streaming_state_and_resumes_steady_state() {
    let salts = [81u64, 82, 83];
    let mut session = streaming_session(80, 32, &salts);
    let stream_before = session.stream().expect("streaming active").clone();
    assert_eq!(stream_before.rows(), 32);
    assert_eq!(stream_before.batches(), 2);

    let snapshot = snapshot_of(&session);
    let frozen = snapshot.session.stream.clone().expect("STRM present");
    let bytes = snapshot.to_bytes();
    let back = Snapshot::from_bytes(&bytes).expect("own bytes parse");
    assert_eq!(
        back.session.stream.as_ref(),
        Some(&frozen),
        "STRM payload round-trips bit-for-bit"
    );

    let (corpus, _) = build_corpus(112);
    let lfs: Vec<BoxedLf> = salts
        .iter()
        .enumerate()
        .map(|(j, &salt)| salted_lf(&format!("lf_{j}"), salt, 2))
        .collect();
    let mut thawed = IncrementalSession::thaw(corpus, session.config().clone(), back.session, lfs)
        .expect("v4 snapshot thaws");
    {
        let stream = thawed.stream().expect("stream survives the thaw");
        assert_eq!(stream.stats(), stream_before.stats());
        assert_eq!(stream.rows(), stream_before.rows());
        assert_eq!(stream.batches(), stream_before.batches());
        assert_eq!(stream.auto_refits(), stream_before.auto_refits());
        assert_eq!(stream.drift_score(), stream_before.drift_score());
    }
    // Re-freezing the thawed session reproduces the same image.
    assert_eq!(thawed.freeze().stream, Some(frozen));

    // Steady state survives the resume: the next ingested batch is
    // online (per-batch LF execution, no cold fit) on both sessions,
    // and their running statistics stay identical.
    for s in [&mut session, &mut thawed] {
        let ids: Vec<CandidateId> = {
            let corpus = s.corpus_mut();
            let doc = corpus.add_document("post-thaw");
            (112..112 + 8)
                .map(|i| {
                    let text = format!("alpha{} causes beta{}", i % 7, i % 5);
                    let sent = corpus.add_sentence(doc, &text, tokenize(&text));
                    let a = corpus.add_span(sent, 0, 1, Some("A"));
                    let b = corpus.add_span(sent, 2, 3, Some("B"));
                    corpus.add_candidate(vec![a, b])
                })
                .collect()
        };
        let report = s.ingest_batch(&ids);
        assert!(
            report.online_fit,
            "resumed session must stay in steady state"
        );
        assert_eq!(report.lf_invocations, 8 * 3);
    }
    assert_eq!(
        thawed.stream().expect("stream").stats(),
        session.stream().expect("stream").stats()
    );
}

#[test]
fn older_versions_cannot_encode_streaming_state() {
    let salts = [91u64, 92, 93];
    let session = streaming_session(60, 16, &salts);
    let snapshot = snapshot_of(&session);
    for version in [1, 2, 3] {
        assert!(
            matches!(
                snapshot.to_bytes_with_version(version),
                Err(SnapError::Corrupt { .. })
            ),
            "v{version} must refuse streaming state with a typed error"
        );
    }
    assert!(Snapshot::from_bytes(&snapshot.to_bytes()).is_ok());

    // Control: the same session shape minus the stream state still
    // writes v3 — the refusal is about the STRM payload, not the model.
    let no_stream = session_with_strategy(
        60,
        &salts,
        2,
        Scaleout::RowWise,
        ModelingStrategy::MomentMatching,
    );
    assert!(no_stream.stream().is_none());
    assert!(snapshot_of(&no_stream).to_bytes_with_version(3).is_ok());
}

#[test]
fn corrupt_strm_section_is_a_typed_error() {
    let session = streaming_session(60, 16, &[95, 96, 97]);
    let mut bytes = snapshot_of(&session).to_bytes();
    // Byte 8 of STRM is the statistics' cardinality (after the u64 LF
    // count); zeroing it is semantic corruption the stream crate's own
    // thaw validation must catch, surfaced as a typed snapshot error.
    patch_section(&mut bytes, b"STRM", 8, 0);
    match Snapshot::from_bytes(&bytes) {
        Err(SnapError::Corrupt { context }) => {
            assert!(context.contains("STRM"), "unexpected context {context:?}")
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn corrupt_disc_section_is_a_typed_error() {
    let session = distilled_session(40, &[71, 72]);
    let mut bytes = snapshot_of(&session).to_bytes();
    // Byte 8 of DISC starts the disc-generation u64 (bytes 0..8); set it
    // beyond the refresh generation: semantic corruption, not checksum.
    patch_section(&mut bytes, b"DISC", 0, 0xFF);
    match Snapshot::from_bytes(&bytes) {
        Err(SnapError::Corrupt { context }) => {
            assert!(context.contains("disc"), "unexpected context {context:?}")
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}
