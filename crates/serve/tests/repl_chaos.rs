//! Chaos test for replicated serving: a live leader and a tailing
//! follower in one process, with the follower killed mid-tail at an
//! arbitrary point and restarted from its snapshot + durable WAL. The
//! restarted follower must resume from the last durable LSN — proven
//! by counting LF invocations: every ingested row is labeled exactly
//! once per LF across both follower lives, so neither the kill nor the
//! resume re-executed anything — and must converge to marginals
//! bit-identical to the leader's.
//!
//! Also covered on the way: `ERR readonly` on both write verbs while a
//! follower, `STATS role=`/`lsn=` surfacing, and `PROMOTE` sealing the
//! log and flipping the follower to a writable leader.

mod common;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

use common::wait_until;
use snorkel_context::Corpus;
use snorkel_core::optimizer::OptimizerConfig;
use snorkel_incr::{IncrementalSession, SessionConfig};
use snorkel_lf::{lf, BoxedLf};
use snorkel_nlp::tokenize;
use snorkel_serve::repl::wal;
use snorkel_serve::{Client, LabelServer, LfSpec, ServeConfig, Snapshot};

const ROWS: usize = 150;
const NUM_BASE_LFS: u64 = 4;
const EXTRA_SPEC: &str = "lf_extra KEYWORD 1 -1 causes,gamma3";

fn build_corpus(n: usize) -> Corpus {
    let mut corpus = Corpus::new();
    let doc = corpus.add_document("d");
    for i in 0..n {
        let verb = if i % 3 == 0 { "causes" } else { "treats" };
        let text = format!("alpha{} {} beta{}", i % 7, verb, i % 5);
        let s = corpus.add_sentence(doc, &text, tokenize(&text));
        let a = corpus.add_span(s, 0, 1, Some("A"));
        let b = corpus.add_span(s, 2, 3, Some("B"));
        corpus.add_candidate(vec![a, b]);
    }
    corpus
}

fn moment_config() -> SessionConfig {
    SessionConfig {
        optimizer: OptimizerConfig {
            skip_structure_search: true,
            moment_min_rows: 100,
            gamma: 0.0,
            ..OptimizerConfig::default()
        },
        ..SessionConfig::default()
    }
}

/// The leader's LF: deterministic on sentence text.
fn mod_lf(name: &str, vote_mod: u64) -> BoxedLf {
    lf(name.to_string(), move |x| {
        let len = x.sentence().text().len() as u64;
        if len.is_multiple_of(vote_mod) {
            1
        } else {
            -1
        }
    })
}

/// The follower's LF: votes identically, but counts every invocation —
/// the instrument that proves bootstrap and resume never re-run the
/// suite over rows the cache already covers.
fn counting_lf(name: &str, vote_mod: u64, counter: Arc<AtomicUsize>) -> BoxedLf {
    lf(name.to_string(), move |x| {
        counter.fetch_add(1, Ordering::Relaxed);
        let len = x.sentence().text().len() as u64;
        if len.is_multiple_of(vote_mod) {
            1
        } else {
            -1
        }
    })
}

fn leader_session() -> IncrementalSession {
    let mut session = IncrementalSession::over_all_candidates(build_corpus(ROWS), moment_config());
    for j in 0..NUM_BASE_LFS {
        session.add_lf(mod_lf(&format!("lf_{j}"), 2 + j));
    }
    let (_, report) = session.refresh();
    assert_eq!(report.backend, "moment");
    session
}

/// Thaw a follower from `snapshot`, attaching counting variants of the
/// leader's LFs (plus the spec-built extra once the suite carries it).
fn follower_session(snapshot: &Snapshot, counter: &Arc<AtomicUsize>) -> IncrementalSession {
    let lfs: Vec<BoxedLf> = snapshot
        .session
        .suite
        .iter()
        .map(|(name, _)| {
            if name == "lf_extra" {
                LfSpec::parse(EXTRA_SPEC)
                    .expect("spec")
                    .build()
                    .expect("lf")
            } else {
                let j: u64 = name
                    .strip_prefix("lf_")
                    .expect("name")
                    .parse()
                    .expect("idx");
                counting_lf(name, 2 + j, Arc::clone(counter))
            }
        })
        .collect();
    IncrementalSession::thaw(
        build_corpus(ROWS),
        moment_config(),
        snapshot.session.clone(),
        lfs,
    )
    .expect("thaw follower")
}

fn field<'a>(response: &'a str, key: &str) -> &'a str {
    response
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= in {response:?}"))
}

fn lsn_of(client: &mut Client) -> u64 {
    let stats = client.request("STATS").expect("stats");
    field(&stats, "lsn").parse().expect("lsn number")
}

/// Bit-compare leader and follower: same MARGINAL reply strings (which
/// carry `gen=` and shortest-round-trip `p=`, so string equality is
/// float bit equality) and same STATS generation.
fn assert_bit_identical(leader: &mut Client, follower: &mut Client, sigs: &[&str], when: &str) {
    for sig in sigs {
        let l = leader.request(sig).expect("leader marginal");
        let f = follower.request(sig).expect("follower marginal");
        assert!(l.starts_with("OK "), "{when}: leader refused {sig}: {l}");
        assert_eq!(l, f, "{when}: {sig} diverged");
    }
    let lg = leader.request("STATS").expect("stats");
    let fg = follower.request("STATS").expect("stats");
    assert_eq!(
        field(&lg, "gen"),
        field(&fg, "gen"),
        "{when}: STATS generation diverged"
    );
    assert_eq!(
        field(&lg, "lsn"),
        field(&fg, "lsn"),
        "{when}: STATS lsn diverged"
    );
}

#[test]
fn follower_kill_resume_converges_bit_exact() {
    let dir = std::env::temp_dir().join(format!("snorkel-repl-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for f in ["leader.wal", "leader.snap", "follower.wal"] {
        let _ = std::fs::remove_file(dir.join(f));
    }
    let leader_wal = dir.join("leader.wal");
    let leader_snap = dir.join("leader.snap");
    let follower_wal = dir.join("follower.wal");

    // --- Leader: replicated (WAL configured), snapshot path for the
    // follower bootstrap image.
    let leader = LabelServer::start(
        leader_session(),
        ServeConfig {
            wal_path: Some(leader_wal.clone()),
            snapshot_path: Some(leader_snap.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind leader");
    let leader_addr = leader.addr();
    let mut lc = Client::connect(leader_addr).expect("connect leader");

    let stats = lc.request("STATS").expect("stats");
    assert_eq!(field(&stats, "role"), "leader");

    // One logged refresh before the snapshot, so the mark is nonzero
    // and bootstrap provably starts mid-log, not at genesis.
    assert!(lc.request("REFRESH").expect("refresh").starts_with("OK "));
    assert_eq!(lsn_of(&mut lc), 1);
    assert!(lc.request("SNAPSHOT").expect("snap").starts_with("OK "));

    let snapshot = Snapshot::read_file(&leader_snap).expect("read snapshot");
    let mark = snapshot.repl.expect("replicated snapshot carries a mark");
    assert_eq!(mark.applied_lsn, 1);

    // --- Follower: thaw the shipped snapshot with counting LFs.
    let count1 = Arc::new(AtomicUsize::new(0));
    let session = follower_session(&snapshot, &count1);
    assert_eq!(
        count1.load(Ordering::Relaxed),
        0,
        "bootstrap from snapshot must execute zero LFs"
    );
    let follower = LabelServer::start(
        session,
        ServeConfig {
            follow: Some(leader_addr.to_string()),
            wal_path: Some(follower_wal.clone()),
            repl_mark: Some(mark),
            ..ServeConfig::default()
        },
    )
    .expect("bind follower");
    let mut fc = Client::connect(follower.addr()).expect("connect follower");
    let stats = fc.request("STATS").expect("stats");
    assert_eq!(field(&stats, "role"), "follower");

    // --- Leader writes while the follower tails: ingests, an edit that
    // grows the suite, a plain refresh.
    let mut ingested = 0u64;
    for i in 0..10 {
        let reply = lc
            .request(&format!("INGEST 0 1 2 3 gamma{i} causes delta{i}"))
            .expect("ingest");
        assert!(reply.starts_with("OK "), "{reply}");
        ingested += 1;
    }
    assert!(lc
        .request(&format!("REFRESH ADD {EXTRA_SPEC}"))
        .expect("add")
        .starts_with("OK "));
    assert!(lc.request("REFRESH").expect("refresh").starts_with("OK "));

    let tip = lsn_of(&mut lc);
    wait_until(
        Duration::from_secs(15),
        "follower to reach the leader tip",
        || (lsn_of(&mut fc) == tip).then_some(()),
    );

    let sigs = [
        "MARGINAL 0:1,1:-1",
        "MARGINAL 1:1,3:-1",
        "MARGINAL 0:-1,2:1,4:1",
    ];
    assert_bit_identical(&mut lc, &mut fc, &sigs, "after live tail");
    assert_eq!(
        count1.load(Ordering::Relaxed) as u64,
        NUM_BASE_LFS * ingested,
        "tailing must label each ingested row exactly once per LF"
    );

    // --- Writes are refused on the follower, reads are not.
    let refused = fc.request("INGEST 0 1 2 3 x causes y").expect("alive");
    assert!(refused.starts_with("ERR readonly"), "{refused}");
    let refused = fc.request("REFRESH").expect("alive");
    assert!(refused.starts_with("ERR readonly"), "{refused}");

    // --- Kill the follower mid-tail at an arbitrary LSN: a writer
    // hammers the leader while the main thread shuts the follower down
    // after a pseudo-random delay.
    let jitter = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .expect("clock")
        .subsec_nanos() as u64
        % 25;
    let kill_ingests = 12u64;
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut wc = Client::connect(leader_addr).expect("connect writer");
            for i in 10..10 + kill_ingests {
                let reply = wc
                    .request(&format!("INGEST 0 1 2 3 gamma{i} causes delta{i}"))
                    .expect("ingest");
                assert!(reply.starts_with("OK "), "{reply}");
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        std::thread::sleep(Duration::from_millis(jitter));
        follower.shutdown().expect("follower shutdown");
        writer.join().expect("writer thread");
    });
    ingested += kill_ingests;

    // --- The follower's WAL survived the kill: it must extend the
    // snapshot mark (resume evidence), and scan cleanly.
    let wal_bytes = std::fs::read(&follower_wal).expect("follower wal");
    let scan = wal::scan(&wal_bytes).expect("follower wal scans clean");
    let durable = scan.records.last().map(|r| r.lsn).unwrap_or(scan.base_lsn);
    assert!(
        durable >= mark.applied_lsn,
        "durable lsn {durable} regressed below the mark {}",
        mark.applied_lsn
    );

    // --- Restart: same snapshot, same WAL. Recovery replays the
    // durable suffix, the tail fetches the rest, and the invocation
    // counter proves no row was labeled twice and no cached row was
    // re-labeled.
    let count2 = Arc::new(AtomicUsize::new(0));
    let session = follower_session(&snapshot, &count2);
    assert_eq!(count2.load(Ordering::Relaxed), 0);
    let follower = LabelServer::start(
        session,
        ServeConfig {
            follow: Some(leader_addr.to_string()),
            wal_path: Some(follower_wal.clone()),
            repl_mark: Some(mark),
            ..ServeConfig::default()
        },
    )
    .expect("rebind follower");
    let mut fc = Client::connect(follower.addr()).expect("reconnect follower");

    let tip = lsn_of(&mut lc);
    wait_until(
        Duration::from_secs(15),
        "restarted follower to converge",
        || (lsn_of(&mut fc) == tip).then_some(()),
    );
    assert_bit_identical(&mut lc, &mut fc, &sigs, "after kill/resume");
    assert_eq!(
        count2.load(Ordering::Relaxed) as u64,
        NUM_BASE_LFS * ingested,
        "resume must label each ingested row exactly once per LF — \
         re-executing the suite over cached rows or double-replaying \
         the durable suffix both break this count"
    );

    // --- PROMOTE: seal, flip to leader, accept writes.
    let promoted = fc.request("PROMOTE").expect("promote");
    assert!(promoted.starts_with("OK role=leader lsn="), "{promoted}");
    let stats = fc.request("STATS").expect("stats");
    assert_eq!(field(&stats, "role"), "leader");
    assert!(fc
        .request("PROMOTE")
        .expect("alive")
        .starts_with("ERR already leader"));
    assert!(lc
        .request("PROMOTE")
        .expect("alive")
        .starts_with("ERR already leader"));
    let accepted = fc
        .request("INGEST 0 1 2 3 omega causes psi")
        .expect("post-promote ingest");
    assert!(accepted.starts_with("OK "), "{accepted}");

    // The promoted node's WAL gained the seal and the new write.
    let wal_bytes = std::fs::read(&follower_wal).expect("follower wal");
    let scan = wal::scan(&wal_bytes).expect("promoted wal scans clean");
    assert!(scan.records.iter().any(|r| r.op == wal::Op::Seal));

    follower.shutdown().expect("promoted shutdown");
    leader.shutdown().expect("leader shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
