//! Fault injection for the replication WAL: every byte of every record
//! field gets flipped, every truncation point gets cut, and crafted
//! records violate each structural invariant — recovery must always be
//! a typed [`WalError`] or a clean torn-tail truncation, never a panic
//! and never replayed garbage.
//!
//! The sweep style mirrors the snapshot format's fuzz tests: walk the
//! byte image with a prime stride (dense but bounded), assert the
//! invariant at every position, and keep a handful of targeted cases
//! for failures a blind sweep can't construct (checksum-valid records
//! with bad LSNs, for instance, need the checksum re-sealed).

use proptest::prelude::*;
use snorkel_serve::repl::wal::{
    self, Op, Record, WalError, WalFile, RECORD_PREFIX_BYTES, WAL_HEADER_BYTES, WAL_MAGIC,
    WAL_VERSION,
};
use snorkel_serve::LfSpec;
use snorkel_serve::SuiteEdit;

/// FNV-1a 64 — reimplemented here so targeted tests can re-seal a
/// corrupted body with a *valid* checksum and prove the structural
/// checks behind the checksum also hold.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A representative multi-op log: every op tag, every edit tag, and a
/// multi-row ingest, with the generation advancing the way a live
/// leader's would (refreshes bump it, this ingest batch doesn't).
fn sample_records(base: u64) -> Vec<(u64, u64, Op)> {
    let gen0 = base / 2;
    vec![
        (base + 1, gen0 + 1, Op::Refresh(None)),
        (
            base + 2,
            gen0 + 2,
            Op::Refresh(Some(SuiteEdit::Add(
                LfSpec::parse("lf_causes KEYWORD 1 -1 causes,caused").unwrap(),
            ))),
        ),
        (
            base + 3,
            gen0 + 2,
            Op::Ingest(vec![
                ((0, 1), (2, 3), "magnesium causes weakness".into()),
                ((0, 2), (3, 4), "low iron level treats nothing".into()),
            ]),
        ),
        (
            base + 4,
            gen0 + 3,
            Op::Refresh(Some(SuiteEdit::Edit(
                LfSpec::parse("lf_causes KEYWORD 1 -1 causes").unwrap(),
            ))),
        ),
        (
            base + 5,
            gen0 + 4,
            Op::Refresh(Some(SuiteEdit::Remove("lf_causes".into()))),
        ),
        (base + 6, gen0 + 4, Op::Seal),
    ]
}

fn header(base: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_BYTES);
    out.extend_from_slice(&WAL_MAGIC);
    out.extend_from_slice(&WAL_VERSION.to_le_bytes());
    out.extend_from_slice(&base.to_le_bytes());
    out
}

/// Build a clean WAL byte image of [`sample_records`].
fn build_log(base: u64) -> (Vec<u8>, Vec<Record>) {
    let mut bytes = header(base);
    let mut records = Vec::new();
    for (lsn, gen_after, op) in sample_records(base) {
        let body = wal::encode_body(lsn, gen_after, &op);
        bytes.extend_from_slice(&wal::frame_body(&body));
        records.push(Record { lsn, gen_after, op });
    }
    (bytes, records)
}

/// The recovery invariant every corruption must land in: either a
/// typed error, or a scan whose records are a *strict prefix* of the
/// originals (a torn tail dropped). Anything else — a panic, or a
/// decoded record differing from what the leader wrote — is replayed
/// garbage.
fn assert_recovers(bytes: &[u8], originals: &[Record], what: &str) {
    match wal::scan(bytes) {
        Err(_) => {} // typed refusal: fine
        Ok(s) => {
            assert!(
                s.records.len() <= originals.len(),
                "{what}: scan invented {} records (log only had {})",
                s.records.len(),
                originals.len()
            );
            for (got, want) in s.records.iter().zip(originals) {
                assert_eq!(
                    got, want,
                    "{what}: replayed record diverges from what was written"
                );
            }
            assert_eq!(
                s.clean_len + s.dropped_bytes,
                bytes.len() as u64,
                "{what}: clean prefix + dropped tail must cover the file"
            );
        }
    }
}

#[test]
fn single_bit_flips_never_panic_or_replay_garbage() {
    let (bytes, originals) = build_log(40);
    // Prime stride keeps the sweep dense (hits every field of a
    // ~1 KiB image) without quadratic test time.
    let stride = (bytes.len() / 97).max(1);
    for pos in (0..bytes.len()).step_by(stride) {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << bit;
            assert_recovers(&corrupt, &originals, &format!("bit {bit} of byte {pos}"));
        }
    }
}

#[test]
fn every_truncation_point_recovers_cleanly() {
    let (bytes, originals) = build_log(7);
    let stride = (bytes.len() / 163).max(1);
    for cut in (0..bytes.len()).step_by(stride) {
        let cut_bytes = &bytes[..cut];
        if cut < WAL_HEADER_BYTES {
            assert!(
                matches!(wal::scan(cut_bytes), Err(WalError::TruncatedHeader)),
                "cut at {cut} inside the header must be TruncatedHeader"
            );
            continue;
        }
        let s = wal::scan(cut_bytes)
            .unwrap_or_else(|e| panic!("cut at {cut} past the header must recover, got {e}"));
        // Truncation only ever loses whole records off the end.
        assert!(s.records.len() <= originals.len());
        for (got, want) in s.records.iter().zip(&originals) {
            assert_eq!(got, want, "cut at {cut}: surviving record diverged");
        }
        assert_eq!(s.clean_len + s.dropped_bytes, cut as u64);
    }
    // The full image is clean: nothing dropped, every record back.
    let s = wal::scan(&bytes).expect("clean log scans");
    assert_eq!(s.records, originals);
    assert_eq!(s.dropped_bytes, 0);
}

#[test]
fn torn_final_record_is_dropped_and_reopen_resumes() {
    let dir = std::env::temp_dir().join(format!("snorkel-walfault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("torn.wal");
    let _ = std::fs::remove_file(&path);

    let base = 10;
    let (mut file, scan) = WalFile::open_or_create(&path, base).expect("create");
    assert_eq!(scan.base_lsn, base);
    let records = sample_records(base);
    for (lsn, gen_after, op) in &records {
        let body = wal::encode_body(*lsn, *gen_after, op);
        file.append_body(*lsn, &body).expect("append");
    }
    file.sync().expect("sync");
    drop(file);

    // Tear the final record: chop 3 bytes off the end, simulating a
    // crash mid-append.
    let full = std::fs::read(&path).expect("read wal");
    std::fs::write(&path, &full[..full.len() - 3]).expect("tear");

    let (mut file, scan) = WalFile::open_or_create(&path, base).expect("reopen torn");
    assert_eq!(scan.records.len(), records.len() - 1, "torn tail dropped");
    assert!(scan.dropped_bytes > 0);
    assert_eq!(file.next_lsn(), records[records.len() - 2].0 + 1);
    // The file was physically truncated to the clean prefix, so a
    // re-append lands where the torn record was.
    assert_eq!(
        std::fs::metadata(&path).expect("meta").len(),
        scan.clean_len
    );
    let (lsn, gen_after, op) = &records[records.len() - 1];
    let body = wal::encode_body(*lsn, *gen_after, op);
    file.append_body(*lsn, &body).expect("resume append");
    drop(file);

    // Third open: everything (including the re-appended record) back.
    let (_, scan) = WalFile::open_or_create(&path, base).expect("reopen clean");
    assert_eq!(scan.records.len(), records.len());
    assert_eq!(scan.dropped_bytes, 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn header_faults_are_typed() {
    let (bytes, _) = build_log(0);

    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(wal::scan(&bad_magic), Err(WalError::BadMagic)));

    let mut bad_version = bytes.clone();
    bad_version[8..12].copy_from_slice(&(WAL_VERSION + 9).to_le_bytes());
    assert!(matches!(
        wal::scan(&bad_version),
        Err(WalError::UnsupportedVersion { found, supported })
            if found == WAL_VERSION + 9 && supported == WAL_VERSION
    ));

    assert!(matches!(
        wal::scan(&bytes[..WAL_HEADER_BYTES - 1]),
        Err(WalError::TruncatedHeader)
    ));
}

#[test]
fn checksum_flip_reports_the_offset() {
    let (mut bytes, _) = build_log(3);
    // Flip one bit inside the first record's crc field.
    let crc_pos = WAL_HEADER_BYTES + 4;
    bytes[crc_pos] ^= 0x01;
    assert!(matches!(
        wal::scan(&bytes),
        Err(WalError::ChecksumMismatch { offset }) if offset == WAL_HEADER_BYTES as u64
    ));
}

/// Append a body to a byte image with a *valid* checksum — the vehicle
/// for corruption the checksum can't catch.
fn push_sealed(bytes: &mut Vec<u8>, body: &[u8]) {
    bytes.extend_from_slice(&u32::try_from(body.len()).unwrap().to_le_bytes());
    bytes.extend_from_slice(&fnv1a(body).to_le_bytes());
    bytes.extend_from_slice(body);
}

#[test]
fn checksum_valid_structural_faults_are_corrupt() {
    // LSN gap: base 5, first record claims lsn 7.
    let mut gap = header(5);
    push_sealed(&mut gap, &wal::encode_body(7, 1, &Op::Refresh(None)));
    assert!(matches!(wal::scan(&gap), Err(WalError::Corrupt { .. })));

    // Generation regression: gen 4 then gen 2.
    let mut regress = header(0);
    push_sealed(&mut regress, &wal::encode_body(1, 4, &Op::Refresh(None)));
    push_sealed(&mut regress, &wal::encode_body(2, 2, &Op::Refresh(None)));
    assert!(matches!(wal::scan(&regress), Err(WalError::Corrupt { .. })));

    // Unknown op tag (body is lsn | gen | tag 99).
    let mut bad_tag = header(0);
    let mut body = Vec::new();
    body.extend_from_slice(&1u64.to_le_bytes());
    body.extend_from_slice(&1u64.to_le_bytes());
    body.push(99);
    push_sealed(&mut bad_tag, &body);
    assert!(matches!(wal::scan(&bad_tag), Err(WalError::Corrupt { .. })));

    // Trailing bytes after a well-formed op.
    let mut trailing = header(0);
    let mut body = wal::encode_body(1, 1, &Op::Seal);
    body.push(0xAB);
    push_sealed(&mut trailing, &body);
    assert!(matches!(
        wal::scan(&trailing),
        Err(WalError::Corrupt { .. })
    ));

    // Ingest row count far beyond the bytes present.
    let mut lying_count = header(0);
    let mut body = Vec::new();
    body.extend_from_slice(&1u64.to_le_bytes());
    body.extend_from_slice(&1u64.to_le_bytes());
    body.push(2); // OP_TAG_INGEST
    body.extend_from_slice(&u32::MAX.to_le_bytes());
    push_sealed(&mut lying_count, &body);
    assert!(matches!(
        wal::scan(&lying_count),
        Err(WalError::Corrupt { .. })
    ));

    // A record body over the size cap is refused before decode.
    let mut oversized = header(0);
    oversized.extend_from_slice(&(wal::MAX_RECORD_BYTES + 1).to_le_bytes());
    oversized.extend_from_slice(&[0u8; 8]);
    assert!(matches!(
        wal::scan(&oversized),
        Err(WalError::Corrupt { .. })
    ));
}

#[test]
fn decode_body_rejects_garbage_fields() {
    // Bad edit tag inside a REFRESH.
    let mut body = Vec::new();
    body.extend_from_slice(&1u64.to_le_bytes());
    body.extend_from_slice(&1u64.to_le_bytes());
    body.push(1); // OP_TAG_REFRESH
    body.push(7); // unknown edit tag
    assert!(matches!(
        Record::decode_body(&body),
        Err(WalError::Corrupt { .. })
    ));

    // Unparseable LF spec carried by an ADD.
    let mut body = Vec::new();
    body.extend_from_slice(&1u64.to_le_bytes());
    body.extend_from_slice(&1u64.to_le_bytes());
    body.push(1); // OP_TAG_REFRESH
    body.push(1); // EDIT_TAG_ADD
    let spec = b"not a spec";
    body.extend_from_slice(&(spec.len() as u64).to_le_bytes());
    body.extend_from_slice(spec);
    assert!(matches!(
        Record::decode_body(&body),
        Err(WalError::Corrupt { .. })
    ));

    // Truncated mid-field.
    let good = wal::encode_body(1, 1, &Op::Refresh(None));
    for cut in 0..good.len() {
        assert!(
            Record::decode_body(&good[..cut]).is_err(),
            "cut at {cut} must not decode"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary bytes after a valid header: scan never panics, and
    /// whatever it accepts must checksum-decode (the prefix property is
    /// vacuous here — there are no "original" records — so the test is
    /// purely the no-panic / typed-error contract).
    #[test]
    fn random_tail_never_panics(tail in prop::collection::vec(0u8..=255, 0..512)) {
        let mut bytes = header(0);
        bytes.extend_from_slice(&tail);
        let _ = wal::scan(&bytes);
    }

    /// Fully arbitrary bytes (header included) never panic either.
    #[test]
    fn random_image_never_panics(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        let _ = wal::scan(&bytes);
    }

    /// Flip any one bit anywhere in a valid log (positions chosen by
    /// proptest rather than the fixed stride of the sweep test).
    #[test]
    fn random_bit_flip_recovers(pos in 0usize..2048, bit in 0u8..8) {
        let (mut bytes, originals) = build_log(11);
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        assert_recovers(&bytes, &originals, &format!("bit {bit} of byte {pos}"));
    }
}

// RECORD_PREFIX_BYTES is part of the public grammar the docs describe;
// pin it so a layout change is a conscious, doc-updating decision.
#[test]
fn record_prefix_is_len_plus_crc() {
    assert_eq!(RECORD_PREFIX_BYTES, 4 + 8);
}
