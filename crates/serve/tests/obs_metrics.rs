//! Observability integration tests for the serving layer:
//!
//! * **METRICS over TCP** — after mixed traffic, the exposition must be
//!   strictly parseable Prometheus text (every line), carry at least 20
//!   distinct series, and span all three instrumented layers (serve,
//!   incr, lf).
//! * **golden names** — the metric families the docs promise actually
//!   exist in a live exposition.
//! * **SLOWLOG** — returns the slowest buffered spans, slowest first,
//!   named by wire verb.
//! * **kill/resume** — gauges are reconstructed from the thawed session
//!   even after being clobbered (the in-process stand-in for a process
//!   restart; the cross-process counter-reset half lives in
//!   `scripts/serve_smoke.sh`).

use snorkel_context::{CandidateId, Corpus};
use snorkel_core::optimizer::ModelingStrategy;
use snorkel_incr::{IncrementalSession, SessionConfig};
use snorkel_nlp::tokenize;
use snorkel_serve::{Client, LabelServer, LfSpec, ServeConfig, Snapshot};

fn build_corpus(n: usize) -> Corpus {
    let mut corpus = Corpus::new();
    let doc = corpus.add_document("d");
    for i in 0..n {
        let verb = match i % 5 {
            0 | 1 => "causes",
            2 => "treats",
            3 => "worsens",
            _ => "mentions",
        };
        let text = format!("alpha{} {} beta{}", i % 7, verb, i % 5);
        let s = corpus.add_sentence(doc, &text, tokenize(&text));
        let a = corpus.add_span(s, 0, 1, Some("A"));
        let b = corpus.add_span(s, 2, 3, Some("B"));
        corpus.add_candidate(vec![a, b]);
    }
    corpus
}

fn gm_config() -> SessionConfig {
    SessionConfig {
        force_strategy: Some(ModelingStrategy::GenerativeModel {
            epsilon: 0.0,
            correlations: Vec::new(),
            strengths: Vec::new(),
        }),
        ..SessionConfig::default()
    }
}

const SPECS: [&str; 2] = [
    "lf_causes KEYWORD 1 -1 causes",
    "lf_treats KEYWORD -1 1 treats",
];

fn primed_session(rows: usize) -> IncrementalSession {
    let corpus = build_corpus(rows);
    let ids: Vec<CandidateId> = corpus.candidate_ids().collect();
    let mut session = IncrementalSession::new(corpus, gm_config());
    session.ingest_candidates(&ids);
    for spec in SPECS {
        let spec = LfSpec::parse(spec).expect("valid spec");
        session.add_lf_tagged(spec.build().expect("buildable"), spec.content_tag());
    }
    session.refresh();
    session
}

fn field<'a>(response: &'a str, key: &str) -> &'a str {
    response
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= in {response:?}"))
}

/// The sample value of `name` (no labels) in an exposition, if present.
fn gauge_value(lines: &[String], name: &str) -> Option<f64> {
    lines
        .iter()
        .filter(|l| !l.starts_with('#'))
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[test]
fn metrics_verb_exposes_parseable_multi_layer_series() {
    let session = primed_session(120);
    let server = LabelServer::start(session, ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Mixed traffic so every layer has something to say: reads, an LF
    // edit (which re-runs the executor and the refresh stages), and a
    // parse error plus a domain error.
    client.request("PING").expect("ping");
    for _ in 0..5 {
        client.request("MARGINAL 0:1,1:-1").expect("marginal");
    }
    client
        .request("APPLY 0 1 2 3 alpha1 causes beta2")
        .expect("apply");
    client
        .request("REFRESH EDIT lf_causes KEYWORD 1 -1 causes,worsens")
        .expect("refresh");
    assert!(client
        .request("NOPE")
        .expect("parse error")
        .starts_with("ERR"));
    assert!(client
        .request("MARGINAL 0:7")
        .expect("bad vote")
        .starts_with("ERR"));

    let (header, lines) = client.request_lines("METRICS").expect("metrics");
    assert!(header.starts_with("OK series="), "{header}");
    let advertised: usize = field(&header, "series").parse().expect("series count");
    assert_eq!(
        lines.len(),
        field(&header, "lines")
            .parse::<usize>()
            .expect("lines count"),
        "header line count matches payload"
    );

    // Every line must be valid Prometheus exposition text — the strict
    // parser rejects malformed names, labels, values, and histogram
    // shapes (bucket monotonicity, `_count` vs `+Inf`).
    let text = format!("{}\n", lines.join("\n"));
    let summary = snorkel_obs::validate_exposition(&text)
        .unwrap_or_else(|e| panic!("malformed exposition: {e}\n{text}"));
    assert_eq!(summary.series, advertised, "header series count is honest");
    assert!(
        summary.series >= 20,
        "expected ≥20 distinct series, got {}",
        summary.series
    );

    // All three instrumented layers are present in one scrape.
    for family in [
        // serve
        "snorkel_serve_requests_total",
        "snorkel_serve_request_seconds",
        "snorkel_serve_errors_total",
        "snorkel_serve_parse_errors_total",
        "snorkel_serve_lock_wait_seconds",
        "snorkel_serve_disc_gen_lag",
        "snorkel_serve_memo_size",
        "snorkel_serve_memo_generation",
        // incr
        "snorkel_incr_refresh_stage_seconds",
        "snorkel_incr_refreshes_total",
        "snorkel_incr_refresh_generation",
        "snorkel_incr_unique_patterns",
        "snorkel_incr_cache_columns",
        "snorkel_incr_cache_capacity",
        "snorkel_incr_rows",
        "snorkel_incr_lfs",
        // lf
        "snorkel_lf_invocations_total",
        "snorkel_lf_abstains_total",
    ] {
        assert!(
            summary.has_family(family),
            "family {family} missing from exposition:\n{text}"
        );
    }

    // Per-verb accounting: the five MARGINALs (plus the failed one) are
    // visible, and the two ERR replies were counted.
    let marginal = lines
        .iter()
        .find(|l| l.starts_with("snorkel_serve_requests_total{verb=\"MARGINAL\"}"))
        .expect("MARGINAL request counter");
    let count: f64 = marginal
        .rsplit(' ')
        .next()
        .and_then(|v| v.parse().ok())
        .expect("numeric value");
    assert!(count >= 6.0, "{marginal}");
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("snorkel_serve_errors_total{verb=\"MARGINAL\"}")),
        "the illegal-vote MARGINAL must surface as a per-verb error"
    );

    server.shutdown().expect("clean shutdown");
}

#[test]
fn slowlog_returns_slowest_spans_first() {
    let session = primed_session(60);
    let server = LabelServer::start(session, ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    for _ in 0..10 {
        client.request("MARGINAL 0:1").expect("marginal");
    }
    client.request("REFRESH").expect("refresh");

    let (header, lines) = client.request_lines("SLOWLOG 5").expect("slowlog");
    assert!(header.starts_with("OK count="), "{header}");
    let count: usize = field(&header, "count").parse().expect("count");
    assert_eq!(lines.len(), count);
    assert!((1..=5).contains(&count), "{header}");

    let mut last = u64::MAX;
    for line in &lines {
        let dur: u64 = field(line, "dur_ns").parse().expect("duration");
        assert!(dur <= last, "entries must be slowest-first: {lines:?}");
        last = dur;
        let span = field(line, "span");
        assert!(
            [
                "PING",
                "MARGINAL",
                "APPLY",
                "PREDICT",
                "PREDICT_TEXT",
                "REFRESH",
                "SNAPSHOT",
                "STATS",
                "METRICS",
                "SLOWLOG",
                "SHUTDOWN"
            ]
            .contains(&span)
                || span
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '_' || c == '.'),
            "span names are verbs or internal stage names: {line}"
        );
    }
    // SLOWLOG 0 is a parse error, not an empty reply.
    assert!(client
        .request("SLOWLOG 0")
        .expect("reply")
        .starts_with("ERR"));

    server.shutdown().expect("clean shutdown");
}

#[test]
fn stats_reports_cache_and_memo_occupancy() {
    let session = primed_session(60);
    let server = LabelServer::start(session, ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    client.request("MARGINAL 0:1").expect("q1");
    client.request("MARGINAL 0:1").expect("q2");
    let stats = client.request("STATS").expect("stats");
    let cache_cols: usize = field(&stats, "cache_cols").parse().expect("number");
    let cache_cap: usize = field(&stats, "cache_cap").parse().expect("number");
    assert_eq!(cache_cols, 2, "both LF columns cached: {stats}");
    assert!(cache_cap >= cache_cols, "{stats}");
    let memo_size: usize = field(&stats, "memo_size").parse().expect("number");
    assert!(memo_size >= 1, "repeat MARGINAL memoized: {stats}");
    let memo_gen: u64 = field(&stats, "memo_gen").parse().expect("number");
    assert_eq!(memo_gen, 0, "no refresh yet: {stats}");

    server.shutdown().expect("clean shutdown");
}

#[test]
fn thawed_server_reconstructs_gauges_without_a_refresh() {
    let dir = std::env::temp_dir().join(format!("snorkel-obs-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap_path = dir.join("obs.snap");

    // First life: three refreshes, snapshot, die.
    let rows = 80;
    let session = primed_session(rows); // one refresh
    let server = LabelServer::start(
        session,
        ServeConfig {
            snapshot_path: Some(snap_path.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.request("REFRESH").expect("refresh 2");
    client.request("REFRESH").expect("refresh 3");
    client.request("SNAPSHOT").expect("snapshot");
    client.request("SHUTDOWN").expect("bye");
    server.wait().expect("clean shutdown");

    // Clobber the gauges so the assertion below can only pass if thaw
    // re-publishes them from the reconstructed session (in a real
    // restart the fresh process starts from zero — `serve_smoke.sh`
    // covers that half, including the counter reset).
    let registry = snorkel_obs::global();
    registry
        .gauge("snorkel_incr_refresh_generation", &[])
        .set(-1);
    registry.gauge("snorkel_incr_rows", &[]).set(-1);
    registry.gauge("snorkel_incr_lfs", &[]).set(-1);

    let snapshot = Snapshot::read_file(&snap_path).expect("snapshot loads");
    let lfs = SPECS
        .iter()
        .map(|s| LfSpec::parse(s).expect("spec").build().expect("buildable"))
        .collect();
    let thawed = IncrementalSession::thaw(build_corpus(rows), gm_config(), snapshot.session, lfs)
        .expect("thaw");
    let generation = thawed.refresh_generation();

    let server = LabelServer::start(thawed, ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let (_, lines) = client.request_lines("METRICS").expect("metrics");
    assert_eq!(
        gauge_value(&lines, "snorkel_incr_refresh_generation"),
        Some(generation as f64),
        "thaw republishes the generation gauge"
    );
    assert_eq!(gauge_value(&lines, "snorkel_incr_rows"), Some(rows as f64));
    assert_eq!(
        gauge_value(&lines, "snorkel_incr_lfs"),
        Some(SPECS.len() as f64)
    );

    server.shutdown().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
}
