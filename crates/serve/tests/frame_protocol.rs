//! Wire-level tests for the worker-pool server and binary framing v2:
//!
//! * **equivalence** — a batched binary `MARGINAL` reply carries the
//!   same generation and *bit-identical* posteriors to N single text
//!   requests (property-tested; the text plane's shortest-round-trip
//!   float formatting makes the comparison exact).
//! * **pipelining** — N requests written in one TCP segment yield N
//!   in-order replies, on the text plane, the binary plane, and a mix
//!   of both on one connection.
//! * **failure modes** — an oversized request line gets `ERR request
//!   line too long` before the close (not a silent drop), invalid
//!   UTF-8 gets `ERR invalid utf-8` without killing the connection,
//!   a connection over the cap is refused with `ERR busy`, and
//!   malformed frames (unknown opcode, lying length fields, oversized
//!   payloads) get error frames.

mod common;

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

use common::wait_until;
use proptest::prelude::*;
use snorkel_context::{CandidateId, Corpus};
use snorkel_core::optimizer::ModelingStrategy;
use snorkel_incr::{IncrementalSession, SessionConfig};
use snorkel_nlp::tokenize;
use snorkel_serve::frame::{self, FRAME_HEADER_BYTES, FRAME_MAGIC, MAX_FRAME_BYTES, OP_MARGINAL};
use snorkel_serve::{BinReply, Client, FrameClient, LabelServer, LfSpec, ServeConfig, VoteRow};

fn build_corpus(n: usize) -> Corpus {
    let mut corpus = Corpus::new();
    let doc = corpus.add_document("d");
    for i in 0..n {
        let verb = match i % 5 {
            0 | 1 => "causes",
            2 => "treats",
            3 => "worsens",
            _ => "mentions",
        };
        let text = format!("alpha{} {} beta{}", i % 7, verb, i % 5);
        let s = corpus.add_sentence(doc, &text, tokenize(&text));
        let a = corpus.add_span(s, 0, 1, Some("A"));
        let b = corpus.add_span(s, 2, 3, Some("B"));
        corpus.add_candidate(vec![a, b]);
    }
    corpus
}

fn gm_config() -> SessionConfig {
    SessionConfig {
        force_strategy: Some(ModelingStrategy::GenerativeModel {
            epsilon: 0.0,
            correlations: Vec::new(),
            strengths: Vec::new(),
        }),
        ..SessionConfig::default()
    }
}

const SPECS: [&str; 2] = [
    "lf_causes KEYWORD 1 -1 causes",
    "lf_treats KEYWORD -1 1 treats",
];

fn primed_session(rows: usize) -> IncrementalSession {
    let corpus = build_corpus(rows);
    let ids: Vec<CandidateId> = corpus.candidate_ids().collect();
    let mut session = IncrementalSession::new(corpus, gm_config());
    session.ingest_candidates(&ids);
    for spec in SPECS {
        let spec = LfSpec::parse(spec).expect("valid spec");
        session.add_lf_tagged(spec.build().expect("buildable"), spec.content_tag());
    }
    session.refresh();
    session
}

/// One server shared by every test that only reads (starting a server
/// per proptest case would dominate the run). Tests that mutate global
/// server behavior (the connection cap) start their own.
fn shared_server() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let server = LabelServer::start(primed_session(60), ServeConfig::default()).expect("bind");
        let addr = server.addr();
        // Keep it serving for the whole test process.
        std::mem::forget(server);
        addr
    })
}

/// Decode a `p=` list from a text `MARGINAL` reply. Shortest-round-trip
/// formatting means these parse back to the exact bits the server
/// computed.
fn text_probs(reply: &str) -> Vec<f64> {
    let p = reply
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("p="))
        .unwrap_or_else(|| panic!("no p= in {reply:?}"));
    p.split(',')
        .map(|v| v.parse().expect("parseable probability"))
        .collect()
}

fn text_gen(reply: &str) -> u64 {
    reply
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("gen="))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no gen= in {reply:?}"))
}

/// A batch row over the two primed LF columns: a nonempty subset of
/// {0, 1}, each selected column voting ±1.
fn row_strategy() -> impl Strategy<Value = VoteRow> {
    (
        1u8..4,
        prop_oneof![Just(1i8), Just(-1i8)],
        prop_oneof![Just(1i8), Just(-1i8)],
    )
        .prop_map(|(mask, v0, v1)| {
            let mut cols = Vec::new();
            let mut votes = Vec::new();
            if mask & 1 != 0 {
                cols.push(0);
                votes.push(v0);
            }
            if mask & 2 != 0 {
                cols.push(1);
                votes.push(v1);
            }
            (cols, votes)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The acceptance property: one batched binary MARGINAL ==
    /// N single text MARGINALs, to the bit.
    #[test]
    fn binary_batch_matches_text_singles(rows in prop::collection::vec(row_strategy(), 1..9)) {
        let addr = shared_server();
        let mut text = Client::connect(addr).expect("text connect");
        let mut bin = FrameClient::connect(addr).expect("frame connect");

        let reply = bin.marginal(&rows).expect("binary round trip");
        let BinReply::Marginal { gen, probs } = reply else {
            panic!("unexpected reply {reply:?}");
        };
        prop_assert_eq!(probs.len(), rows.len());

        for (row, bin_probs) in rows.iter().zip(&probs) {
            let entries: Vec<String> = row
                .0
                .iter()
                .zip(&row.1)
                .map(|(c, v)| format!("{c}:{v}"))
                .collect();
            let reply = text
                .request(&format!("MARGINAL {}", entries.join(",")))
                .expect("text round trip");
            prop_assert!(reply.starts_with("OK "), "{}", reply);
            prop_assert_eq!(text_gen(&reply), gen);
            let text_bits: Vec<u64> = text_probs(&reply).iter().map(|p| p.to_bits()).collect();
            let bin_bits: Vec<u64> = bin_probs.iter().map(|p| p.to_bits()).collect();
            prop_assert_eq!(text_bits, bin_bits, "binary and text disagree for {:?}", row);
        }
    }
}

#[test]
fn text_pipelining_yields_in_order_replies() {
    let addr = shared_server();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    // Three requests, one write, distinguishable replies.
    stream
        .write_all(b"PING\nMARGINAL 0:1\nNOPE\n")
        .expect("one segment");
    let mut reader = BufReader::new(stream);
    let mut read_line = || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply line");
        line.trim_end().to_string()
    };
    assert_eq!(read_line(), "OK pong");
    assert!(read_line().starts_with("OK gen="));
    assert!(read_line().starts_with("ERR"));
}

#[test]
fn binary_pipelining_yields_in_order_replies() {
    let addr = shared_server();
    let mut client = FrameClient::connect(addr).expect("connect");
    let batches: [Vec<VoteRow>; 3] = [
        vec![(vec![0], vec![1])],
        vec![(vec![1], vec![-1]), (vec![0, 1], vec![1, 1])],
        vec![(vec![0], vec![-1])],
    ];
    let mut segment = frame::encode_ping();
    for batch in &batches {
        segment.extend_from_slice(&frame::encode_marginal(batch));
    }
    client.send_raw(&segment).expect("one segment");
    assert!(matches!(
        client.read_reply().expect("pong"),
        BinReply::Pong { .. }
    ));
    for batch in &batches {
        match client.read_reply().expect("marginal reply") {
            BinReply::Marginal { probs, .. } => assert_eq!(probs.len(), batch.len()),
            other => panic!("unexpected reply {other:?}"),
        }
    }
}

#[test]
fn mixed_plane_pipelining_preserves_order() {
    let addr = shared_server();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut segment = Vec::new();
    segment.extend_from_slice(b"PING\n");
    segment.extend_from_slice(&frame::encode_marginal(&[(vec![0], vec![1])]));
    segment.extend_from_slice(b"MARGINAL 1:-1\n");
    stream.write_all(&segment).expect("one segment");

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("text reply");
    assert_eq!(line.trim_end(), "OK pong");

    let mut header = [0u8; FRAME_HEADER_BYTES];
    reader.read_exact(&mut header).expect("frame header");
    assert_eq!(header[0], FRAME_MAGIC);
    let len = u32::from_le_bytes(header[2..6].try_into().unwrap());
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload).expect("frame payload");
    match frame::decode_reply(header[1], &payload).expect("decodable") {
        BinReply::Marginal { probs, .. } => assert_eq!(probs.len(), 1),
        other => panic!("unexpected reply {other:?}"),
    }

    line.clear();
    reader.read_line(&mut line).expect("text reply");
    assert!(line.starts_with("OK gen="), "{line}");
}

#[test]
fn oversized_line_gets_err_before_close() {
    let addr = shared_server();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    // Stream past the 1 MiB line cap without ever sending a newline,
    // then half-close so the server sees clean EOF (no unread bytes →
    // no RST racing the ERR reply back to us).
    let chunk = [b'x'; 64 * 1024];
    for _ in 0..17 {
        stream.write_all(&chunk).expect("oversized line");
    }
    stream.shutdown(Shutdown::Write).expect("half-close");

    let mut reply = String::new();
    let mut reader = BufReader::new(stream);
    reader.read_line(&mut reply).expect("the ERR line");
    assert_eq!(reply.trim_end(), "ERR request line too long");
    reply.clear();
    assert_eq!(reader.read_line(&mut reply).expect("EOF"), 0, "{reply:?}");
}

#[test]
fn invalid_utf8_is_rejected_but_connection_survives() {
    let addr = shared_server();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .write_all(b"MARGINAL \xff\xfe 0:1\nPING\n")
        .expect("bad bytes then a good request");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("reply");
    assert_eq!(line.trim_end(), "ERR invalid utf-8");
    line.clear();
    reader.read_line(&mut line).expect("second reply");
    assert_eq!(line.trim_end(), "OK pong", "connection must stay usable");
}

#[test]
fn connection_cap_refuses_with_err_busy() {
    let server = LabelServer::start(
        primed_session(20),
        ServeConfig {
            workers: 2,
            max_connections: 2,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    let mut c1 = Client::connect(addr).expect("first");
    let mut c2 = Client::connect(addr).expect("second");
    // Round trips guarantee both connections were accepted and counted
    // before the third arrives.
    assert_eq!(c1.request("PING").expect("ping"), "OK pong");
    assert_eq!(c2.request("PING").expect("ping"), "OK pong");

    let refused = TcpStream::connect(addr).expect("tcp connect still succeeds");
    refused
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut reader = BufReader::new(refused);
    let mut line = String::new();
    reader.read_line(&mut line).expect("refusal");
    assert_eq!(line.trim_end(), "ERR busy");
    line.clear();
    assert_eq!(reader.read_line(&mut line).expect("EOF"), 0);

    // Freeing a slot readmits: drop one client, then retry until the
    // worker notices the close and releases the count.
    drop(c1);
    wait_until(
        Duration::from_secs(30),
        "a connection slot to free after client close",
        || {
            let mut probe = Client::connect(addr).expect("tcp connect");
            match probe.request("PING") {
                Ok(reply) if reply == "OK pong" => Some(()),
                Ok(reply) if reply == "ERR busy" => None,
                Ok(other) => panic!("unexpected reply {other:?}"),
                // The refused socket closes under us mid-request.
                Err(_) => None,
            }
        },
    );

    drop(c2);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn malformed_frames_get_error_frames() {
    let addr = shared_server();
    let mut client = FrameClient::connect(addr).expect("connect");

    // Unknown opcode: error frame, connection stays open.
    client
        .send_raw(&[FRAME_MAGIC, 0x7E, 0, 0, 0, 0])
        .expect("unknown opcode frame");
    match client.read_reply().expect("error frame") {
        BinReply::Err { message } => assert!(message.contains("unknown opcode"), "{message}"),
        other => panic!("unexpected reply {other:?}"),
    }
    assert!(matches!(
        client.ping().expect("still serving"),
        BinReply::Pong { .. }
    ));

    // A payload whose internal count exceeds the bytes behind it is
    // rejected before allocation.
    let mut lying = vec![FRAME_MAGIC, OP_MARGINAL];
    lying.extend_from_slice(&4u32.to_le_bytes());
    lying.extend_from_slice(&1_000_000u32.to_le_bytes());
    client.send_raw(&lying).expect("lying count frame");
    match client.read_reply().expect("error frame") {
        BinReply::Err { message } => {
            assert!(message.contains("exceeds the bytes remaining"), "{message}")
        }
        other => panic!("unexpected reply {other:?}"),
    }

    // A header length over the frame cap closes the connection after
    // the error frame (the declared payload will never be read).
    let mut oversized = vec![FRAME_MAGIC, OP_MARGINAL];
    oversized.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
    client.send_raw(&oversized).expect("oversized header");
    match client.read_reply().expect("error frame") {
        BinReply::Err { message } => assert!(message.contains("exceeds"), "{message}"),
        other => panic!("unexpected reply {other:?}"),
    }
    match client.read_reply() {
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "{e}"),
        Ok(other) => panic!("expected close, got {other:?}"),
    }
}
