//! Streaming-ingest serving tests:
//!
//! * **write-lock serialization** — `INGEST` and `REFRESH` land from
//!   two writer threads while N clients hammer `MARGINAL`; every
//!   reader reply must pair a generation with that generation's exact
//!   posterior (no torn generation counters), every ingest must splice
//!   exactly one row (strictly sequential `total=`), and every ingest
//!   must take the online fast path.
//! * **binary plane** — `OP_INGEST` over `FrameClient` returns the
//!   same summary fields as the text verb.
//! * **validation** — a bad span refuses the whole batch before
//!   anything grows.
//! * **backpressure** — a zero-capacity gate (drain mode) refuses both
//!   planes with a typed `backpressure` error and the connection
//!   survives.

mod common;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use common::Deadline;
use snorkel_context::Corpus;
use snorkel_core::optimizer::OptimizerConfig;
use snorkel_incr::{IncrementalSession, SessionConfig};
use snorkel_lf::{lf, BoxedLf};
use snorkel_nlp::tokenize;
use snorkel_serve::{BinReply, Client, FrameClient, LabelServer, ServeConfig};

fn build_corpus(n: usize) -> Corpus {
    let mut corpus = Corpus::new();
    let doc = corpus.add_document("d");
    for i in 0..n {
        let verb = if i % 3 == 0 { "causes" } else { "treats" };
        let text = format!("alpha{} {} beta{}", i % 7, verb, i % 5);
        let s = corpus.add_sentence(doc, &text, tokenize(&text));
        let a = corpus.add_span(s, 0, 1, Some("A"));
        let b = corpus.add_span(s, 2, 3, Some("B"));
        corpus.add_candidate(vec![a, b]);
    }
    corpus
}

/// Force the moment backend (the one with an online ingest path) at
/// test scale.
fn moment_config() -> SessionConfig {
    SessionConfig {
        optimizer: OptimizerConfig {
            skip_structure_search: true,
            moment_min_rows: 100,
            gamma: 0.0,
            ..OptimizerConfig::default()
        },
        ..SessionConfig::default()
    }
}

/// A deterministic full-coverage LF voting by text length.
fn mod_lf(name: &str, vote_mod: u64) -> BoxedLf {
    lf(name.to_string(), move |x| {
        let len = x.sentence().text().len() as u64;
        if len.is_multiple_of(vote_mod) {
            1
        } else {
            -1
        }
    })
}

fn moment_session(rows: usize) -> IncrementalSession {
    let mut session = IncrementalSession::over_all_candidates(build_corpus(rows), moment_config());
    for j in 0..4u64 {
        session.add_lf(mod_lf(&format!("lf_{j}"), 2 + j));
    }
    let (_, report) = session.refresh();
    assert_eq!(report.backend, "moment");
    session
}

fn field<'a>(response: &'a str, key: &str) -> &'a str {
    response
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= in {response:?}"))
}

#[test]
fn concurrent_ingest_and_refresh_serialize_without_torn_generations() {
    const READERS: usize = 4;
    const QUERIES_PER_READER: usize = 100;
    const INGESTS: usize = 20;
    const REFRESHES: usize = 6;

    let rows = 400;
    let server = LabelServer::start(moment_session(rows), ServeConfig::default()).expect("bind");
    let addr = server.addr();

    let mut control = Client::connect(addr).expect("connect");
    let sig = "MARGINAL 0:1,1:-1";
    let pre_gen: u64 = field(&control.request(sig).expect("pre"), "gen")
        .parse()
        .expect("number");

    // Readers hammer until both writers are done, then one final query
    // so the stream spans every write.
    let writers_done = Arc::new(AtomicUsize::new(0));
    let (reader_replies, ingest_replies) = std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..READERS {
            let writers_done = Arc::clone(&writers_done);
            readers.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut replies = Vec::with_capacity(QUERIES_PER_READER + 1);
                // Deadline-bounded, not a fixed sleep: the loop runs
                // exactly until both writers finish, and a wedged
                // writer fails loudly instead of hanging the test.
                let watchdog = Deadline::new(Duration::from_secs(120), "writers to finish");
                while replies.len() < QUERIES_PER_READER || writers_done.load(Ordering::SeqCst) < 2
                {
                    watchdog.check();
                    replies.push(client.request(sig).expect("marginal"));
                }
                replies.push(client.request(sig).expect("post-write marginal"));
                replies
            }));
        }
        let ingester = {
            let writers_done = Arc::clone(&writers_done);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let replies: Vec<String> = (0..INGESTS)
                    .map(|i| {
                        client
                            .request(&format!("INGEST 0 1 2 3 gamma{i} causes delta{i}"))
                            .expect("ingest")
                    })
                    .collect();
                writers_done.fetch_add(1, Ordering::SeqCst);
                replies
            })
        };
        let refresher = {
            let writers_done = Arc::clone(&writers_done);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for _ in 0..REFRESHES {
                    let reply = client.request("REFRESH").expect("refresh");
                    assert!(reply.starts_with("OK "), "{reply}");
                }
                writers_done.fetch_add(1, Ordering::SeqCst);
            })
        };
        refresher.join().expect("refresher thread");
        let ingest_replies = ingester.join().expect("ingester thread");
        let reader_replies: Vec<Vec<String>> = readers
            .into_iter()
            .map(|h| h.join().expect("reader thread"))
            .collect();
        (reader_replies, ingest_replies)
    });

    // Every ingest took the online fast path, spliced exactly one row
    // (strictly sequential totals prove the writes serialized with no
    // lost updates), and advanced the generation.
    let mut last_gen = pre_gen;
    for (i, reply) in ingest_replies.iter().enumerate() {
        assert!(reply.starts_with("OK "), "{reply}");
        assert_eq!(field(reply, "online"), "1", "{reply}");
        assert_eq!(field(reply, "rows"), "1", "{reply}");
        assert_eq!(
            field(reply, "total"),
            (rows + i + 1).to_string(),
            "ingest {i} must observe every prior splice"
        );
        let gen: u64 = field(reply, "gen").parse().expect("number");
        assert!(gen > last_gen, "ingest must advance the generation");
        last_gen = gen;
    }

    // No torn reads: a generation maps to exactly one posterior, and
    // the model visibly moved across the writes.
    let mut by_gen: std::collections::HashMap<u64, &str> = std::collections::HashMap::new();
    let mut total = 0usize;
    for reply in reader_replies.iter().flatten() {
        let gen: u64 = field(reply, "gen").parse().expect("number");
        let p = field(reply, "p");
        match by_gen.entry(gen) {
            std::collections::hash_map::Entry::Occupied(seen) => {
                assert_eq!(
                    *seen.get(),
                    p,
                    "torn read: generation {gen} served two different posteriors"
                );
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(p);
            }
        }
        total += 1;
    }
    assert!(total >= READERS * QUERIES_PER_READER);
    let distinct: std::collections::HashSet<&str> = by_gen.values().copied().collect();
    assert!(
        distinct.len() >= 2,
        "the ingested rows must move the posterior, or the check is vacuous"
    );

    // The binary plane shares the same core: one OP_INGEST frame.
    let mut bin = FrameClient::connect(addr).expect("connect");
    let reply = bin
        .ingest(&[((0, 1), (2, 3), "gamma99 causes delta99".to_string())])
        .expect("frame round trip");
    match reply {
        BinReply::Ingest {
            gen,
            rows: ingested,
            total,
            online,
            auto_refit,
            ..
        } => {
            assert!(gen > last_gen);
            assert_eq!((ingested, total), (1, (rows + INGESTS + 1) as u64));
            assert!(online && !auto_refit);
        }
        other => panic!("unexpected reply {other:?}"),
    }

    // A bad span refuses the whole batch before anything grows.
    let bad = control
        .request("INGEST 0 1 5 9 too few tokens")
        .expect("still connected");
    assert!(bad.starts_with("ERR span 5..9 invalid"), "{bad}");
    let stats = control.request("STATS").expect("stats");
    assert_eq!(field(&stats, "rows"), (rows + INGESTS + 1).to_string());
    assert_eq!(field(&stats, "backend"), "moment");
    assert_eq!(field(&stats, "ingest_queue"), "0/16");
    let drift: f64 = field(&stats, "drift_score").parse().expect("numeric score");
    assert!((0.0..=1.0).contains(&drift));

    server.shutdown().expect("clean shutdown");
}

#[test]
fn drain_mode_refuses_ingest_with_backpressure_on_both_planes() {
    let server = LabelServer::start(
        moment_session(200),
        ServeConfig {
            ingest_queue: 0,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let refused = client
        .request("INGEST 0 1 2 3 gamma0 causes delta0")
        .expect("still connected");
    assert!(refused.starts_with("ERR backpressure:"), "{refused}");

    let mut bin = FrameClient::connect(server.addr()).expect("connect");
    match bin
        .ingest(&[((0, 1), (2, 3), "gamma0 causes delta0".to_string())])
        .expect("frame round trip")
    {
        BinReply::Err { message } => {
            assert!(message.starts_with("backpressure:"), "{message}")
        }
        other => panic!("drain mode must refuse, got {other:?}"),
    }

    // Nothing was ingested, the gate advertises drain mode, and the
    // connection still serves.
    let stats = client.request("STATS").expect("stats");
    assert_eq!(field(&stats, "rows"), "200");
    assert_eq!(field(&stats, "ingest_queue"), "0/0");
    assert_eq!(client.request("PING").expect("ping"), "OK pong");

    server.shutdown().expect("clean shutdown");
}
