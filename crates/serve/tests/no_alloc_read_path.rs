//! The allocation budget for the batched read path, enforced: a
//! counting global allocator ([`snorkel_arena::CountingAlloc`])
//! observes the steady-state `OP_MARGINAL` and `OP_PREDICT` pipeline —
//! zero-copy decode into [`ReadScratch`], batch compute through the
//! [`SigMemo`], append-in-place reply encode — and asserts **zero heap
//! allocations per request** once the arenas are warm.
//!
//! Two caveats baked into the structure (see `docs/PERFORMANCE.md`):
//!
//! * The zero budget is asserted only in release builds — debug builds
//!   of generic std code may allocate where release builds provably do
//!   not — so CI runs this file with `--release`. A debug run still
//!   executes everything and reports the counts.
//! * The counter is process-global, so the measurement takes the
//!   minimum over several attempts (ambient test-harness threads can
//!   only inflate a sample, never deflate it).
//!
//! Alongside the budget, every test checks the replies themselves:
//! the arena path's bytes must equal the allocating reference path
//! ([`frame::encode_marginal_reply`] over per-row
//! [`LabelModel::posterior`] calls) bit for bit, and a property test
//! drives that equivalence across random batches, cold and warm memo
//! alike.

use std::sync::{Mutex, OnceLock};

use proptest::prelude::*;
use snorkel_arena::alloc_check::min_allocations_over;
use snorkel_context::{CandidateId, Corpus};
use snorkel_core::optimizer::ModelingStrategy;
use snorkel_incr::{IncrementalSession, SessionConfig};
use snorkel_nlp::tokenize;
use snorkel_serve::frame::{self, FRAME_HEADER_BYTES};
use snorkel_serve::hotpath::{self, ReadScratch, SigMemo};
use snorkel_serve::{LfSpec, VoteRow};

#[global_allocator]
static ALLOC: snorkel_arena::CountingAlloc = snorkel_arena::CountingAlloc::new();

/// The generation tag the "server" hands to the compute core. Constant
/// across requests, exactly like a server between refreshes.
const GEN: u64 = 1;

/// Attempts for the noise-robust minimum.
const ATTEMPTS: usize = 5;

fn build_corpus(n: usize) -> Corpus {
    let mut corpus = Corpus::new();
    let doc = corpus.add_document("d");
    for i in 0..n {
        let verb = match i % 5 {
            0 | 1 => "causes and induces",
            2 => "treats and cures",
            3 => "worsens",
            _ => "mentions",
        };
        let text = format!("alpha{} {verb} beta{}", i % 7, i % 5);
        let tokens = tokenize(&text);
        let last = tokens.len();
        let s = corpus.add_sentence(doc, &text, tokens);
        let a = corpus.add_span(s, 0, 1, Some("A"));
        let b = corpus.add_span(s, last - 1, last, Some("B"));
        corpus.add_candidate(vec![a, b]);
    }
    corpus
}

fn gm_config() -> SessionConfig {
    SessionConfig {
        force_strategy: Some(ModelingStrategy::GenerativeModel {
            epsilon: 0.0,
            correlations: Vec::new(),
            strengths: Vec::new(),
        }),
        ..SessionConfig::default()
    }
}

const SPECS: [&str; 4] = [
    "lf_causes KEYWORD 1 1 causes",
    "lf_induces KEYWORD 1 1 induces",
    "lf_treats KEYWORD -1 -1 treats",
    "lf_cures KEYWORD -1 -1 cures",
];

/// One refreshed + distilled session shared by every test (priming —
/// refresh plus disc training — dominates this binary's runtime, and
/// every test only reads).
fn shared_session() -> &'static IncrementalSession {
    static SESSION: OnceLock<IncrementalSession> = OnceLock::new();
    SESSION.get_or_init(|| {
        let corpus = build_corpus(200);
        let ids: Vec<CandidateId> = corpus.candidate_ids().collect();
        let config = SessionConfig {
            distill: Some(snorkel_core::pipeline::DiscTrainerConfig::with_dim(1 << 12)),
            ..gm_config()
        };
        let mut session = IncrementalSession::new(corpus, config);
        session.ingest_candidates(&ids);
        for spec in SPECS {
            let spec = LfSpec::parse(spec).expect("valid spec");
            session.add_lf_tagged(spec.build().expect("buildable"), spec.content_tag());
        }
        session.refresh();
        session.distill().expect("distills");
        session
    })
}

/// Assert the steady-state budget: 0 in release, report-only in debug.
fn assert_zero_budget(min_allocs: u64, what: &str) {
    if cfg!(debug_assertions) {
        eprintln!(
            "debug build: {what} steady state = {min_allocs} allocations \
             (zero budget enforced under --release)"
        );
    } else {
        assert_eq!(
            min_allocs, 0,
            "{what} allocated in every one of {ATTEMPTS} steady-state attempts"
        );
    }
}

#[test]
fn marginal_batch_steady_state_allocates_nothing_and_matches_owned_path() {
    let session = shared_session();
    // A batch mixing repeated and distinct signatures over the 4 LFs.
    let rows: Vec<VoteRow> = vec![
        (vec![0, 1], vec![1, 1]),
        (vec![2], vec![-1]),
        (vec![0, 2, 3], vec![1, -1, -1]),
        (vec![0, 1], vec![1, 1]),
        (vec![1, 3], vec![-1, 1]),
        (vec![3], vec![1]),
    ];
    let request = frame::encode_marginal(&rows);
    let payload = request[FRAME_HEADER_BYTES..].to_vec();

    let memo = Mutex::new(SigMemo::new());
    let mut scratch = ReadScratch::new();
    let mut out: Vec<u8> = Vec::new();
    let run = |scratch: &mut ReadScratch, out: &mut Vec<u8>| {
        out.clear();
        let n = hotpath::decode_marginal(&payload, scratch).expect("valid payload");
        let outcome = hotpath::compute_marginal(session, GEN, &memo, scratch).expect("valid batch");
        assert_eq!(outcome.rows, n);
        frame::encode_marginal_reply_flat_into(GEN, scratch.probs(), outcome.width, out);
    };

    // Warm-up request: arenas grow, the memo learns every signature.
    // This side is allowed to allocate.
    run(&mut scratch, &mut out);

    // The arena path's reply bytes equal the allocating reference:
    // per-row owned posteriors through the owned reply encoder.
    let model = session.model().expect("refreshed session has a model");
    let owned: Vec<Vec<f64>> = rows.iter().map(|(c, v)| model.posterior(c, v)).collect();
    assert_eq!(
        out,
        frame::encode_marginal_reply(GEN, &owned),
        "arena reply != owned-path reply"
    );

    let min_allocs = min_allocations_over(ATTEMPTS, || run(&mut scratch, &mut out));
    assert_zero_budget(min_allocs, "OP_MARGINAL batch path");

    // And the replies stayed byte-identical through the measured runs.
    assert_eq!(out, frame::encode_marginal_reply(GEN, &owned));
}

#[test]
fn predict_batch_steady_state_allocates_nothing_and_matches_owned_path() {
    let session = shared_session();
    let disc = session.disc().expect("distilled");
    let feature_rows: Vec<Vec<String>> = vec![
        vec!["alpha1".into(), "causes".into(), "beta2".into()],
        vec!["mentions".into()],
        vec![
            "gamma".into(),
            "treats".into(),
            "delta".into(),
            "cures".into(),
        ],
    ];
    let request = frame::encode_predict(&feature_rows);
    let payload = request[FRAME_HEADER_BYTES..].to_vec();

    let mut scratch = ReadScratch::new();
    let mut out: Vec<u8> = Vec::new();
    let run = |scratch: &mut ReadScratch, out: &mut Vec<u8>| {
        out.clear();
        let n = hotpath::decode_predict(&payload, scratch).expect("valid payload");
        let outcome = hotpath::compute_predict(session, &payload, scratch).expect("distilled");
        assert_eq!(outcome.rows, n);
        frame::encode_predict_reply_flat_into(
            GEN,
            outcome.disc_gen,
            scratch.probs(),
            outcome.width,
            out,
        );
    };

    run(&mut scratch, &mut out);

    // Reference: the owned hash → score → encode path.
    let owned: Vec<Vec<f64>> = feature_rows
        .iter()
        .map(|names| {
            let x = snorkel_disc::hash_features(names.iter().map(String::as_str), disc.model.dim());
            disc.model.predict_proba(&x)
        })
        .collect();
    assert_eq!(
        out,
        frame::encode_predict_reply(GEN, disc.generation, &owned),
        "arena reply != owned-path reply"
    );

    let min_allocs = min_allocations_over(ATTEMPTS, || run(&mut scratch, &mut out));
    assert_zero_budget(min_allocs, "OP_PREDICT batch path");

    assert_eq!(
        out,
        frame::encode_predict_reply(GEN, disc.generation, &owned)
    );
}

/// A random vote batch over the 4 primed LFs: strictly increasing
/// columns per row, non-abstain votes, 1–6 rows. Each row is drawn as
/// a dense length-4 pattern (0 = column absent) and compacted; an
/// all-absent draw keeps column 0 so every row is non-empty.
fn vote_batch() -> impl Strategy<Value = Vec<VoteRow>> {
    let row =
        prop::collection::vec(prop_oneof![Just(-1i8), Just(0i8), Just(1i8)], 4).prop_map(|dense| {
            let mut cols = Vec::new();
            let mut votes = Vec::new();
            for (c, &v) in dense.iter().enumerate() {
                if v != 0 {
                    cols.push(c as u32);
                    votes.push(v);
                }
            }
            if cols.is_empty() {
                cols.push(0);
                votes.push(1);
            }
            (cols, votes)
        });
    prop::collection::vec(row, 1..=6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Across random batches, the arena compute core produces marginals
    /// bit-identical to the pre-arena owned path — on a cold memo
    /// (every row computed) and again on a warm one (every row served
    /// from the memo), and the encoded reply bytes match the owned
    /// encoder both times.
    #[test]
    fn arena_marginals_are_bit_identical_to_the_owned_path(rows in vote_batch()) {
        let session = shared_session();
        let model = session.model().expect("refreshed session has a model");
        let request = frame::encode_marginal(&rows);
        let payload = &request[FRAME_HEADER_BYTES..];

        let memo = Mutex::new(SigMemo::new());
        let mut scratch = ReadScratch::new();
        let owned: Vec<Vec<f64>> =
            rows.iter().map(|(c, v)| model.posterior(c, v)).collect();
        let reference = frame::encode_marginal_reply(GEN, &owned);

        for pass in ["cold memo", "warm memo"] {
            hotpath::decode_marginal(payload, &mut scratch).expect("valid payload");
            let outcome = hotpath::compute_marginal(session, GEN, &memo, &mut scratch)
                .expect("valid batch");
            for (i, own) in owned.iter().enumerate() {
                let arena = &scratch.probs()[i * outcome.width..(i + 1) * outcome.width];
                for (a, o) in arena.iter().zip(own) {
                    prop_assert_eq!(
                        a.to_bits(), o.to_bits(),
                        "row {} differs on the {} pass", i, pass
                    );
                }
            }
            let mut out = Vec::new();
            frame::encode_marginal_reply_flat_into(GEN, scratch.probs(), outcome.width, &mut out);
            prop_assert_eq!(&out, &reference, "reply bytes differ on the {} pass", pass);
        }
    }
}
