//! Streaming and batch summary statistics.
//!
//! Used throughout the bench harness (reporting measured vs paper numbers)
//! and by the user-study simulation (score distributions). [`OnlineStats`]
//! is Welford's numerically stable single-pass mean/variance; [`Summary`]
//! is the batch convenience wrapper adding order statistics.

/// Welford's online mean/variance accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        OnlineStats::default()
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n−1 denominator); 0 when fewer than 2 points.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

/// Batch summary: mean, std, min, max, median, arbitrary quantiles.
#[derive(Clone, Debug)]
pub struct Summary {
    sorted: Vec<f64>,
    online: OnlineStats,
}

impl Summary {
    /// Summarize a slice (NaNs are rejected with a panic — upstream code
    /// must never produce NaN scores).
    pub fn of(values: &[f64]) -> Self {
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "Summary::of: NaN in input"
        );
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        let mut online = OnlineStats::new();
        for &v in values {
            online.push(v);
        }
        Summary { sorted, online }
    }

    /// Number of values.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Mean.
    pub fn mean(&self) -> f64 {
        self.online.mean()
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.online.std_dev()
    }

    /// Minimum (0 for empty).
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Maximum (0 for empty).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Linear-interpolation quantile, `q ∈ [0, 1]`; 0 for empty input.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }
}

/// Pearson correlation coefficient of two equal-length slices.
///
/// Returns 0 when either series has zero variance (the undefined case),
/// which is the conservative choice for "no linear relationship".
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
    for (&x, &y) in a.iter().zip(b) {
        let dx = x - ma;
        let dy = y - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // two-pass sample variance
        let var = xs.iter().map(|x| (x - 5.0) * (x - 5.0)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&OnlineStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));
    }

    #[test]
    fn summary_order_statistics() {
        let s = Summary::of(&[3.0, 1.0, 2.0, 5.0, 4.0]);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.median(), 3.0);
        assert!((s.quantile(0.25) - 2.0).abs() < 1e-12);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_safe() {
        let s = Summary::of(&[]);
        assert_eq!(s.count(), 0);
        assert_eq!(s.median(), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn summary_rejects_nan() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn pearson_perfect_and_degenerate() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [-1.0, -2.0, -3.0, -4.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        let flat = [5.0; 4];
        assert_eq!(pearson(&a, &flat), 0.0);
    }
}
