//! Row-major dense matrix.
//!
//! [`Mat`] provides exactly the kernels the discriminative MLP and the
//! generative-model diagnostics need: construction, row views, `matvec`,
//! transposed `matvec`, rank-1 updates, and elementwise maps. The layout
//! is a single contiguous `Vec<f64>` (`rows * cols`), so row views are
//! slices and iteration is cache-friendly.

use crate::math;

/// A row-major dense `f64` matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// An all-zeros `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major buffer.
    ///
    /// Panics unless `data.len() == rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Mat::from_vec: buffer length {} != {rows}x{cols}",
            data.len()
        );
        Mat { rows, cols, data }
    }

    /// Build row-by-row from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat buffer (for optimizer updates over all parameters).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `out ← self · x` where `x` has length `cols` and `out` length `rows`.
    pub fn matvec(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: x length mismatch");
        assert_eq!(out.len(), self.rows, "matvec: out length mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            *o = math::dot(self.row(r), x);
        }
    }

    /// `out ← selfᵀ · x` where `x` has length `rows` and `out` length `cols`.
    pub fn matvec_t(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "matvec_t: x length mismatch");
        assert_eq!(out.len(), self.cols, "matvec_t: out length mismatch");
        out.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            math::axpy(xr, self.row(r), out);
        }
    }

    /// Rank-1 update `self ← self + alpha · a bᵀ` (lengths `rows`/`cols`).
    pub fn rank1_update(&mut self, alpha: f64, a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), self.rows, "rank1_update: a length mismatch");
        assert_eq!(b.len(), self.cols, "rank1_update: b length mismatch");
        for (r, &ar) in a.iter().enumerate() {
            if ar == 0.0 {
                continue;
            }
            math::axpy(alpha * ar, b, self.row_mut(r));
        }
    }

    /// Apply `f` to each element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        math::norm2(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Mat {
        Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn shape_and_access() {
        let m = sample();
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_fn_layout() {
        let m = Mat::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn matvec_correct() {
        let m = sample();
        let mut out = vec![0.0; 2];
        m.matvec(&[1.0, 0.0, -1.0], &mut out);
        assert_eq!(out, vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_correct() {
        let m = sample();
        let mut out = vec![0.0; 3];
        m.matvec_t(&[1.0, -1.0], &mut out);
        assert_eq!(out, vec![-3.0, -3.0, -3.0]);
    }

    #[test]
    fn matvec_agrees_with_matvec_t_via_transpose_identity() {
        // xᵀ (A y) == (Aᵀ x)ᵀ y
        let m = sample();
        let x = [0.5, -2.0];
        let y = [1.0, 2.0, 3.0];
        let mut ay = vec![0.0; 2];
        m.matvec(&y, &mut ay);
        let lhs = math::dot(&x, &ay);
        let mut atx = vec![0.0; 3];
        m.matvec_t(&x, &mut atx);
        let rhs = math::dot(&atx, &y);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn rank1_update_correct() {
        let mut m = Mat::zeros(2, 2);
        m.rank1_update(2.0, &[1.0, 3.0], &[5.0, 7.0]);
        assert_eq!(m.as_slice(), &[10.0, 14.0, 30.0, 42.0]);
    }

    #[test]
    fn map_and_norm() {
        let mut m = Mat::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        m.map_in_place(|v| v * v);
        assert_eq!(m.as_slice(), &[9.0, 16.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_bad_shape_panics() {
        let _ = Mat::from_vec(2, 2, vec![1.0; 3]);
    }
}
