//! Numerically stable scalar transforms.
//!
//! These are the hot scalar kernels of both the generative label model
//! (posterior marginals are sigmoids/softmaxes of factor scores) and the
//! discriminative models (logistic / multinomial losses). All of them are
//! written to avoid overflow for large |x| and to return exact limits at
//! the extremes.

/// Numerically stable logistic sigmoid `1 / (1 + e^{-x})`.
///
/// Uses the two-branch formulation so the exponential argument is always
/// non-positive, avoiding overflow for any finite `x`.
///
/// ```
/// use snorkel_linalg::math::sigmoid;
/// assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
/// assert!(sigmoid(800.0) > 0.999_999);
/// assert!(sigmoid(-800.0) < 1e-6);
/// ```
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Stable `ln(1 + e^x)` (the "softplus" function).
///
/// For large positive `x` this is `x + e^{-x} ≈ x`; for very negative `x`
/// it is `e^x`. The naive form overflows past `x ≈ 709`.
#[inline]
pub fn log1pexp(x: f64) -> f64 {
    if x > 33.0 {
        // e^{-x} < 5e-15: addition is a no-op at f64 precision past ~36,
        // but keep the correction term while it still matters.
        x + (-x).exp()
    } else if x > -37.0 {
        x.exp().ln_1p()
    } else {
        x.exp()
    }
}

/// Stable log-sum-exp: `ln Σ_i e^{x_i}`.
///
/// Returns negative infinity for an empty slice (the sum of zero terms).
/// Shifts by the maximum so no term overflows.
///
/// ```
/// use snorkel_linalg::math::logsumexp;
/// let v = [1000.0, 1000.0];
/// assert!((logsumexp(&v) - (1000.0 + 2f64.ln())).abs() < 1e-9);
/// ```
pub fn logsumexp(xs: &[f64]) -> f64 {
    let mut max = f64::NEG_INFINITY;
    for &x in xs {
        if x > max {
            max = x;
        }
    }
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let mut sum = 0.0;
    for &x in xs {
        sum += (x - max).exp();
    }
    max + sum.ln()
}

/// In-place softmax: replaces `xs` with `e^{x_i} / Σ_j e^{x_j}`.
///
/// Stable under large scores; on an empty slice this is a no-op. If every
/// entry is `-inf` the result is a uniform distribution, which is the
/// sensible posterior for "no evidence at all".
pub fn softmax_in_place(xs: &mut [f64]) {
    if xs.is_empty() {
        return;
    }
    let lse = logsumexp(xs);
    if lse == f64::NEG_INFINITY {
        let u = 1.0 / xs.len() as f64;
        for x in xs.iter_mut() {
            *x = u;
        }
        return;
    }
    for x in xs.iter_mut() {
        *x = (*x - lse).exp();
    }
}

/// Logit (inverse sigmoid), clamped away from 0 and 1 so the result stays
/// finite. Used to convert accuracy estimates into log-odds weights
/// (appendix A.1 of the paper: `w_j = ½ log(α_j / (1−α_j))` uses this).
#[inline]
pub fn logit(p: f64) -> f64 {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    (p / (1.0 - p)).ln()
}

/// Clamp a probability into the open interval `(eps, 1-eps)`; guards log
/// losses against `ln 0`.
#[inline]
pub fn clamp_prob(p: f64, eps: f64) -> f64 {
    p.clamp(eps, 1.0 - eps)
}

/// Dot product of two equal-length slices.
///
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b) {
        s += x * y;
    }
    s
}

/// `y ← y + alpha * x` over equal-length slices.
///
/// Panics if lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scale a slice in place: `x ← alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry() {
        for &x in &[-5.0, -1.0, -0.3, 0.0, 0.3, 1.0, 5.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sigmoid_extremes_do_not_overflow() {
        assert_eq!(sigmoid(1e6), 1.0);
        assert_eq!(sigmoid(-1e6), 0.0);
        assert!(sigmoid(f64::MAX).is_finite());
    }

    #[test]
    fn log1pexp_matches_naive_in_safe_range() {
        for i in -200..=200 {
            let x = i as f64 / 10.0;
            let naive = (1.0 + x.exp()).ln();
            assert!(
                (log1pexp(x) - naive).abs() < 1e-10,
                "x={x}: {} vs {}",
                log1pexp(x),
                naive
            );
        }
    }

    #[test]
    fn log1pexp_large_x_is_x() {
        assert!((log1pexp(1000.0) - 1000.0).abs() < 1e-9);
        assert!(log1pexp(-1000.0).abs() < 1e-300);
    }

    #[test]
    fn logsumexp_empty_is_neg_inf() {
        assert_eq!(logsumexp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn logsumexp_single() {
        assert!((logsumexp(&[3.5]) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn logsumexp_handles_neg_inf_entries() {
        let v = [f64::NEG_INFINITY, 0.0];
        assert!((logsumexp(&v) - 0.0).abs() < 1e-12);
        let w = [f64::NEG_INFINITY, f64::NEG_INFINITY];
        assert_eq!(logsumexp(&w), f64::NEG_INFINITY);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut v = [1.0, 2.0, 3.0, -1e3, 1e3];
        softmax_in_place(&mut v);
        let s: f64 = v.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(v.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn softmax_all_neg_inf_is_uniform() {
        let mut v = [f64::NEG_INFINITY; 4];
        softmax_in_place(&mut v);
        for &p in &v {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn logit_inverts_sigmoid() {
        for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
            assert!((sigmoid(logit(p)) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn dot_axpy_scale_norm() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
        scale(0.5, &mut y);
        assert_eq!(y, [1.5, 2.5, 3.5]);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
