//! # snorkel-linalg
//!
//! Minimal, dependency-free dense/sparse linear algebra and numerics for
//! the `snorkel-rs` workspace.
//!
//! The original Snorkel system leaned on NumPy/SciPy for its numeric
//! kernels. This crate is the Rust substitute: a row-major dense matrix,
//! a sorted-index sparse vector, numerically stable scalar transforms
//! (sigmoid / log-sum-exp / softmax), and streaming summary statistics.
//! Everything is `f64`; all routines are allocation-conscious (callers can
//! reuse buffers) and panic on dimension mismatches, which are programmer
//! errors rather than data errors in this workspace.
//!
//! ## Modules
//!
//! * [`math`] — stable scalar transforms used by the generative and
//!   discriminative models.
//! * [`dense`] — row-major [`dense::Mat`] with the small set of BLAS-like
//!   kernels the models need (`matvec`, `matvec_t`, row views, axpy).
//! * [`sparse`] — [`sparse::SparseVec`], the hashed-feature representation
//!   used by the discriminative text models.
//! * [`soa`] — structure-of-arrays batch kernels for the serving read
//!   path: chunked log-sum-exp and row-wise softmax over one flat
//!   `rows × width` buffer, bit-identical to the scalar kernels in
//!   [`math`].
//! * [`stats`] — streaming mean/variance (Welford), quantiles, Pearson
//!   correlation, and a [`stats::Summary`] convenience for bench output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod math;
pub mod soa;
pub mod sparse;
pub mod stats;

pub use dense::Mat;
pub use math::{log1pexp, logsumexp, sigmoid, softmax_in_place};
pub use soa::{logsumexp_chunked, softmax_rows_in_place};
pub use sparse::SparseVec;
pub use stats::{OnlineStats, Summary};
