//! Structure-of-arrays posterior kernels.
//!
//! The serving read path stores a batch of posterior rows as **one**
//! flat `f64` buffer of `rows × width` (every posterior over the same
//! label scheme has the same width — the class count), not as
//! `Vec<Vec<f64>>`. That layout needs zero per-row allocations, keeps
//! each row's values contiguous, and lets the exp / normalize loops
//! below run over long flat slices the auto-vectorizer can chunk.
//!
//! Bit-compatibility is a hard contract here: the serving layer
//! promises marginals bit-identical across the text plane, the binary
//! plane, and the pre-arena row-at-a-time path. Every routine in this
//! module therefore performs **exactly the float-op sequence** of its
//! scalar counterpart in [`crate::math`] (same reduction order, same
//! shift, same division) — only the memory layout and loop structure
//! differ. The max reduction is additionally chunked into independent
//! lanes, which is safe because `max` is associative and commutative
//! over the non-NaN scores these paths produce.

/// Number of independent accumulator lanes in the chunked max
/// reduction — wide enough to keep a SIMD unit busy, small enough that
/// the scalar tail never dominates.
const LANES: usize = 4;

/// Chunked maximum of a slice, `NEG_INFINITY` when empty.
///
/// Runs `LANES` (4) independent accumulators over the body and folds the
/// remainder sequentially. Bit-identical to the sequential scan in
/// [`logsumexp`](crate::math::logsumexp) for inputs without NaNs
/// (`max` is order-independent), while exposing independent dependency
/// chains to the vectorizer.
pub fn max_chunked(xs: &[f64]) -> f64 {
    let mut lanes = [f64::NEG_INFINITY; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (lane, &x) in lanes.iter_mut().zip(chunk) {
            if x > *lane {
                *lane = x;
            }
        }
    }
    let mut max = f64::NEG_INFINITY;
    for &lane in &lanes {
        if lane > max {
            max = lane;
        }
    }
    for &x in chunks.remainder() {
        if x > max {
            max = x;
        }
    }
    max
}

/// Chunked log-sum-exp: `ln Σ_i e^{x_i}`, `NEG_INFINITY` when empty.
///
/// The max shift uses [`max_chunked`]; the sum runs in index order —
/// the same order as [`logsumexp`](crate::math::logsumexp) — so the
/// result is bit-identical to the scalar routine while the `exp` loop
/// stays free of cross-iteration dependencies.
pub fn logsumexp_chunked(xs: &[f64]) -> f64 {
    let max = max_chunked(xs);
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let mut sum = 0.0;
    for &x in xs {
        sum += (x - max).exp();
    }
    max + sum.ln()
}

/// In-place softmax over every `width`-wide row of a flat
/// structure-of-arrays buffer.
///
/// Each row is normalized by exactly the float-op sequence of
/// [`softmax_in_place`](crate::math::softmax_in_place), so a flat
/// batch posterior is bit-identical to `rows` independent scalar
/// softmax calls. `width == 0` requires an empty buffer (no rows to
/// normalize); otherwise `flat.len()` must be a multiple of `width`.
pub fn softmax_rows_in_place(flat: &mut [f64], width: usize) {
    if width == 0 {
        assert!(flat.is_empty(), "zero-width rows over a non-empty buffer");
        return;
    }
    assert_eq!(
        flat.len() % width,
        0,
        "flat buffer of {} is not a whole number of {width}-wide rows",
        flat.len()
    );
    for row in flat.chunks_exact_mut(width) {
        // Same shape as math::softmax_in_place, with the chunked-max
        // LSE; identical op order per element.
        let lse = logsumexp_chunked(row);
        if lse == f64::NEG_INFINITY {
            let u = 1.0 / width as f64;
            for x in row.iter_mut() {
                *x = u;
            }
            continue;
        }
        for x in row.iter_mut() {
            *x = (*x - lse).exp();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::{logsumexp, softmax_in_place};

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn chunked_lse_is_bit_identical_to_scalar() {
        let cases: Vec<Vec<f64>> = vec![
            vec![],
            vec![0.3],
            vec![1.0, 2.0, 3.0],
            vec![-1000.0, 1000.0, 3.5, -2.25, 0.0, 7.125, -0.5],
            (0..33).map(|i| (i as f64) * 0.37 - 6.0).collect(),
            vec![f64::NEG_INFINITY; 5],
        ];
        for xs in cases {
            assert_eq!(
                logsumexp_chunked(&xs).to_bits(),
                logsumexp(&xs).to_bits(),
                "case {xs:?}"
            );
        }
    }

    #[test]
    fn soa_softmax_matches_per_row_scalar_softmax_bitwise() {
        let width = 3;
        let mut flat: Vec<f64> = (0..12).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let mut reference = flat.clone();
        softmax_rows_in_place(&mut flat, width);
        for row in reference.chunks_exact_mut(width) {
            softmax_in_place(row);
        }
        assert_eq!(bits(&flat), bits(&reference));
    }

    #[test]
    fn all_neg_inf_row_goes_uniform() {
        let mut flat = vec![f64::NEG_INFINITY; 4];
        softmax_rows_in_place(&mut flat, 2);
        assert_eq!(flat, vec![0.5; 4]);
    }

    #[test]
    fn empty_buffer_is_fine_at_any_width() {
        softmax_rows_in_place(&mut [], 0);
        softmax_rows_in_place(&mut [], 3);
    }
}
