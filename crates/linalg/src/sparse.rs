//! Sorted-index sparse vectors.
//!
//! [`SparseVec`] is the feature representation for the hashed-n-gram text
//! models: indices are `u32` (feature-hash buckets), values `f64`. The
//! invariant is *strictly increasing indices* — construction from
//! arbitrary `(index, value)` pairs sorts and merges duplicates by
//! summation (the natural semantics for bag-of-features counts).

/// A sparse `f64` vector with strictly increasing `u32` indices.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SparseVec {
    idx: Vec<u32>,
    val: Vec<f64>,
}

impl SparseVec {
    /// The empty sparse vector.
    pub fn new() -> Self {
        SparseVec::default()
    }

    /// Build from unsorted `(index, value)` pairs; duplicate indices are
    /// merged by summing their values, and exact zeros are dropped.
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut idx = Vec::with_capacity(pairs.len());
        let mut val: Vec<f64> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if let Some(&last) = idx.last() {
                if last == i {
                    *val.last_mut().expect("val tracks idx") += v;
                    continue;
                }
            }
            idx.push(i);
            val.push(v);
        }
        // Drop entries that merged to exactly zero.
        let mut out_idx = Vec::with_capacity(idx.len());
        let mut out_val = Vec::with_capacity(val.len());
        for (i, v) in idx.into_iter().zip(val) {
            if v != 0.0 {
                out_idx.push(i);
                out_val.push(v);
            }
        }
        SparseVec {
            idx: out_idx,
            val: out_val,
        }
    }

    /// [`Self::from_pairs`] into `self`, reusing both internal buffers:
    /// the reset-and-reuse form for hot paths that hash features per
    /// request. `pairs` is the caller's scratch (sorted in place); after
    /// the warm-up request neither side touches the allocator.
    ///
    /// The result is identical to `from_pairs` on the same pairs — same
    /// sort, same duplicate-merge order (so the same bits when values
    /// are summed), same exact-zero drop.
    pub fn assign_from_pairs(&mut self, pairs: &mut [(u32, f64)]) {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        self.idx.clear();
        self.val.clear();
        for &(i, v) in pairs.iter() {
            if let Some(&last) = self.idx.last() {
                if last == i {
                    *self.val.last_mut().expect("val tracks idx") += v;
                    continue;
                }
            }
            self.idx.push(i);
            self.val.push(v);
        }
        // Compact away entries that merged to exactly zero.
        let mut w = 0usize;
        for r in 0..self.idx.len() {
            if self.val[r] != 0.0 {
                self.idx[w] = self.idx[r];
                self.val[w] = self.val[r];
                w += 1;
            }
        }
        self.idx.truncate(w);
        self.val.truncate(w);
    }

    /// Number of stored (non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Heap footprint of the index/value buffers (capacity, not
    /// length). Capacity is monotone under the reuse methods
    /// ([`Self::assign_from_pairs`]), so for a scratch vector this is
    /// its high-water mark — what the serving layer's scratch-bytes
    /// gauges report.
    #[inline]
    pub fn capacity_bytes(&self) -> usize {
        self.idx.capacity() * std::mem::size_of::<u32>()
            + self.val.capacity() * std::mem::size_of::<f64>()
    }

    /// True if no entries are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Iterate `(index, value)` pairs in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.idx.iter().copied().zip(self.val.iter().copied())
    }

    /// The stored indices (strictly increasing).
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.idx
    }

    /// The stored values, parallel to [`Self::indices`].
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.val
    }

    /// Dot product against a dense weight slice.
    ///
    /// Panics if any stored index is out of bounds for `dense` — feature
    /// vectors must be hashed into the model's bucket count.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        let mut s = 0.0;
        for (i, v) in self.iter() {
            s += dense[i as usize] * v;
        }
        s
    }

    /// `dense ← dense + alpha * self` (scatter-add).
    pub fn axpy_into_dense(&self, alpha: f64, dense: &mut [f64]) {
        for (i, v) in self.iter() {
            dense[i as usize] += alpha * v;
        }
    }

    /// Squared Euclidean norm of the stored values.
    pub fn norm2_sq(&self) -> f64 {
        self.val.iter().map(|v| v * v).sum()
    }

    /// Scale all stored values in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.val {
            *v *= alpha;
        }
    }

    /// L2-normalize in place; a zero vector is left unchanged.
    pub fn l2_normalize(&mut self) {
        let n = self.norm2_sq().sqrt();
        if n > 0.0 {
            self.scale(1.0 / n);
        }
    }

    /// Sparse-sparse dot product (two-pointer merge).
    pub fn dot_sparse(&self, other: &SparseVec) -> f64 {
        let (mut a, mut b, mut s) = (0usize, 0usize, 0.0);
        while a < self.idx.len() && b < other.idx.len() {
            match self.idx[a].cmp(&other.idx[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    s += self.val[a] * other.val[b];
                    a += 1;
                    b += 1;
                }
            }
        }
        s
    }

    /// Largest stored index plus one, or 0 for an empty vector.
    pub fn dim_lower_bound(&self) -> u32 {
        self.idx.last().map_or(0, |&i| i + 1)
    }
}

impl FromIterator<(u32, f64)> for SparseVec {
    fn from_iter<T: IntoIterator<Item = (u32, f64)>>(iter: T) -> Self {
        SparseVec::from_pairs(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_merges() {
        let v = SparseVec::from_pairs(vec![(5, 1.0), (2, 2.0), (5, 3.0), (9, 0.5)]);
        assert_eq!(v.indices(), &[2, 5, 9]);
        assert_eq!(v.values(), &[2.0, 4.0, 0.5]);
    }

    #[test]
    fn merged_zeros_are_dropped() {
        let v = SparseVec::from_pairs(vec![(1, 1.0), (1, -1.0), (2, 3.0)]);
        assert_eq!(v.indices(), &[2]);
        assert_eq!(v.nnz(), 1);
    }

    #[test]
    fn assign_from_pairs_matches_from_pairs_and_reuses_buffers() {
        let pairs = vec![(5, 1.0), (2, 2.0), (5, 3.0), (9, 0.5), (7, 1.0), (7, -1.0)];
        let reference = SparseVec::from_pairs(pairs.clone());
        let mut v = SparseVec::new();
        let mut scratch = pairs;
        v.assign_from_pairs(&mut scratch);
        assert_eq!(v, reference);
        // Refill with a smaller vector: same result as a fresh build.
        let mut scratch2 = vec![(3, 1.5), (1, 0.25)];
        v.assign_from_pairs(&mut scratch2);
        assert_eq!(v, SparseVec::from_pairs(vec![(3, 1.5), (1, 0.25)]));
    }

    #[test]
    fn dot_dense_and_axpy() {
        let v = SparseVec::from_pairs(vec![(0, 2.0), (3, -1.0)]);
        let w = [1.0, 10.0, 10.0, 4.0];
        assert_eq!(v.dot_dense(&w), -2.0);
        let mut acc = vec![0.0; 4];
        v.axpy_into_dense(0.5, &mut acc);
        assert_eq!(acc, vec![1.0, 0.0, 0.0, -0.5]);
    }

    #[test]
    fn dot_sparse_merge() {
        let a = SparseVec::from_pairs(vec![(1, 2.0), (3, 1.0), (7, 4.0)]);
        let b = SparseVec::from_pairs(vec![(3, 5.0), (7, 0.25), (8, 9.0)]);
        assert_eq!(a.dot_sparse(&b), 5.0 + 1.0);
        assert_eq!(b.dot_sparse(&a), a.dot_sparse(&b));
    }

    #[test]
    fn normalize() {
        let mut v = SparseVec::from_pairs(vec![(0, 3.0), (1, 4.0)]);
        v.l2_normalize();
        assert!((v.norm2_sq() - 1.0).abs() < 1e-12);
        let mut z = SparseVec::new();
        z.l2_normalize(); // must not panic or produce NaN
        assert!(z.is_empty());
    }

    #[test]
    fn dim_lower_bound() {
        assert_eq!(SparseVec::new().dim_lower_bound(), 0);
        let v = SparseVec::from_pairs(vec![(41, 1.0)]);
        assert_eq!(v.dim_lower_bound(), 42);
    }
}
