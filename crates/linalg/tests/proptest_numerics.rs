//! Property tests for the numerics substrate.

use proptest::prelude::*;
use snorkel_linalg::math::{self, log1pexp, logsumexp, sigmoid, softmax_in_place};
use snorkel_linalg::{Mat, OnlineStats, SparseVec, Summary};

proptest! {
    #[test]
    fn sigmoid_is_monotone_and_bounded(a in -700f64..700.0, b in -700f64..700.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(sigmoid(lo) <= sigmoid(hi));
        prop_assert!((0.0..=1.0).contains(&sigmoid(a)));
        prop_assert!((sigmoid(a) + sigmoid(-a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn log1pexp_matches_softplus_identity(x in -80f64..80.0) {
        // softplus(x) − softplus(−x) == x
        prop_assert!((log1pexp(x) - log1pexp(-x) - x).abs() < 1e-8);
    }

    #[test]
    fn logsumexp_shift_invariance(
        xs in prop::collection::vec(-50f64..50.0, 1..10),
        c in -100f64..100.0,
    ) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
        prop_assert!((logsumexp(&shifted) - logsumexp(&xs) - c).abs() < 1e-8);
        // And it upper-bounds the max.
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(logsumexp(&xs) >= max - 1e-12);
        prop_assert!(logsumexp(&xs) <= max + (xs.len() as f64).ln() + 1e-12);
    }

    #[test]
    fn softmax_is_shift_invariant_distribution(
        xs in prop::collection::vec(-60f64..60.0, 1..8),
        c in -50f64..50.0,
    ) {
        let mut a = xs.clone();
        softmax_in_place(&mut a);
        let mut b: Vec<f64> = xs.iter().map(|x| x + c).collect();
        softmax_in_place(&mut b);
        prop_assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn sparse_dot_is_commutative_and_cauchy_schwarz(
        pa in prop::collection::vec((0u32..64, -5f64..5.0), 0..16),
        pb in prop::collection::vec((0u32..64, -5f64..5.0), 0..16),
    ) {
        let a = SparseVec::from_pairs(pa);
        let b = SparseVec::from_pairs(pb);
        prop_assert!((a.dot_sparse(&b) - b.dot_sparse(&a)).abs() < 1e-9);
        let cs = a.norm2_sq().sqrt() * b.norm2_sq().sqrt();
        prop_assert!(a.dot_sparse(&b).abs() <= cs + 1e-9);
    }

    #[test]
    fn sparse_dense_dot_agrees_with_dense_dense(
        pairs in prop::collection::vec((0u32..32, -5f64..5.0), 0..12),
        dense in prop::collection::vec(-5f64..5.0, 32),
    ) {
        let v = SparseVec::from_pairs(pairs);
        let mut as_dense = vec![0.0; 32];
        for (i, x) in v.iter() {
            as_dense[i as usize] = x;
        }
        let expected = math::dot(&as_dense, &dense);
        prop_assert!((v.dot_dense(&dense) - expected).abs() < 1e-9);
    }

    #[test]
    fn matvec_linearity(
        data in prop::collection::vec(-3f64..3.0, 6),
        x in prop::collection::vec(-3f64..3.0, 3),
        y in prop::collection::vec(-3f64..3.0, 3),
        alpha in -2f64..2.0,
    ) {
        // A(αx + y) == αAx + Ay
        let m = Mat::from_vec(2, 3, data);
        let combo: Vec<f64> = x.iter().zip(&y).map(|(a, b)| alpha * a + b).collect();
        let mut lhs = vec![0.0; 2];
        m.matvec(&combo, &mut lhs);
        let mut ax = vec![0.0; 2];
        let mut ay = vec![0.0; 2];
        m.matvec(&x, &mut ax);
        m.matvec(&y, &mut ay);
        for i in 0..2 {
            prop_assert!((lhs[i] - (alpha * ax[i] + ay[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn online_stats_match_summary(values in prop::collection::vec(-100f64..100.0, 1..40)) {
        let mut online = OnlineStats::new();
        for &v in &values {
            online.push(v);
        }
        let summary = Summary::of(&values);
        prop_assert!((online.mean() - summary.mean()).abs() < 1e-9);
        prop_assert!((online.std_dev() - summary.std_dev()).abs() < 1e-9);
        prop_assert!(summary.min() <= summary.median() && summary.median() <= summary.max());
    }
}
