//! # snorkel-obs
//!
//! Zero-dependency observability for the snorkel-rs serving stack:
//! lock-free atomic [`Counter`]s and [`Gauge`]s, fixed-bucket log-scale
//! latency [`Histogram`]s with p50/p95/p99/max extraction, a
//! process-global [`Registry`] of namespaced metric handles, a
//! lightweight RAII [`Span`] timer API feeding histograms and an
//! optional ring-buffer trace log ([`TraceRing`]), and Prometheus
//! text-format exposition ([`Registry::expose`]).
//!
//! The crate is deliberately dependency-free (offline builds are a hard
//! constraint of this workspace) and allocation-free on the record path:
//! once a handle is resolved, [`Counter::inc`], [`Gauge::set`],
//! [`Histogram::record`], and [`TraceRing::record`] perform no heap
//! allocation — asserted by this crate's `no_alloc` test and the
//! `obs_overhead` microbench in `crates/bench`.
//!
//! ## Handles and the hot path
//!
//! Metrics are created (or found) by name + label set through a
//! [`Registry`]; the returned handle is an `Arc` that callers keep and
//! hit directly, so the registry lock is only ever taken at
//! registration and exposition time:
//!
//! ```
//! use snorkel_obs::Registry;
//!
//! let registry = Registry::new();
//! let requests = registry.counter("myapp_requests_total", &[("verb", "GET")]);
//! let latency = registry.histogram("myapp_request_seconds", &[("verb", "GET")]);
//! requests.inc();
//! latency.record_ns(1_250);
//! let text = registry.expose();
//! assert!(text.contains("myapp_requests_total{verb=\"GET\"} 1"));
//! ```
//!
//! Library crates record into [`global`] so one `METRICS` scrape covers
//! every layer; tests that need exact totals construct their own
//! [`Registry`].
//!
//! ## Spans and tracing
//!
//! [`span()`] (or the [`span!`] macro) times a scope into a
//! `snorkel_span_seconds{span="<name>"}` histogram of the global
//! registry and, when tracing is enabled, logs the completed span into
//! the global [`TraceRing`] — the buffer behind the serving layer's
//! `SLOWLOG` verb. The `SNORKEL_OBS_TRACE` environment variable filters
//! what is traced: `off`, `info` (default), or `debug`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod registry;
mod span;
mod text;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKET_COUNT};
pub use registry::{Registry, Series};
pub use span::{span, span_at, trace_level, Span, TraceEntry, TraceLevel, TraceRing};
pub use text::{validate_exposition, ExpositionSummary};

use std::sync::OnceLock;

/// The process-global registry every instrumented crate records into —
/// what the serving layer's `METRICS` verb exposes.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Times a scope into a named histogram of the global registry.
///
/// `span!("refresh.fit")` is shorthand for
/// [`span("refresh.fit")`](span()); the returned guard records its
/// elapsed time on drop (or on an explicit
/// [`finish`](crate::Span::finish), which also hands the duration
/// back).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $level:expr) => {
        $crate::span_at($name, $level)
    };
}
