//! The three metric primitives: counters, gauges, and log-scale
//! histograms. All operations are single atomic instructions with
//! `Relaxed` ordering — metrics are monotone statistics, not
//! synchronization edges — and none of them allocates.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (sizes, generations, lags).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the value absolutely.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets (31 finite log-scale buckets plus one
/// overflow bucket).
pub const BUCKET_COUNT: usize = 32;

/// Upper bound (inclusive) of the first bucket, in recorded units.
/// Buckets double from there: bucket `i` covers values ≤ `128 << i`,
/// and the last bucket is `+Inf`. With nanosecond recordings the finite
/// range spans 128 ns .. ~137 s — wider than any request or refresh
/// stage this workspace serves.
const FIRST_BUCKET_BOUND: u64 = 128;

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the overflow
/// bucket).
fn bucket_bound(i: usize) -> u64 {
    if i >= BUCKET_COUNT - 1 {
        u64::MAX
    } else {
        FIRST_BUCKET_BOUND << i
    }
}

/// Index of the bucket a value lands in.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v <= FIRST_BUCKET_BOUND {
        return 0;
    }
    // Smallest i with 128 << i ≥ v, clamped into the overflow bucket.
    let idx = (u64::BITS - (v - 1).leading_zeros()) as usize - 7;
    idx.min(BUCKET_COUNT - 1)
}

/// A fixed-bucket log-scale histogram. By convention this workspace
/// records **nanoseconds** and exposes seconds; the math is
/// unit-agnostic.
///
/// The bucket layout is fixed at compile time so recording is a single
/// `fetch_add` with no allocation, and exposition needs no
/// configuration handshake.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one value (nanoseconds by convention).
    #[inline]
    pub fn record_ns(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        // In steady state most values don't beat the max; a relaxed load
        // plus branch skips the CAS loop `fetch_max` compiles to. Racing
        // writers both run `fetch_max`, so the final max is still exact.
        if v > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Record one duration.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy of the bucket counts. The copy is taken
    /// bucket by bucket, so a concurrent recording may or may not be
    /// included — but cumulative bucket counts derived from one
    /// snapshot are always internally consistent (monotone in `le`),
    /// which is the property exposition needs.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`Histogram`]'s state, for quantile extraction
/// and exposition.
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts.
    pub buckets: [u64; BUCKET_COUNT],
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Total recordings (the sum of the bucket counts).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn bucket_bound(i: usize) -> u64 {
        bucket_bound(i)
    }

    /// The smallest bucket upper bound covering quantile `q` of the
    /// recordings (0 when empty). Resolution is one log₂ bucket — good
    /// enough to tell 1 µs from 1 ms, which is what the tail-latency
    /// dashboards need.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The overflow bucket has no finite bound; report the
                // observed max instead.
                return if i == BUCKET_COUNT - 1 {
                    self.max
                } else {
                    bucket_bound(i)
                };
            }
        }
        self.max
    }

    /// Median (see [`Self::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (see [`Self::quantile`]).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (see [`Self::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(128), 0);
        assert_eq!(bucket_index(129), 1);
        assert_eq!(bucket_index(256), 1);
        assert_eq!(bucket_index(257), 2);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        // Every value lands in the bucket whose bound covers it.
        for v in [5, 127, 128, 129, 1000, 1 << 20, (1 << 36) + 1] {
            let i = bucket_index(v);
            assert!(v <= bucket_bound(i), "v={v} bucket {i}");
            if i > 0 {
                assert!(v > bucket_bound(i - 1), "v={v} bucket {i} too high");
            }
        }
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().p50(), 0, "empty histogram");
        // 90 fast recordings, 10 slow ones.
        for _ in 0..90 {
            h.record_ns(100); // bucket 0 (≤128)
        }
        for _ in 0..10 {
            h.record_ns(1_000_000); // ~1ms
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.p50(), 128);
        assert!(s.p95() >= 1_000_000 / 2, "p95 is in the slow bucket");
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.sum, 90 * 100 + 10 * 1_000_000);
    }

    #[test]
    fn histogram_overflow_bucket_reports_max() {
        let h = Histogram::new();
        h.record_ns(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.p99(), u64::MAX);
    }

    #[test]
    fn record_duration() {
        let h = Histogram::new();
        h.record(Duration::from_micros(3));
        assert_eq!(h.snapshot().sum, 3_000);
    }
}
