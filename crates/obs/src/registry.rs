//! The metric registry: named, labeled handles and Prometheus
//! text-format exposition.
//!
//! A registry is a map `metric name → family`, each family a map
//! `label set → metric`. Handle resolution takes the registry lock;
//! the returned `Arc` is then hit lock-free, so the hot path never
//! contends here. Exposition walks `BTreeMap`s, so output order is
//! deterministic (name-sorted families, label-sorted series).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKET_COUNT};

/// A metric's identity inside a family: its rendered label pairs.
pub type Series = Vec<(String, String)>;

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// All series sharing one metric name (and therefore one type).
struct Family {
    series: BTreeMap<Series, Metric>,
}

/// A collection of named metrics with Prometheus-text exposition.
///
/// Most code records into [`crate::global`]; a fresh `Registry` is for
/// tests (exact totals without cross-test interference) and embedders
/// that want scoped scrapes.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// A metric name must be Prometheus-legal: `[a-zA-Z_:]` then
/// `[a-zA-Z0-9_:]*`. Label names take the same shape minus the colon.
fn valid_name(name: &str, colon_ok: bool) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    let head_ok = first.is_ascii_alphabetic() || first == '_' || (colon_ok && first == ':');
    head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || (colon_ok && c == ':'))
}

fn canonical(labels: &[(&str, &str)]) -> Series {
    let mut series: Series = labels
        .iter()
        .map(|(k, v)| {
            assert!(valid_name(k, false), "illegal label name {k:?}");
            (k.to_string(), v.to_string())
        })
        .collect();
    series.sort();
    series
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn resolve<T, F1, F2>(&self, name: &str, labels: &[(&str, &str)], make: F1, cast: F2) -> Arc<T>
    where
        F1: FnOnce() -> Metric,
        F2: FnOnce(&Metric) -> Option<Arc<T>>,
    {
        assert!(valid_name(name, true), "illegal metric name {name:?}");
        let series = canonical(labels);
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            series: BTreeMap::new(),
        });
        let metric = family.series.entry(series).or_insert_with(make);
        cast(metric).unwrap_or_else(|| {
            panic!(
                "metric {name:?} is already registered as a {}",
                metric.kind()
            )
        })
    }

    /// Get or register the counter `name{labels}`. Panics if the name
    /// is already registered as a different metric type — that is a
    /// misconfiguration, not a runtime condition.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.resolve(
            name,
            labels,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Get or register the gauge `name{labels}` (panics on a type
    /// conflict, like [`Self::counter`]).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.resolve(
            name,
            labels,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Get or register the histogram `name{labels}` (panics on a type
    /// conflict, like [`Self::counter`]).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.resolve(
            name,
            labels,
            || Metric::Histogram(Arc::new(Histogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Number of registered series (name + label-set combinations; a
    /// histogram counts once, not per bucket).
    pub fn num_series(&self) -> usize {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        families.values().map(|f| f.series.len()).sum()
    }

    /// Render the registry in Prometheus text exposition format.
    ///
    /// Counters and gauges emit one sample per series; histograms emit
    /// cumulative `_bucket{le="…"}` samples (bounds in **seconds**,
    /// nanosecond recordings assumed), `_sum` (seconds), and `_count`.
    /// All values in one exposition come from per-series snapshots, so
    /// bucket cumulatives are monotone and `_count` equals the `+Inf`
    /// bucket — concurrent recording never produces a torn series.
    pub fn expose(&self) -> String {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, family) in families.iter() {
            let Some(kind) = family.series.values().next().map(Metric::kind) else {
                continue;
            };
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (series, metric) in family.series.iter() {
                match metric {
                    Metric::Counter(c) => {
                        let _ =
                            writeln!(out, "{}{} {}", name, render_labels(series, None), c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ =
                            writeln!(out, "{}{} {}", name, render_labels(series, None), g.get());
                    }
                    Metric::Histogram(h) => {
                        expose_histogram(&mut out, name, series, h.snapshot());
                    }
                }
            }
        }
        out
    }
}

fn expose_histogram(out: &mut String, name: &str, series: &Series, snap: HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (i, &count) in snap.buckets.iter().enumerate() {
        cumulative += count;
        let le = if i == BUCKET_COUNT - 1 {
            "+Inf".to_string()
        } else {
            (HistogramSnapshot::bucket_bound(i) as f64 / 1e9).to_string()
        };
        let _ = writeln!(
            out,
            "{}_bucket{} {}",
            name,
            render_labels(series, Some(&le)),
            cumulative
        );
    }
    let _ = writeln!(
        out,
        "{}_sum{} {}",
        name,
        render_labels(series, None),
        snap.sum as f64 / 1e9
    );
    let _ = writeln!(
        out,
        "{}_count{} {}",
        name,
        render_labels(series, None),
        cumulative
    );
}

/// Render `{k="v",…}` (with Prometheus escaping), appending the `le`
/// label when given; empty label sets render as nothing.
fn render_labels(series: &Series, le: Option<&str>) -> String {
    if series.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = series
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("x_total", &[("verb", "GET")]);
        let b = r.counter("x_total", &[("verb", "GET")]);
        a.inc();
        assert_eq!(b.get(), 1, "one underlying counter");
        // Label order does not matter.
        let c = r.counter("y_total", &[("a", "1"), ("b", "2")]);
        let d = r.counter("y_total", &[("b", "2"), ("a", "1")]);
        c.inc();
        assert_eq!(d.get(), 1);
        assert_eq!(r.num_series(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("x_total", &[]);
        let _ = r.gauge("x_total", &[]);
    }

    #[test]
    #[should_panic(expected = "illegal metric name")]
    fn bad_name_panics() {
        let _ = Registry::new().counter("0bad name", &[]);
    }

    #[test]
    fn exposition_shape() {
        let r = Registry::new();
        r.counter("req_total", &[("verb", "A")]).add(3);
        r.counter("req_total", &[("verb", "B")]).inc();
        r.gauge("lag", &[]).set(-2);
        r.histogram("lat_seconds", &[]).record_ns(1000);
        let text = r.expose();
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("req_total{verb=\"A\"} 3"));
        assert!(text.contains("req_total{verb=\"B\"} 1"));
        assert!(text.contains("# TYPE lag gauge"));
        assert!(text.contains("lag -2"));
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_seconds_count 1"));
        assert!(text.contains("lat_seconds_sum 0.000001"));
        // Deterministic: families name-sorted, series label-sorted.
        assert_eq!(text, r.expose());
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("c_total", &[("lf", "we\"ird\\lf\n")]).inc();
        let text = r.expose();
        assert!(text.contains(r#"c_total{lf="we\"ird\\lf\n"} 1"#));
    }
}
