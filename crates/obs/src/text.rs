//! A strict parser for the Prometheus text exposition format.
//!
//! [`validate_exposition`] checks every line of a scrape — comment
//! grammar, sample grammar, label escaping, histogram bucket
//! monotonicity, `_count` vs `+Inf` agreement — and reports what it
//! saw. The serving tests and `scripts/serve_smoke.sh` lean on it so
//! "the METRICS reply is parseable Prometheus text" is an asserted
//! property, not an aspiration.

use std::collections::BTreeMap;

/// What a successfully validated exposition contained.
#[derive(Clone, Debug, Default)]
pub struct ExpositionSummary {
    /// Distinct time series seen (name + label set; histogram
    /// `_bucket`/`_sum`/`_count` samples collapse into one series).
    pub series: usize,
    /// Total sample lines.
    pub samples: usize,
    /// Metric family names in `# TYPE` declaration order.
    pub families: Vec<String>,
}

impl ExpositionSummary {
    /// Whether a family with this exact name was declared.
    pub fn has_family(&self, name: &str) -> bool {
        self.families.iter().any(|f| f == name)
    }
}

/// Validate `text` as Prometheus text exposition format.
///
/// Returns a summary on success; on the first malformed line, returns
/// `Err` naming the line number and the problem.
pub fn validate_exposition(text: &str) -> Result<ExpositionSummary, String> {
    let mut summary = ExpositionSummary::default();
    // family name -> declared type
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // series key (base name + labels minus `le`) -> cumulative bucket state
    let mut buckets: BTreeMap<String, (f64, u64)> = BTreeMap::new();
    // series key -> +Inf cumulative count, checked against _count
    let mut inf_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut series_seen: BTreeMap<String, ()> = BTreeMap::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let err = |msg: String| format!("line {lineno}: {msg} ({line:?})");
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            match parts.next() {
                Some("TYPE") => {
                    let name = parts
                        .next()
                        .ok_or_else(|| err("TYPE without metric name".into()))?;
                    if !valid_metric_name(name) {
                        return Err(err(format!("illegal metric name {name:?}")));
                    }
                    let kind = parts
                        .next()
                        .ok_or_else(|| err("TYPE without metric type".into()))?;
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(err(format!("unknown metric type {kind:?}")));
                    }
                    if types.insert(name.to_string(), kind.to_string()).is_some() {
                        return Err(err(format!("duplicate TYPE for {name:?}")));
                    }
                    summary.families.push(name.to_string());
                }
                Some("HELP") if parts.next().is_none() => {
                    return Err(err("HELP without metric name".into()));
                }
                _ => {} // free-form comment: legal, ignored
            }
            continue;
        }

        // Sample line: name[{labels}] value [timestamp]
        let (name, rest) = parse_name(line).map_err(&err)?;
        let (labels, rest) = parse_labels(rest).map_err(&err)?;
        let mut fields = rest.split_whitespace();
        let value_str = fields
            .next()
            .ok_or_else(|| err("sample without value".into()))?;
        let value = parse_value(value_str).map_err(&err)?;
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return Err(err(format!("bad timestamp {ts:?}")));
            }
        }
        if fields.next().is_some() {
            return Err(err("trailing garbage after sample".into()));
        }
        summary.samples += 1;

        // Resolve the sample back to its family: histogram samples use
        // suffixed names.
        let (family, suffix) = match name.strip_suffix("_bucket") {
            Some(base) if types.get(base).map(String::as_str) == Some("histogram") => {
                (base.to_string(), Some("bucket"))
            }
            _ => match name.strip_suffix("_sum") {
                Some(base) if types.get(base).map(String::as_str) == Some("histogram") => {
                    (base.to_string(), Some("sum"))
                }
                _ => match name.strip_suffix("_count") {
                    Some(base) if types.get(base).map(String::as_str) == Some("histogram") => {
                        (base.to_string(), Some("count"))
                    }
                    _ => (name.to_string(), None),
                },
            },
        };
        if !types.contains_key(&family) {
            return Err(err(format!("sample for undeclared family {family:?}")));
        }
        if types.get(&family).map(String::as_str) == Some("histogram") && suffix.is_none() {
            return Err(err(format!(
                "bare sample {name:?} for histogram family {family:?}"
            )));
        }

        // Series identity: family + labels minus `le`.
        let mut le: Option<String> = None;
        let mut ident: Vec<(String, String)> = Vec::new();
        for (k, v) in labels {
            if suffix == Some("bucket") && k == "le" {
                le = Some(v);
            } else {
                ident.push((k, v));
            }
        }
        ident.sort();
        let key = format!("{family}{ident:?}");
        series_seen.entry(key.clone()).or_insert(());

        match suffix {
            Some("bucket") => {
                let le = le.ok_or_else(|| err("histogram bucket without le label".into()))?;
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>()
                        .map_err(|_| err(format!("bad le bound {le:?}")))?
                };
                let count = value as u64;
                if let Some((prev_bound, prev_count)) = buckets.get(&key) {
                    if bound <= *prev_bound {
                        return Err(err(format!(
                            "bucket bounds not increasing: {bound} after {prev_bound}"
                        )));
                    }
                    if count < *prev_count {
                        return Err(err(format!(
                            "bucket counts not cumulative: {count} after {prev_count}"
                        )));
                    }
                }
                buckets.insert(key.clone(), (bound, count));
                if bound.is_infinite() {
                    inf_counts.insert(key, count);
                }
            }
            Some("count") => {
                if let Some(inf) = inf_counts.get(&key) {
                    if *inf != value as u64 {
                        return Err(err(format!(
                            "_count {} disagrees with +Inf bucket {}",
                            value as u64, inf
                        )));
                    }
                } else {
                    return Err(err("_count before +Inf bucket".into()));
                }
            }
            _ => {}
        }
    }
    summary.series = series_seen.len();
    Ok(summary)
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Split a sample line into its metric name and the remainder
/// (starting at `{` or whitespace).
fn parse_name(line: &str) -> Result<(&str, &str), String> {
    let end = line
        .find(|c: char| c == '{' || c.is_whitespace())
        .ok_or_else(|| "sample without value".to_string())?;
    let name = &line[..end];
    if !valid_metric_name(name) {
        return Err(format!("illegal metric name {name:?}"));
    }
    Ok((name, &line[end..]))
}

/// Label pairs parsed off a sample line, in source order.
type LabelPairs = Vec<(String, String)>;

/// Parse an optional `{k="v",…}` block; returns the pairs and the
/// remainder after `}`.
fn parse_labels(rest: &str) -> Result<(LabelPairs, &str), String> {
    let Some(body) = rest.strip_prefix('{') else {
        return Ok((Vec::new(), rest));
    };
    let mut labels = Vec::new();
    let mut chars = body.char_indices().peekable();
    loop {
        // label name
        let start = match chars.peek() {
            Some(&(i, '}')) => {
                chars.next();
                return Ok((labels, &body[i + 1..]));
            }
            Some(&(i, _)) => i,
            None => return Err("unterminated label block".into()),
        };
        let mut name_end = start;
        while let Some(&(i, c)) = chars.peek() {
            if c == '=' {
                name_end = i;
                break;
            }
            chars.next();
        }
        let name = &body[start..name_end];
        if !valid_label_name(name) {
            return Err(format!("illegal label name {name:?}"));
        }
        // consume `="`
        if chars.next().map(|(_, c)| c) != Some('=') {
            return Err("label without '='".into());
        }
        if chars.next().map(|(_, c)| c) != Some('"') {
            return Err("label value not quoted".into());
        }
        // value with escapes
        let mut value = String::new();
        loop {
            match chars.next() {
                Some((_, '\\')) => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some((_, '"')) => break,
                Some((_, c)) => value.push(c),
                None => return Err("unterminated label value".into()),
            }
        }
        labels.push((name.to_string(), value));
        match chars.next() {
            Some((_, ',')) => continue,
            Some((i, '}')) => return Ok((labels, &body[i + 1..])),
            other => return Err(format!("expected ',' or '}}' after label, got {other:?}")),
        }
    }
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {s:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_own_exposition() {
        let r = crate::Registry::new();
        r.counter("a_total", &[("verb", "X")]).add(2);
        r.gauge("b", &[]).set(-1);
        r.histogram("c_seconds", &[("stage", "fit")]).record_ns(500);
        r.histogram("c_seconds", &[("stage", "lf")])
            .record_ns(5_000_000);
        r.counter("weird_total", &[("lf", "a\"b\\c\nd")]).inc();
        let summary = validate_exposition(&r.expose()).expect("own exposition validates");
        assert_eq!(summary.series, 5);
        assert!(summary.has_family("a_total"));
        assert!(summary.has_family("c_seconds"));
        assert!(summary.samples > 5, "histograms expand to many samples");
    }

    #[test]
    fn rejects_malformed_lines() {
        for (text, why) in [
            ("garbage line here", "undeclared family / bad name"),
            ("# TYPE x bogus\n", "unknown type"),
            ("# TYPE x counter\nx nope\n", "bad value"),
            ("# TYPE x counter\ny 1\n", "sample for undeclared family"),
            (
                "# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"0.2\"} 3\n",
                "non-cumulative buckets",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"0.2\"} 5\nh_bucket{le=\"0.1\"} 5\n",
                "non-increasing bounds",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 4\n",
                "_count mismatch",
            ),
            ("# TYPE h histogram\nh 3\n", "bare histogram sample"),
            ("# TYPE x counter\nx{l=\"unterminated} 1\n", "bad labels"),
        ] {
            assert!(validate_exposition(text).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn accepts_untyped_extras() {
        let text = "# a free-form comment\n# TYPE up gauge\nup 1\n\n# TYPE v untyped\nv{a=\"b\"} 3.5 1700000000\n";
        let s = validate_exposition(text).expect("valid");
        assert_eq!(s.series, 2);
        assert_eq!(s.samples, 2);
    }
}
