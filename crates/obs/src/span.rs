//! RAII span timers and the ring-buffer trace log.
//!
//! A [`Span`] times a scope into a histogram
//! (`snorkel_span_seconds{span="<name>"}` in the global registry) and,
//! when its level passes the [`trace_level`] filter, logs the completed
//! span into the global [`TraceRing`] — the fixed-capacity buffer the
//! serving layer's `SLOWLOG` verb reads back. Span names are `'static`
//! and ring slots are pre-allocated, so recording never allocates.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::metrics::Histogram;

/// How much the trace ring records, set by the `SNORKEL_OBS_TRACE`
/// environment variable (`off` | `info` | `debug`; default `info`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Trace nothing.
    Off,
    /// Trace request-level spans (the default — `SLOWLOG` works out of
    /// the box).
    Info,
    /// Also trace fine-grained internal spans (refresh stages, pipeline
    /// stages).
    Debug,
}

/// The active trace filter: `SNORKEL_OBS_TRACE`, read once per process.
pub fn trace_level() -> TraceLevel {
    // 0 = unread, 1 = Off, 2 = Info, 3 = Debug.
    static LEVEL: AtomicU8 = AtomicU8::new(0);
    match LEVEL.load(Ordering::Relaxed) {
        1 => TraceLevel::Off,
        2 => TraceLevel::Info,
        3 => TraceLevel::Debug,
        _ => {
            let level = match std::env::var("SNORKEL_OBS_TRACE").as_deref() {
                Ok("off") | Ok("0") => TraceLevel::Off,
                Ok("debug") => TraceLevel::Debug,
                _ => TraceLevel::Info,
            };
            LEVEL.store(
                match level {
                    TraceLevel::Off => 1,
                    TraceLevel::Info => 2,
                    TraceLevel::Debug => 3,
                },
                Ordering::Relaxed,
            );
            level
        }
    }
}

/// One completed span in the trace ring.
#[derive(Clone, Copy, Debug)]
pub struct TraceEntry {
    /// Span name (static: verb names, stage names).
    pub name: &'static str,
    /// Wall-clock duration, nanoseconds.
    pub dur_ns: u64,
    /// Monotone sequence number (recording order; higher = more
    /// recent).
    pub seq: u64,
}

struct RingInner {
    /// Pre-allocated slots; `len` grows to capacity then stays there.
    slots: Vec<TraceEntry>,
    next: usize,
    seq: u64,
}

/// A fixed-capacity ring of the most recent trace entries. Recording
/// overwrites the oldest slot; nothing ever allocates after
/// construction.
pub struct TraceRing {
    inner: Mutex<RingInner>,
}

/// Capacity of the global trace ring.
const GLOBAL_RING_CAPACITY: usize = 4096;

impl TraceRing {
    /// A ring holding the `capacity` most recent entries.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceRing {
            inner: Mutex::new(RingInner {
                slots: Vec::with_capacity(capacity.max(1)),
                next: 0,
                seq: 0,
            }),
        }
    }

    /// The process-global ring — what [`Span`]s write to and `SLOWLOG`
    /// reads.
    pub fn global() -> &'static TraceRing {
        static GLOBAL: OnceLock<TraceRing> = OnceLock::new();
        GLOBAL.get_or_init(|| TraceRing::with_capacity(GLOBAL_RING_CAPACITY))
    }

    /// Record one completed span.
    pub fn record(&self, name: &'static str, dur_ns: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.seq += 1;
        let entry = TraceEntry {
            name,
            dur_ns,
            seq: inner.seq,
        };
        if inner.slots.len() < inner.slots.capacity() {
            inner.slots.push(entry);
        } else {
            let at = inner.next;
            inner.slots[at] = entry;
        }
        inner.next = (inner.next + 1) % inner.slots.capacity().max(1);
    }

    /// Total spans ever recorded (not just the ones still buffered).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).seq
    }

    /// The `n` slowest buffered entries, slowest first (ties broken
    /// most-recent first).
    pub fn slowest(&self, n: usize) -> Vec<TraceEntry> {
        let mut entries: Vec<TraceEntry> = {
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.slots.clone()
        };
        entries.sort_by(|a, b| b.dur_ns.cmp(&a.dur_ns).then(b.seq.cmp(&a.seq)));
        entries.truncate(n);
        entries
    }
}

/// An RAII timer: created via [`span`]/[`span_at`] (or directly with
/// [`Span::start`] around a pre-resolved histogram handle for hot
/// paths). On drop — or an explicit [`Span::finish`] — it records its
/// elapsed time into the histogram and, when `level` passes the
/// [`trace_level`] filter, into the global [`TraceRing`].
pub struct Span {
    name: &'static str,
    start: Instant,
    hist: Option<Arc<Histogram>>,
    level: TraceLevel,
    done: bool,
}

impl Span {
    /// Start a span feeding a pre-resolved histogram handle — the
    /// allocation-free hot-path constructor (no registry lookup).
    pub fn start(name: &'static str, hist: Arc<Histogram>, level: TraceLevel) -> Span {
        Span {
            name,
            start: Instant::now(),
            hist: Some(hist),
            level,
            done: false,
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    fn record(&mut self) -> Duration {
        self.done = true;
        let elapsed = self.start.elapsed();
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        if let Some(hist) = &self.hist {
            hist.record_ns(ns);
        }
        if self.level != TraceLevel::Off && self.level <= trace_level() {
            TraceRing::global().record(self.name, ns);
        }
        elapsed
    }

    /// Stop the span now and hand back its duration (so one timing can
    /// feed both the live metrics and a caller-side report — a single
    /// source of truth).
    pub fn finish(mut self) -> Duration {
        self.record()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.done {
            self.record();
        }
    }
}

/// Start an [`Info`](TraceLevel::Info)-level span timing into
/// `snorkel_span_seconds{span="<name>"}` of the global registry.
pub fn span(name: &'static str) -> Span {
    span_at(name, TraceLevel::Info)
}

/// [`span`] with an explicit trace level (use
/// [`Debug`](TraceLevel::Debug) for fine-grained internal stages so
/// they stay out of the default `SLOWLOG` view).
pub fn span_at(name: &'static str, level: TraceLevel) -> Span {
    let hist = crate::global().histogram("snorkel_span_seconds", &[("span", name)]);
    Span {
        name,
        start: Instant::now(),
        hist: Some(hist),
        level,
        done: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_and_sorts_slowest() {
        let ring = TraceRing::with_capacity(4);
        for i in 1..=6u64 {
            ring.record("t", i * 100);
        }
        assert_eq!(ring.recorded(), 6);
        let slow = ring.slowest(2);
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].dur_ns, 600);
        assert_eq!(slow[1].dur_ns, 500);
        // Entries 1 and 2 were overwritten (capacity 4).
        let all = ring.slowest(10);
        assert_eq!(all.len(), 4);
        assert!(all.iter().all(|e| e.dur_ns >= 300));
    }

    #[test]
    fn span_records_into_histogram_and_reports_duration() {
        let hist = Arc::new(Histogram::new());
        let span = Span::start("unit", Arc::clone(&hist), TraceLevel::Off);
        std::thread::sleep(Duration::from_millis(1));
        let d = span.finish();
        assert!(d >= Duration::from_millis(1));
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 1);
        assert!(snap.sum >= 1_000_000);
    }

    #[test]
    fn span_drop_records_once() {
        let hist = Arc::new(Histogram::new());
        {
            let _span = Span::start("unit", Arc::clone(&hist), TraceLevel::Off);
        }
        assert_eq!(hist.snapshot().count(), 1);
        let span = Span::start("unit", Arc::clone(&hist), TraceLevel::Off);
        let _ = span.finish();
        assert_eq!(hist.snapshot().count(), 2, "finish + drop records once");
    }

    #[test]
    fn global_span_feeds_global_registry() {
        let before = TraceRing::global().recorded();
        {
            let _s = crate::span!("obs.unit_test");
        }
        let text = crate::global().expose();
        assert!(text.contains("snorkel_span_seconds_bucket{span=\"obs.unit_test\""));
        // Default level Info traces into the global ring (unless the
        // environment explicitly disabled tracing).
        if trace_level() != TraceLevel::Off {
            assert!(TraceRing::global().recorded() > before);
        }
    }
}
