//! Proves the record path is allocation-free: a counting global
//! allocator observes zero heap activity across counter, gauge,
//! histogram, span, and trace-ring recording once handles are
//! resolved. Lives in its own test binary so the allocator shim
//! cannot interfere with other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use snorkel_obs::{Registry, Span, TraceLevel, TraceRing};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn record_path_does_not_allocate() {
    // Resolve handles and warm everything up-front (this side DOES
    // allocate — registry maps, ring slots).
    let registry = Registry::new();
    let counter = registry.counter("na_ops_total", &[("verb", "MARGINAL")]);
    let gauge = registry.gauge("na_lag", &[]);
    let hist = registry.histogram("na_seconds", &[("verb", "MARGINAL")]);
    let ring = TraceRing::with_capacity(64);
    // Fill the ring so recording only ever overwrites slots.
    for _ in 0..64 {
        ring.record("warmup", 1);
    }
    // Warm the span path (first drop may touch lazily initialized
    // global state).
    Span::start("warmup", Arc::clone(&hist), TraceLevel::Off).finish();

    // The counting allocator is process-global, so an unrelated thread
    // (the libtest harness) allocating during the window would count
    // too. Take the minimum over a few attempts: if the record path
    // itself allocated, every attempt would be nonzero.
    let mut min_allocs = u64::MAX;
    const ATTEMPTS: u64 = 5;
    for attempt in 0..ATTEMPTS {
        let before = allocations();
        for i in 0..10_000u64 {
            counter.inc();
            gauge.set(i as i64);
            hist.record_ns(i);
            hist.record(Duration::from_nanos(i));
            ring.record("hot", i);
            let span = Span::start("hot", Arc::clone(&hist), TraceLevel::Off);
            let _ = span.finish();
        }
        let after = allocations();
        min_allocs = min_allocs.min(after - before);
        if min_allocs == 0 {
            break;
        }
        eprintln!(
            "attempt {attempt}: {} allocations (ambient noise?)",
            after - before
        );
    }
    assert_eq!(
        min_allocs, 0,
        "record path allocated in every one of {ATTEMPTS} attempts"
    );

    assert_eq!(counter.get() % 10_000, 0);
    assert!(counter.get() >= 10_000);
    assert_eq!(hist.snapshot().count() % 10_000, 1, "warmup + 3 per iter");
}
