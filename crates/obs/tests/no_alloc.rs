//! Proves the record path is allocation-free: a counting global
//! allocator observes zero heap activity across counter, gauge,
//! histogram, span, and trace-ring recording once handles are
//! resolved. Lives in its own test binary so the allocator shim
//! cannot interfere with other tests. The shim itself is the shared
//! [`snorkel_arena::CountingAlloc`] harness — the same one the serve
//! crate's read-path budget test uses.

use std::sync::Arc;
use std::time::Duration;

use snorkel_arena::alloc_check::min_allocations_over;
use snorkel_obs::{Registry, Span, TraceLevel, TraceRing};

#[global_allocator]
static ALLOC: snorkel_arena::CountingAlloc = snorkel_arena::CountingAlloc::new();

#[test]
fn record_path_does_not_allocate() {
    // Resolve handles and warm everything up-front (this side DOES
    // allocate — registry maps, ring slots).
    let registry = Registry::new();
    let counter = registry.counter("na_ops_total", &[("verb", "MARGINAL")]);
    let gauge = registry.gauge("na_lag", &[]);
    let hist = registry.histogram("na_seconds", &[("verb", "MARGINAL")]);
    let ring = TraceRing::with_capacity(64);
    // Fill the ring so recording only ever overwrites slots.
    for _ in 0..64 {
        ring.record("warmup", 1);
    }
    // Warm the span path (first drop may touch lazily initialized
    // global state).
    Span::start("warmup", Arc::clone(&hist), TraceLevel::Off).finish();

    // The counting allocator is process-global, so an unrelated thread
    // (the libtest harness) allocating during the window would count
    // too — min_allocations_over takes the minimum over attempts: if
    // the record path itself allocated, every attempt would be nonzero.
    const ATTEMPTS: usize = 5;
    let min_allocs = min_allocations_over(ATTEMPTS, || {
        for i in 0..10_000u64 {
            counter.inc();
            gauge.set(i as i64);
            hist.record_ns(i);
            hist.record(Duration::from_nanos(i));
            ring.record("hot", i);
            let span = Span::start("hot", Arc::clone(&hist), TraceLevel::Off);
            let _ = span.finish();
        }
    });
    assert_eq!(
        min_allocs, 0,
        "record path allocated in every one of {ATTEMPTS} attempts"
    );

    assert_eq!(counter.get() % 10_000, 0);
    assert!(counter.get() >= 10_000);
    assert_eq!(hist.snapshot().count() % 10_000, 1, "warmup + 3 per iter");
}
