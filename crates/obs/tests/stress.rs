//! Concurrency stress: 8 threads hammer counters, gauges, and
//! histograms through a shared registry while a scraper thread
//! exposes continuously. Asserts exact totals (no lost increments)
//! and that every mid-flight exposition parses as valid Prometheus
//! text (no torn series).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use snorkel_obs::{validate_exposition, Registry};

const THREADS: usize = 8;
const ITERS: u64 = 50_000;

#[test]
fn eight_threads_lose_nothing_and_exposition_never_tears() {
    let registry = Arc::new(Registry::new());
    let stop = Arc::new(AtomicBool::new(false));

    // A scraper racing the writers: every scrape must parse.
    let scraper = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut scrapes = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let text = registry.expose();
                if !text.is_empty() {
                    validate_exposition(&text).unwrap_or_else(|e| panic!("torn exposition: {e}"));
                }
                scrapes += 1;
            }
            scrapes
        })
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                // Half the threads share one series; half get their own —
                // exercising both contended and uncontended paths.
                let shard = if t % 2 == 0 { "shared" } else { "own" };
                let counter = registry.counter(
                    "stress_ops_total",
                    &[
                        ("shard", shard),
                        ("thread", if t % 2 == 0 { "all" } else { NAMES[t] }),
                    ],
                );
                let gauge = registry.gauge("stress_level", &[("thread", NAMES[t])]);
                let hist = registry.histogram("stress_seconds", &[("shard", shard)]);
                for i in 0..ITERS {
                    counter.inc();
                    gauge.set(i as i64);
                    hist.record_ns(i % 10_000);
                }
            })
        })
        .collect();

    for w in workers {
        w.join().expect("worker");
    }
    stop.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper");
    assert!(scrapes > 0);

    // Exact totals: no increment was lost.
    let shared_total: u64 = registry
        .counter(
            "stress_ops_total",
            &[("shard", "shared"), ("thread", "all")],
        )
        .get();
    assert_eq!(shared_total, (THREADS as u64 / 2) * ITERS);
    let mut own_total = 0u64;
    for t in (1..THREADS).step_by(2) {
        own_total += registry
            .counter(
                "stress_ops_total",
                &[("shard", "own"), ("thread", NAMES[t])],
            )
            .get();
    }
    assert_eq!(own_total, (THREADS as u64 / 2) * ITERS);

    // Histograms saw every recording.
    let mut hist_count = 0u64;
    for shard in ["shared", "own"] {
        hist_count += registry
            .histogram("stress_seconds", &[("shard", shard)])
            .snapshot()
            .count();
    }
    assert_eq!(hist_count, THREADS as u64 * ITERS);

    // The final exposition reflects the exact totals too.
    let text = registry.expose();
    let summary = validate_exposition(&text).expect("final exposition");
    assert!(summary.series >= THREADS + 2);
    assert!(text.contains(&format!(
        "stress_ops_total{{shard=\"shared\",thread=\"all\"}} {}",
        (THREADS as u64 / 2) * ITERS
    )));
}

static NAMES: [&str; 8] = ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"];
