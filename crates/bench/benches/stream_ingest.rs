//! Streaming-ingest steady state: the per-batch online moment refit
//! against the cold batch fit it replaces — the numbers behind the
//! `BENCH_stream_ingest.json` artifact.
//!
//! On a planted binary suite of `SNORKEL_STREAM_ROWS` rows (default
//! 100k) × `SNORKEL_STREAM_LFS` LFs (default 25), the running moment
//! sufficient statistics have already absorbed the whole corpus — the
//! regime a long-lived `INGEST` stream reaches after its first few
//! minutes. Each new batch then costs:
//!
//! * **online** — fold the batch's rows into the running statistics and
//!   re-solve the closed-form accuracies from the totals
//!   (`MomentModel::fit_from_stats`): O(n³) in the LF count,
//!   independent of the corpus size, **no pass over Λ**.
//! * **cold** — what a non-streaming session pays for the same model
//!   update: a full `fit` over the spliced matrix (statistics pass
//!   over every row, then the same solve).
//!
//! The CI floor `SNORKEL_STREAM_MIN_SPEEDUP` gates the cold-vs-online
//! ratio (acceptance: ≥10× at 100k rows). The online path's weights are
//! bit-identical to the cold fit's — integer counts sum exactly in f64
//! below 2⁵³ — which the bench asserts outright, so the speedup can
//! never come from solving a cheaper problem.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snorkel_core::label_model::{MomentModel, MomentStats};
use snorkel_core::model::{LabelScheme, TrainConfig};
use snorkel_matrix::{LabelMatrix, LabelMatrixBuilder, Vote};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn planted(m: usize, accs: &[f64], pl: f64, seed: u64) -> LabelMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = LabelMatrixBuilder::new(m, accs.len());
    for i in 0..m {
        let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
        for (j, &acc) in accs.iter().enumerate() {
            if rng.gen::<f64>() < pl {
                b.set(i, j, if rng.gen::<f64>() < acc { y } else { -y });
            }
        }
    }
    b.build()
}

fn median_secs<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let rows = env_usize("SNORKEL_STREAM_ROWS", 100_000);
    let n = env_usize("SNORKEL_STREAM_LFS", 25);
    let batch = env_usize("SNORKEL_STREAM_BATCH", 512);
    let iters = 5;
    let scheme = LabelScheme::Binary;
    let cfg = TrainConfig::default();
    let accs: Vec<f64> = (0..n).map(|j| 0.9 - 0.35 * j as f64 / n as f64).collect();

    // The corpus so far, plus the batch an INGEST frame would splice.
    let lambda = planted(rows, &accs, 0.3, 7);
    let incoming = planted(batch, &accs, 0.3, 8);
    let mut spliced = LabelMatrixBuilder::new(rows + batch, n);
    for src in [&lambda, &incoming] {
        let off = if std::ptr::eq(src, &lambda) { 0 } else { rows };
        for i in 0..src.num_points() {
            let (cols, votes) = src.row(i);
            for (&c, &v) in cols.iter().zip(votes) {
                spliced.set(off + i, c as usize, v);
            }
        }
    }
    let spliced = spliced.build();

    // Steady state: the running statistics already cover the corpus.
    let mut base = MomentStats::new(n, scheme);
    base.accumulate_matrix(&lambda);

    // Online: fold the batch into the running totals, re-solve from them.
    let online_refit = median_secs(iters, || {
        let mut stats = base.clone();
        for i in 0..incoming.num_points() {
            let (cols, votes) = incoming.row(i);
            stats.accumulate(cols, votes, 1.0);
        }
        let mut mm = MomentModel::new(n, scheme);
        mm.fit_from_stats(&stats, &cfg);
        mm
    });

    // Cold: the statistics pass over all rows the online path skips.
    let cold_fit = median_secs(iters, || {
        let mut mm = MomentModel::new(n, scheme);
        snorkel_core::label_model::LabelModel::fit(&mut mm, &spliced, None, &cfg);
        mm
    });

    // Equivalence: the two paths must land on bit-identical statistics,
    // hence bit-identical closed-form accuracies.
    let mut online_stats = base.clone();
    for i in 0..incoming.num_points() {
        let (cols, votes) = incoming.row(i);
        online_stats.accumulate(cols, votes, 1.0);
    }
    let mut batch_stats = MomentStats::new(n, scheme);
    batch_stats.accumulate_matrix(&spliced);
    assert_eq!(
        online_stats, batch_stats,
        "running statistics diverged from the batch recompute"
    );

    let speedup = cold_fit / online_refit.max(1e-12);
    println!(
        "{rows}+{batch} rows × {n} LFs: online refit {:.3} ms, cold fit {:.1} ms \
         → online {speedup:.0}× faster (statistics bit-identical)",
        1e3 * online_refit,
        1e3 * cold_fit,
    );
    snorkel_bench::report::emit(
        "stream_ingest",
        &[
            ("rows", rows as f64),
            ("lfs", n as f64),
            ("batch", batch as f64),
            ("online_refit_secs", online_refit),
            ("cold_fit_secs", cold_fit),
            ("online_vs_cold_speedup", speedup),
        ],
    );
    snorkel_bench::report::enforce_floor(
        "SNORKEL_STREAM_MIN_SPEEDUP",
        "online-vs-cold streaming refit",
        speedup,
    );
}
