//! Distill-and-serve benchmark: noise-aware discriminative training on
//! label-model marginals, plus the serve-path prediction latency —
//! the numbers behind `BENCH_distill.json`.
//!
//! On a planted 100k×25 binary suite (resize with
//! `SNORKEL_DISTILL_ROWS` / `SNORKEL_DISTILL_LFS`):
//!
//! 1. fit the moment backend through a sharded plan and read marginals;
//! 2. time [`DiscTrainer`]'s shard-parallel noise-aware fit of the
//!    distilled model on those marginals (the `REFRESH`-triggered
//!    retrain the server runs outside its write lock);
//! 3. time the serve path — `hash features → predict_proba` — per
//!    query, the work one `PREDICT` request does under the read lock;
//! 4. score the distilled model on held-out candidates with **zero LF
//!    coverage** against the planted gold, versus the 50% majority-vote
//!    ceiling (no votes ⇒ uniform posterior).
//!
//! `SNORKEL_DISTILL_MIN_ADVANTAGE` gates the zero-coverage
//! accuracy-over-chance ratio (accuracy / 0.5; the CI floor of 1.9 ⇒
//! ≥95% accuracy where majority vote is stuck at 50%).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snorkel_core::label_model::{LabelModel, MomentModel};
use snorkel_core::model::{LabelScheme, TrainConfig};
use snorkel_core::pipeline::{DiscTrainer, DiscTrainerConfig};
use snorkel_disc::hash_features;
use snorkel_linalg::SparseVec;
use snorkel_matrix::{LabelMatrixBuilder, ShardedMatrix, Vote};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

const DIM: u32 = 1 << 18;

/// Synthetic hashed features for a candidate of planted class `y`: a
/// couple of class-diagnostic cue features (drawn from a per-class
/// vocabulary) plus shared noise features.
fn featurize(y: Vote, rng: &mut StdRng) -> SparseVec {
    let cue = |c: u64| format!("cue{}={}", if y == 1 { "pos" } else { "neg" }, c);
    let mut names = vec![cue(rng.gen_range(0..50)), cue(rng.gen_range(0..50))];
    for _ in 0..12 {
        names.push(format!("noise={}", rng.gen_range(0..5000u64)));
    }
    hash_features(names.iter().map(String::as_str), DIM)
}

fn main() {
    let rows = env_usize("SNORKEL_DISTILL_ROWS", 100_000);
    let n = env_usize("SNORKEL_DISTILL_LFS", 25);
    let holdout = (rows / 10).clamp(100, 20_000);
    let mut rng = StdRng::seed_from_u64(11);

    // Planted truth → Λ (training rows only) + features for everything.
    let accs: Vec<f64> = (0..n).map(|j| 0.9 - 0.3 * j as f64 / n as f64).collect();
    let mut b = LabelMatrixBuilder::new(rows, n);
    let mut xs = Vec::with_capacity(rows);
    let mut gold_holdout = Vec::with_capacity(holdout);
    let mut xs_holdout = Vec::with_capacity(holdout);
    for i in 0..rows {
        let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
        for (j, &acc) in accs.iter().enumerate() {
            if rng.gen::<f64>() < 0.3 {
                b.set(i, j, if rng.gen::<f64>() < acc { y } else { -y });
            }
        }
        xs.push(featurize(y, &mut rng));
    }
    for _ in 0..holdout {
        // Held-out candidates: features only, NO row in Λ — the traffic
        // the distilled model exists for.
        let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
        gold_holdout.push(y);
        xs_holdout.push(featurize(y, &mut rng));
    }
    let lambda = b.build();
    let plan = ShardedMatrix::build(&lambda, 0);

    // Label model: the moment backend (deployment-scale default).
    let mut lm = MomentModel::new(n, LabelScheme::Binary);
    lm.fit(&lambda, Some(&plan), &TrainConfig::default());
    let marginals = LabelModel::marginals(&lm, &lambda, Some(&plan));

    // 1. Distillation cost (the post-REFRESH retrain).
    let trainer = DiscTrainer::new(DiscTrainerConfig::with_dim(DIM));
    let t = Instant::now();
    let (disc, report) = trainer.train(&xs, &marginals, 2, Some(&plan));
    let train_secs = t.elapsed().as_secs_f64();

    // 2. Serve-path latency: the full per-request PREDICT cost under
    //    the read lock — hash the raw feature names, normalize, score.
    let queries = 10_000.min(holdout * 10);
    let query_names: Vec<Vec<String>> = (0..queries)
        .map(|q| {
            let y: Vote = if q % 2 == 0 { 1 } else { -1 };
            let cue = |c: usize| format!("cue{}={}", if y == 1 { "pos" } else { "neg" }, c % 50);
            let mut names = vec![cue(q), cue(q / 2)];
            for d in 0..12 {
                names.push(format!("noise={}", (q * 13 + d * 7) % 5000));
            }
            names
        })
        .collect();
    let t = Instant::now();
    let mut sink = 0.0f64;
    for names in &query_names {
        let x = hash_features(names.iter().map(String::as_str), DIM);
        sink += disc.predict_proba(&x)[0];
    }
    let predict_secs = t.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    let predict_us = 1e6 * predict_secs / queries as f64;

    // 3. Zero-coverage accuracy vs the majority-vote ceiling (0.5).
    let correct = xs_holdout
        .iter()
        .zip(&gold_holdout)
        .filter(|(x, &y)| disc.predict_vote(x) == y)
        .count();
    let accuracy = correct as f64 / holdout as f64;
    let advantage = accuracy / 0.5;

    println!(
        "{rows}×{n}: distill {train_secs:.2}s ({} rows trained, {} dropped, {} steps), \
         serve path {predict_us:.1} µs/query ({:.0} qps), \
         zero-coverage accuracy {accuracy:.3} vs 0.500 majority-vote ceiling",
        report.rows_trained,
        report.rows_dropped,
        report.steps,
        1e6 / predict_us,
    );
    snorkel_bench::report::emit(
        "distill",
        &[
            ("rows", rows as f64),
            ("lfs", n as f64),
            ("holdout", holdout as f64),
            ("train_secs", train_secs),
            ("rows_trained", report.rows_trained as f64),
            ("rows_dropped", report.rows_dropped as f64),
            ("predict_us_per_query", predict_us),
            ("predict_qps", 1e6 / predict_us),
            ("zero_coverage_accuracy", accuracy),
            ("accuracy_over_chance", advantage),
        ],
    );
    snorkel_bench::report::enforce_floor(
        "SNORKEL_DISTILL_MIN_ADVANTAGE",
        "zero-coverage accuracy over chance",
        advantage,
    );
}
