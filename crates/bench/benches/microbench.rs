//! Criterion microbenchmarks for the hot paths of every subsystem:
//! generative-model training (exact and Gibbs/CD), structure learning,
//! LF application (serial vs parallel), label-matrix diagnostics, the
//! pattern engine, and one discriminative training epoch.
//!
//! Run with `cargo bench --workspace`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use snorkel_core::model::{GenerativeModel, LabelScheme, TrainConfig};
use snorkel_core::structure::{learn_structure, structure_sweep, StructureConfig};
use snorkel_core::vote::majority_vote;
use snorkel_datasets::synthetic::{correlated_matrix, independent_matrix, Cluster};
use snorkel_datasets::{cdr, TaskConfig};
use snorkel_disc::{LogRegConfig, LogisticRegression, TextFeaturizer};
use snorkel_lf::LfExecutor;
use snorkel_matrix::stats::matrix_stats;
use snorkel_pattern::Regex;

fn bench_generative_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("generative_model");
    group.sample_size(10);
    for &(m, n) in &[(1000usize, 10usize), (5000, 20)] {
        let (lambda, _) = independent_matrix(m, n, 0.75, 0.3, 1);
        let cfg = TrainConfig {
            epochs: 100,
            ..TrainConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("exact_fit_100_epochs", format!("{m}x{n}")),
            &lambda,
            |b, lambda| {
                b.iter(|| {
                    let mut gm = GenerativeModel::new(n, LabelScheme::Binary);
                    gm.fit(lambda, &cfg)
                })
            },
        );
    }

    // Gibbs/CD path with a planted correlated cluster.
    let clusters = [Cluster {
        size: 4,
        accuracy: 0.6,
        deviation: 0.05,
    }];
    let (lambda, _, pairs) = correlated_matrix(2000, 8, 0.75, &clusters, 0.4, 2);
    let cfg = TrainConfig {
        cd_epochs: 10,
        ..TrainConfig::default()
    };
    group.bench_function("gibbs_cd_fit_10_epochs_2000x12", |b| {
        b.iter(|| {
            let mut gm = GenerativeModel::new(lambda.num_lfs(), LabelScheme::Binary)
                .with_correlations(&pairs);
            gm.fit(&lambda, &cfg)
        })
    });
    group.finish();
}

fn bench_structure_learning(c: &mut Criterion) {
    let mut group = c.benchmark_group("structure_learning");
    group.sample_size(10);
    let clusters = [
        Cluster {
            size: 4,
            accuracy: 0.6,
            deviation: 0.05,
        },
        Cluster {
            size: 4,
            accuracy: 0.65,
            deviation: 0.05,
        },
    ];
    for &(m, indep) in &[(1000usize, 8usize), (2000, 16)] {
        let (lambda, _, _) = correlated_matrix(m, indep, 0.75, &clusters, 0.4, 3);
        group.bench_with_input(
            BenchmarkId::new("single_pass", format!("{m}x{}", indep + 8)),
            &lambda,
            |b, lambda| b.iter(|| learn_structure(lambda, &StructureConfig::default())),
        );
        group.bench_with_input(
            BenchmarkId::new("sweep_12_epsilons", format!("{m}x{}", indep + 8)),
            &lambda,
            |b, lambda| {
                let eps: Vec<f64> = (1..=12).rev().map(|i| i as f64 * 0.04).collect();
                b.iter(|| structure_sweep(lambda, &eps, &StructureConfig::default()))
            },
        );
    }
    group.finish();
}

fn bench_lf_application(c: &mut Criterion) {
    let mut group = c.benchmark_group("lf_application");
    group.sample_size(10);
    let task = cdr::build(TaskConfig {
        num_candidates: 2000,
        seed: 1,
    });
    let ids: Vec<_> = task.candidates.clone();
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("cdr_33lfs_2000cands", format!("{threads}_threads")),
            &threads,
            |b, &threads| {
                let exec = LfExecutor::new().with_parallelism(threads);
                b.iter(|| exec.apply(&task.lfs, &task.corpus, &ids))
            },
        );
    }
    group.finish();
}

fn bench_matrix_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_matrix");
    let (lambda, _) = independent_matrix(20000, 50, 0.75, 0.2, 4);
    group.bench_function("stats_20000x50", |b| b.iter(|| matrix_stats(&lambda)));
    group.bench_function("majority_vote_20000x50", |b| {
        b.iter(|| majority_vote(&lambda))
    });
    group.finish();
}

fn bench_pattern_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_engine");
    let re = Regex::new(r"\b(caus|induc)(es|ed|ing)?\b").expect("compiles");
    let hay = "administration of magnesium sulfate induced transient weakness in the cohort \
               while the control arm received placebo without any causally linked events"
        .repeat(4);
    group.bench_function("alternation_search_600B", |b| b.iter(|| re.is_match(&hay)));
    let lit = Regex::new("placebo").expect("compiles");
    group.bench_function("literal_search_600B", |b| b.iter(|| lit.find(&hay)));
    group.finish();
}

fn bench_discriminative(c: &mut Criterion) {
    let mut group = c.benchmark_group("discriminative");
    group.sample_size(10);
    let task = cdr::build(TaskConfig {
        num_candidates: 1000,
        seed: 5,
    });
    let featurizer = TextFeaturizer::with_buckets(1 << 16);
    let xs = featurizer.featurize_all(&task.corpus, &task.candidates);
    let soft: Vec<f64> = task
        .gold
        .iter()
        .map(|&g| if g == 1 { 0.9 } else { 0.1 })
        .collect();
    let cfg = LogRegConfig {
        dim: 1 << 16,
        epochs: 1,
        ..LogRegConfig::default()
    };
    group.bench_function("logreg_epoch_1000_examples", |b| {
        b.iter(|| {
            let mut lr = LogisticRegression::new(1 << 16);
            lr.fit(&xs, &soft, &cfg)
        })
    });
    group.bench_function("featurize_1000_candidates", |b| {
        b.iter(|| featurizer.featurize_all(&task.corpus, &task.candidates))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generative_training,
    bench_structure_learning,
    bench_lf_application,
    bench_matrix_ops,
    bench_pattern_engine,
    bench_discriminative
);
criterion_main!(benches);
