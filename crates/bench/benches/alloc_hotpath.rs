//! Before/after proof for the arena rewrite of the batched read path:
//! the pre-arena owned `OP_MARGINAL` pipeline (per-row `Vec`s, a
//! `HashMap` memo that clones keys and values, a fresh reply buffer)
//! against the allocation-free arena pipeline
//! (`snorkel_serve::hotpath` + the flat reply encoder), measured two
//! ways under one counting global allocator:
//!
//! * **allocations per request** — the headline number. The arena
//!   path's steady state must be zero (release builds); CI pins that
//!   with `SNORKEL_ALLOC_MAX_PER_REQ=0`.
//! * **time per request** — the delta the allocations actually cost.
//!
//! Both pipelines answer the same batch and the replies are asserted
//! byte-identical before anything is measured — the speedup is never
//! allowed to come from computing something else.
//!
//! Artifacts: `BENCH_alloc_hotpath.json` via `snorkel_bench::report`
//! (set `SNORKEL_BENCH_JSON_DIR`).

use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Mutex;

use snorkel_arena::alloc_check::{allocations_in, min_allocations_over};
use snorkel_context::{CandidateId, Corpus};
use snorkel_core::optimizer::ModelingStrategy;
use snorkel_incr::{IncrementalSession, SessionConfig};
use snorkel_nlp::tokenize;
use snorkel_serve::frame::{self, FRAME_HEADER_BYTES, OP_MARGINAL};
use snorkel_serve::hotpath::{self, ReadScratch, SigMemo};
use snorkel_serve::{BinRequest, LfSpec, VoteRow};

#[global_allocator]
static ALLOC: snorkel_arena::CountingAlloc = snorkel_arena::CountingAlloc::new();

const GEN: u64 = 1;
const ITERS: u64 = 50_000;
const ROUNDS: usize = 5;

fn primed_session(rows: usize) -> IncrementalSession {
    let mut corpus = Corpus::new();
    let doc = corpus.add_document("d");
    for i in 0..rows {
        let verb = match i % 5 {
            0 | 1 => "causes",
            2 => "treats",
            3 => "worsens",
            _ => "mentions",
        };
        let text = format!("alpha{} {verb} beta{}", i % 7, i % 5);
        let s = corpus.add_sentence(doc, &text, tokenize(&text));
        let a = corpus.add_span(s, 0, 1, Some("A"));
        let b = corpus.add_span(s, 2, 3, Some("B"));
        corpus.add_candidate(vec![a, b]);
    }
    let ids: Vec<CandidateId> = corpus.candidate_ids().collect();
    let config = SessionConfig {
        force_strategy: Some(ModelingStrategy::GenerativeModel {
            epsilon: 0.0,
            correlations: Vec::new(),
            strengths: Vec::new(),
        }),
        ..SessionConfig::default()
    };
    let mut session = IncrementalSession::new(corpus, config);
    session.ingest_candidates(&ids);
    for spec in [
        "lf_causes KEYWORD 1 -1 causes",
        "lf_treats KEYWORD -1 1 treats",
    ] {
        let spec = LfSpec::parse(spec).expect("valid spec");
        session.add_lf_tagged(spec.build().expect("buildable"), spec.content_tag());
    }
    session.refresh();
    session
}

fn median_ns_per_op(rounds: usize, iters: u64, mut f: impl FnMut(u64)) -> f64 {
    let mut samples: Vec<f64> = (0..rounds)
        .map(|_| {
            let t = std::time::Instant::now();
            f(iters);
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The pre-arena request pipeline, reconstructed verbatim: owned
/// decode, owned per-row posteriors through a key/value-cloning memo,
/// fresh reply buffer per request.
fn owned_request(
    session: &IncrementalSession,
    payload: &[u8],
    memo: &Mutex<HashMap<VoteRow, Vec<f64>>>,
) -> Vec<u8> {
    let BinRequest::Marginal(rows) =
        frame::decode_request(OP_MARGINAL, payload).expect("valid payload")
    else {
        unreachable!("OP_MARGINAL decodes to Marginal");
    };
    let model = session.model().expect("refreshed session has a model");
    let mut probs: Vec<Vec<f64>> = Vec::with_capacity(rows.len());
    {
        let mut memo = memo.lock().unwrap();
        for (cols, votes) in &rows {
            let key = (cols.clone(), votes.clone());
            let p = match memo.get(&key) {
                Some(p) => p.clone(),
                None => {
                    let p = model.posterior(cols, votes);
                    memo.insert(key, p.clone());
                    p
                }
            };
            probs.push(p);
        }
    }
    frame::encode_marginal_reply(GEN, &probs)
}

/// The arena pipeline as the worker threads run it.
fn arena_request(
    session: &IncrementalSession,
    payload: &[u8],
    memo: &Mutex<SigMemo>,
    scratch: &mut ReadScratch,
    out: &mut Vec<u8>,
) {
    out.clear();
    hotpath::decode_marginal(payload, scratch).expect("valid payload");
    let outcome = hotpath::compute_marginal(session, GEN, memo, scratch).expect("valid batch");
    frame::encode_marginal_reply_flat_into(GEN, scratch.probs(), outcome.width, out);
}

fn main() {
    let session = primed_session(200);
    // A deployment-shaped batch: 16 rows drawn from 6 distinct
    // signatures (traffic collapses onto few patterns — the memo's
    // whole premise).
    let signatures: [VoteRow; 6] = [
        (vec![0], vec![1]),
        (vec![1], vec![-1]),
        (vec![0, 1], vec![1, -1]),
        (vec![0, 1], vec![1, 1]),
        (vec![0], vec![-1]),
        (vec![1], vec![1]),
    ];
    let rows: Vec<VoteRow> = (0..16).map(|i| signatures[i % 6].clone()).collect();
    let request = frame::encode_marginal(&rows);
    let payload = &request[FRAME_HEADER_BYTES..];

    let owned_memo: Mutex<HashMap<VoteRow, Vec<f64>>> = Mutex::new(HashMap::new());
    let arena_memo = Mutex::new(SigMemo::new());
    let mut scratch = ReadScratch::new();
    let mut out = Vec::new();

    // Warm both paths, and pin the equivalence: byte-identical replies.
    let owned_reply = owned_request(&session, payload, &owned_memo);
    arena_request(&session, payload, &arena_memo, &mut scratch, &mut out);
    assert_eq!(out, owned_reply, "arena reply != pre-arena reply");

    // Allocations per request, steady state. The owned path's count is
    // stable (same allocations every request), so one window over many
    // requests is exact; the arena path takes the noise-robust minimum.
    let (owned_allocs, ()) = allocations_in(|| {
        for _ in 0..ITERS {
            black_box(owned_request(&session, payload, &owned_memo));
        }
    });
    let baseline_allocs_per_req = owned_allocs as f64 / ITERS as f64;
    let arena_allocs_per_req = min_allocations_over(ROUNDS, || {
        arena_request(&session, payload, &arena_memo, &mut scratch, &mut out);
        black_box(out.len());
    }) as f64;

    // Time per request.
    let baseline_ns = median_ns_per_op(ROUNDS, ITERS, |iters| {
        for _ in 0..iters {
            black_box(owned_request(&session, payload, &owned_memo));
        }
    });
    let arena_ns = median_ns_per_op(ROUNDS, ITERS, |iters| {
        for _ in 0..iters {
            arena_request(&session, payload, &arena_memo, &mut scratch, &mut out);
            black_box(out.len());
        }
    });
    let speedup = baseline_ns / arena_ns;

    println!(
        "alloc hotpath: pre-arena {baseline_allocs_per_req:.1} allocs/req @ {baseline_ns:.0} \
         ns/req, arena {arena_allocs_per_req:.1} allocs/req @ {arena_ns:.0} ns/req \
         ({speedup:.2}x)"
    );

    snorkel_bench::report::emit(
        "alloc_hotpath",
        &[
            ("baseline_allocs_per_req", baseline_allocs_per_req),
            ("arena_allocs_per_req", arena_allocs_per_req),
            ("baseline_ns_per_req", baseline_ns),
            ("arena_ns_per_req", arena_ns),
            ("speedup", speedup),
        ],
    );

    // Ceiling on the arena path's steady-state allocations; CI sets 0.
    // Meaningful only in release builds (debug std can allocate where
    // release provably does not), so a debug run reports and skips.
    if let Ok(raw) = std::env::var("SNORKEL_ALLOC_MAX_PER_REQ") {
        let ceiling: f64 = raw
            .parse()
            .unwrap_or_else(|_| panic!("SNORKEL_ALLOC_MAX_PER_REQ={raw:?} is not a number"));
        if cfg!(debug_assertions) {
            println!(
                "debug build: skipping the SNORKEL_ALLOC_MAX_PER_REQ={ceiling} gate \
                 (enforced under --release)"
            );
        } else if arena_allocs_per_req > ceiling {
            eprintln!(
                "FAIL: arena read path costs {arena_allocs_per_req:.1} allocations/request, \
                 over the {ceiling:.1} ceiling (SNORKEL_ALLOC_MAX_PER_REQ)"
            );
            std::process::exit(1);
        } else {
            println!("arena allocations {arena_allocs_per_req:.1}/req ≤ {ceiling:.1} — ok");
        }
    }
}
