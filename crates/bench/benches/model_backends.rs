//! Label-model backend fit-cost comparison at deployment scale —
//! the numbers behind the README's backend table and the
//! `BENCH_model_backends.json` artifact.
//!
//! On a 100k×25 planted binary suite (mostly-unique vote patterns; set
//! `SNORKEL_BACKENDS_ROWS` / `SNORKEL_BACKENDS_LFS` to re-size), each
//! backend fits through the same prebuilt sharded plan:
//!
//! * `majority-vote` — no training at all (the floor).
//! * `moment` — one statistics pass + the closed-form triplet solve.
//! * `generative` — EM warm-up + damped-Newton to convergence (the
//!   exact MLE).
//!
//! The CI floor `SNORKEL_BACKENDS_MIN_SPEEDUP` gates the
//! moment-vs-generative fit ratio (acceptance: ≥10×); marginal quality
//! is recorded as the sup-norm gap between the two backends' posteriors
//! so the artifact shows what the speed costs.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snorkel_core::label_model::{LabelModel, MajorityVoteModel, MomentModel};
use snorkel_core::model::{GenerativeModel, LabelScheme, TrainConfig};
use snorkel_matrix::{LabelMatrix, LabelMatrixBuilder, ShardedMatrix, Vote};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn planted(m: usize, accs: &[f64], pl: f64, seed: u64) -> LabelMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = LabelMatrixBuilder::new(m, accs.len());
    for i in 0..m {
        let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
        for (j, &acc) in accs.iter().enumerate() {
            if rng.gen::<f64>() < pl {
                b.set(i, j, if rng.gen::<f64>() < acc { y } else { -y });
            }
        }
    }
    b.build()
}

fn median_secs<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let rows = env_usize("SNORKEL_BACKENDS_ROWS", 100_000);
    let n = env_usize("SNORKEL_BACKENDS_LFS", 25);
    let iters = 3;
    let accs: Vec<f64> = (0..n).map(|j| 0.9 - 0.35 * j as f64 / n as f64).collect();
    let lambda = planted(rows, &accs, 0.3, 7);
    let plan = ShardedMatrix::build(&lambda, 0);
    let cfg = TrainConfig::default();
    let scheme = LabelScheme::Binary;

    let mv_fit = median_secs(iters, || {
        let mut mv = MajorityVoteModel::new(n, scheme);
        mv.fit(&lambda, Some(&plan), &cfg)
    });
    let moment_fit = median_secs(iters, || {
        let mut mm = MomentModel::new(n, scheme);
        mm.fit(&lambda, Some(&plan), &cfg)
    });
    let generative_fit = median_secs(iters, || {
        let mut gm = GenerativeModel::new(n, scheme);
        gm.fit_with(&lambda, &plan, &cfg)
    });

    // Marginal quality gap between the two trained backends.
    let mut mm = MomentModel::new(n, scheme);
    mm.fit(&lambda, Some(&plan), &cfg);
    let mut gm = GenerativeModel::new(n, scheme);
    gm.fit_with(&lambda, &plan, &cfg);
    let approx = LabelModel::marginals(&mm, &lambda, Some(&plan));
    let exact = gm.marginals_with(&lambda, &plan);
    let sup_gap = approx
        .iter()
        .zip(&exact)
        .flat_map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y).abs()))
        .fold(0.0f64, f64::max);

    let speedup = generative_fit / moment_fit.max(1e-12);
    println!(
        "{rows}×{n} fit: majority-vote {:.3} ms, moment {:.1} ms, generative {:.1} ms \
         → moment {speedup:.0}× faster than generative (marginal sup gap {sup_gap:.4})",
        1e3 * mv_fit,
        1e3 * moment_fit,
        1e3 * generative_fit,
    );
    snorkel_bench::report::emit(
        "model_backends",
        &[
            ("rows", rows as f64),
            ("lfs", n as f64),
            ("majority_vote_fit_secs", mv_fit),
            ("moment_fit_secs", moment_fit),
            ("generative_fit_secs", generative_fit),
            ("moment_vs_generative_speedup", speedup),
            ("moment_marginal_sup_gap", sup_gap),
        ],
    );
    snorkel_bench::report::enforce_floor(
        "SNORKEL_BACKENDS_MIN_SPEEDUP",
        "moment-vs-generative fit",
        speedup,
    );
}
