//! Cost of the serving layer's per-request instrumentation — the
//! acceptance check that observability stays out of the `MARGINAL` hot
//! path's way.
//!
//! The instrumented loop runs the exact op sequence `handle_connection`
//! added around a request: verb-table lookup, request counter, latency
//! span (two clock reads + histogram + trace-ring entry), a `try_read`
//! in place of a plain lock (the uncontended lock-wait path records
//! nothing), and the `ERR` prefix check. The baseline loop runs the
//! same skeleton with all of that removed. The difference is the
//! per-request overhead; `SNORKEL_OBS_MAX_OVERHEAD_NS` (CI sets 100)
//! turns it into a hard ceiling.
//!
//! Allocation-freedom of the same ops is asserted separately, with a
//! counting global allocator, in `crates/obs/tests/no_alloc.rs`.

use std::hint::black_box;

use snorkel_obs::{trace_level, Registry, TraceLevel, TraceRing};

const ITERS: u64 = 2_000_000;
const ROUNDS: usize = 5;

/// Mirrors the serve layer's verb table: the lookup the request path
/// pays before touching any handle.
const VERBS: [&str; 11] = [
    "PING",
    "MARGINAL",
    "APPLY",
    "PREDICT",
    "PREDICT_TEXT",
    "REFRESH",
    "SNAPSHOT",
    "STATS",
    "METRICS",
    "SLOWLOG",
    "SHUTDOWN",
];

fn median_ns_per_op(rounds: usize, iters: u64, mut f: impl FnMut(u64)) -> f64 {
    let mut samples: Vec<f64> = (0..rounds)
        .map(|_| {
            let t = std::time::Instant::now();
            f(iters);
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    // A private registry so the measurement is self-contained; the ring
    // is the process-global one, exactly as in the server.
    let registry = Registry::new();
    let requests = registry.counter("bench_requests_total", &[("verb", "MARGINAL")]);
    let errors = registry.counter("bench_errors_total", &[("verb", "MARGINAL")]);
    let latency = registry.histogram("bench_request_seconds", &[("verb", "MARGINAL")]);
    let state = std::sync::RwLock::new(0u64);
    let ring = TraceRing::global();
    // Warm every path once so lazy init (ring slots, trace level read)
    // is outside the measured loops.
    ring.record("MARGINAL", 1);
    latency.record_ns(1);
    let _ = trace_level();

    let response = "OK gen=3 p=0.91,0.09";

    let baseline = median_ns_per_op(ROUNDS, ITERS, |iters| {
        for i in 0..iters {
            let verb = black_box(VERBS[(i % 2) as usize]);
            black_box(verb.len());
            let guard = state.read().unwrap();
            black_box(*guard);
            drop(guard);
            let response = black_box(response);
            black_box(response.len());
        }
    });

    let instrumented = median_ns_per_op(ROUNDS, ITERS, |iters| {
        for i in 0..iters {
            let verb = black_box(VERBS[(i % 2) as usize]);
            // Verb-table lookup, as in ServeObs::verb.
            let idx = VERBS.iter().position(|&v| v == verb).unwrap();
            black_box(idx);
            requests.inc();
            let start = std::time::Instant::now();
            // Uncontended try_read — the timed-lock helper's fast path.
            let guard = state.try_read().unwrap();
            black_box(*guard);
            drop(guard);
            let response = black_box(response);
            // Inlined request close-out, as in `record_request`.
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            latency.record_ns(ns);
            if trace_level() >= TraceLevel::Info {
                ring.record("MARGINAL", ns);
            }
            // Error-counter branch, as in `handle_connection`; the probe
            // response never matches, so only the comparison is paid.
            if response.starts_with("ERR") {
                errors.inc();
            }
            black_box(response.len());
        }
    });

    let overhead = (instrumented - baseline).max(0.0);
    println!(
        "obs overhead: baseline {baseline:.1} ns/req, instrumented {instrumented:.1} ns/req, \
         delta {overhead:.1} ns/req ({} recorded spans buffered)",
        ring.recorded()
    );
    assert_eq!(requests.get(), ITERS * ROUNDS as u64, "exact request count");

    snorkel_bench::report::emit(
        "obs_overhead",
        &[
            ("baseline_ns_per_req", baseline),
            ("instrumented_ns_per_req", instrumented),
            ("overhead_ns_per_req", overhead),
        ],
    );

    // Ceiling, not floor: fail when the delta exceeds the budget.
    if let Ok(raw) = std::env::var("SNORKEL_OBS_MAX_OVERHEAD_NS") {
        let ceiling: f64 = raw
            .parse()
            .unwrap_or_else(|_| panic!("SNORKEL_OBS_MAX_OVERHEAD_NS={raw:?} is not a number"));
        if overhead > ceiling {
            eprintln!(
                "FAIL: instrumentation overhead {overhead:.1} ns/req exceeds the \
                 {ceiling:.1} ns ceiling (SNORKEL_OBS_MAX_OVERHEAD_NS)"
            );
            std::process::exit(1);
        }
        println!("overhead {overhead:.1} ns/req ≤ {ceiling:.1} ns ceiling — ok");
    }
}
