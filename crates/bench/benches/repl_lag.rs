//! Replication costs: op-log replay throughput and live follower lag —
//! the numbers behind the `BENCH_repl_lag.json` artifact.
//!
//! Two measurements:
//!
//! * **replay** — decode + apply `SNORKEL_REPL_OPS` logged ops (the mix
//!   a follower tails: single-row `INGEST`s with a `REFRESH` every 64)
//!   into a session built to the log's base state, through the same
//!   [`snorkel_serve::repl::apply_op`] entry point the follower and WAL
//!   recovery use. Reported as ops/s; the CI floor
//!   `SNORKEL_REPL_MIN_REPLAY` gates it, so a regression that makes
//!   catch-up crawl fails the build.
//! * **live lag** — a real leader/follower pair over loopback TCP: the
//!   leader absorbs a burst of `SNORKEL_REPL_BURST` ingests while the
//!   follower tails `OP_LOG_SUBSCRIBE`; the lag number is how long the
//!   follower needs to reach the leader's tip LSN after the last write
//!   is acknowledged (steady-state drain, not cold bootstrap).
//!
//! Replay correctness (bit-identical marginals at every LSN) is proven
//! by `crates/serve/tests/repl_property.rs` and `repl_chaos.rs`; this
//! bench only prices it.

use std::time::Instant;

use snorkel_context::Corpus;
use snorkel_incr::{IncrementalSession, SessionConfig};
use snorkel_lf::BoxedLf;
use snorkel_nlp::tokenize;
use snorkel_serve::repl::apply_op;
use snorkel_serve::repl::wal::{encode_body, Op, Record};
use snorkel_serve::{Client, LabelServer, LfSpec, ServeConfig, Snapshot};

const SPECS: [&str; 4] = [
    "lf_causes KEYWORD 1 -1 causes,caused",
    "lf_treats KEYWORD -1 1 treats,treated",
    "lf_worsens KEYWORD 1 -1 worsens,aggravates",
    "lf_mentions KEYWORD 1 -1 mentions",
];

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn corpus(rows: usize) -> Corpus {
    let mut corpus = Corpus::new();
    let doc = corpus.add_document("repl-bench");
    for i in 0..rows {
        let verb = match i % 5 {
            0 | 1 => "causes",
            2 => "treats",
            3 => "worsens",
            _ => "mentions",
        };
        let text = format!("chem{} {} disease{}", i % 11, verb, i % 7);
        let s = corpus.add_sentence(doc, &text, tokenize(&text));
        let a = corpus.add_span(s, 0, 1, Some("Chemical"));
        let b = corpus.add_span(s, 2, 3, Some("Disease"));
        corpus.add_candidate(vec![a, b]);
    }
    corpus
}

fn specs() -> Vec<LfSpec> {
    SPECS
        .iter()
        .map(|s| LfSpec::parse(s).expect("spec"))
        .collect()
}

/// A deterministic base session with a spec-built (thaw-compatible)
/// suite, refreshed once — the state both a log's origin and a
/// follower's bootstrap share.
fn base_session(rows: usize) -> IncrementalSession {
    let corpus = corpus(rows);
    let ids: Vec<_> = corpus.candidate_ids().collect();
    let mut session = IncrementalSession::new(corpus, SessionConfig::default());
    session.ingest_candidates(&ids);
    for spec in specs() {
        let lf = spec.build().expect("build LF");
        session.add_lf_tagged(lf, spec.content_tag());
    }
    session.refresh();
    session
}

/// The op mix a long-lived follower tails: single-row ingests with a
/// periodic refresh. Each op is applied to a live leader session first,
/// so every encoded body carries the leader's true `gen_after` — replay
/// then checks generation agreement at every LSN, exactly as a real
/// follower does.
fn logged_bodies(rows: usize, ops: usize) -> Vec<Vec<u8>> {
    let mut leader = base_session(rows);
    let mut generation = 1u64; // the base refresh
    let mut bodies = Vec::with_capacity(ops);
    for k in 0..ops {
        let op = if k % 64 == 63 {
            Op::Refresh(None)
        } else {
            let i = rows + bodies.len();
            let text = format!("chem{} causes disease{}", i % 11, i % 7);
            Op::Ingest(vec![((0, 1), (2, 3), text)])
        };
        apply_op(&mut leader, &mut generation, &op).expect("leader apply");
        bodies.push(encode_body(1 + k as u64, generation, &op));
    }
    bodies
}

fn stats_lsn(client: &mut Client) -> u64 {
    let stats = client.request("STATS").expect("stats");
    stats
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("lsn="))
        .expect("lsn= in STATS")
        .parse()
        .expect("numeric lsn")
}

/// Decode + apply every body in LSN order; returns elapsed seconds.
fn replay(session: &mut IncrementalSession, bodies: &[Vec<u8>]) -> f64 {
    let mut generation = 1u64;
    let t = Instant::now();
    for body in bodies {
        let record = Record::decode_body(body).expect("well-formed body");
        apply_op(session, &mut generation, &record.op).expect("replay");
        assert_eq!(generation, record.gen_after, "replay diverged");
    }
    t.elapsed().as_secs_f64()
}

/// Leader + tailing follower over loopback; returns (burst, lag_secs).
fn live_lag(rows: usize, burst: usize) -> (usize, f64) {
    let dir = std::env::temp_dir().join(format!("snorkel-repl-lag-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let leader = LabelServer::start(
        base_session(rows),
        ServeConfig {
            wal_path: Some(dir.join("leader.wal")),
            snapshot_path: Some(dir.join("leader.snap")),
            ..ServeConfig::default()
        },
    )
    .expect("bind leader");
    let mut lc = Client::connect(leader.addr()).expect("connect leader");

    // Bootstrap point: one logged refresh, then a snapshot carrying the
    // replication mark — exactly what a follower deploy would thaw.
    assert!(lc.request("REFRESH").expect("refresh").starts_with("OK "));
    assert!(lc.request("SNAPSHOT").expect("snapshot").starts_with("OK "));
    let snapshot = Snapshot::read_file(&dir.join("leader.snap")).expect("read bootstrap snapshot");
    let mark = snapshot
        .repl
        .expect("replicated leader marks its snapshots");
    let lfs: Vec<BoxedLf> = snapshot
        .session
        .suite
        .iter()
        .map(|(name, _)| {
            let spec = specs()
                .into_iter()
                .find(|s| s.name() == name)
                .expect("spec");
            spec.build().expect("build LF")
        })
        .collect();
    let thawed = IncrementalSession::thaw(
        corpus(rows),
        SessionConfig::default(),
        snapshot.session,
        lfs,
    )
    .expect("thaw");
    let follower = LabelServer::start(
        thawed,
        ServeConfig {
            follow: Some(leader.addr().to_string()),
            wal_path: Some(dir.join("follower.wal")),
            repl_mark: Some(mark),
            ..ServeConfig::default()
        },
    )
    .expect("bind follower");
    let mut fc = Client::connect(follower.addr()).expect("connect follower");

    // Burst of single-row ingests on the leader (texts continue the
    // demo corpus so replayed spans always validate).
    for k in 0..burst {
        let i = rows + k;
        let reply = lc
            .request(&format!(
                "INGEST 0 1 2 3 chem{} causes disease{}",
                i % 11,
                i % 7
            ))
            .expect("ingest");
        assert!(reply.starts_with("OK "), "{reply}");
    }
    let tip = stats_lsn(&mut lc);
    let t = Instant::now();
    let deadline = Instant::now() + std::time::Duration::from_secs(120);
    while stats_lsn(&mut fc) < tip {
        assert!(Instant::now() < deadline, "follower never reached the tip");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let lag = t.elapsed().as_secs_f64();

    leader.shutdown().expect("leader shutdown");
    follower.shutdown().expect("follower shutdown");
    std::fs::remove_dir_all(&dir).ok();
    (burst, lag)
}

fn main() {
    let rows = env_usize("SNORKEL_REPL_ROWS", 2_000);
    let ops = env_usize("SNORKEL_REPL_OPS", 256);
    let burst = env_usize("SNORKEL_REPL_BURST", 64);

    let bodies = logged_bodies(rows, ops);
    let mut session = base_session(rows);
    let replay_secs = replay(&mut session, &bodies);
    let replay_rate = ops as f64 / replay_secs.max(1e-12);
    println!(
        "replay: {ops} ops over {rows} base rows in {:.3} s → {replay_rate:.0} ops/s",
        replay_secs
    );

    let (burst, lag_secs) = live_lag(rows, burst);
    println!(
        "live lag: follower drained a {burst}-ingest burst {lag_secs:.3} s \
         after the leader's last ack"
    );

    snorkel_bench::report::emit(
        "repl_lag",
        &[
            ("rows", rows as f64),
            ("replay_ops", ops as f64),
            ("replay_secs", replay_secs),
            ("replay_ops_per_sec", replay_rate),
            ("live_burst_ops", burst as f64),
            ("live_lag_secs", lag_secs),
        ],
    );
    snorkel_bench::report::enforce_floor(
        "SNORKEL_REPL_MIN_REPLAY",
        "op-log replay throughput (ops/s)",
        replay_rate,
    );
}
