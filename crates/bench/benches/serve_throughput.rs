//! Serving throughput: connections × protocol plane × batching.
//!
//! Starts one in-process worker-pool server, then drives it three ways
//! from N concurrent client connections (barrier-started, so every
//! connection hammers simultaneously):
//!
//! 1. **text single** — one `MARGINAL` line per round trip (the v1
//!    wire protocol and the baseline the floor is measured against),
//! 2. **binary single** — one `OP_MARGINAL` frame carrying one row,
//! 3. **binary batched** — one `OP_MARGINAL` frame carrying
//!    `SNORKEL_SERVE_BATCH` rows (default 32).
//!
//! Each mode reports items/sec (an *item* is one labeled vote row, so
//! the three numbers are directly comparable) and p50/p99 round-trip
//! latency. `SNORKEL_SERVE_MIN_SPEEDUP` gates batched-binary
//! throughput against text-single — the CI floor behind ROADMAP item
//! 1's "amortize syscalls, parsing, and lock acquisition" claim.
//!
//! Knobs: `SNORKEL_SERVE_CONNS` (default 16; CI uses 64),
//! `SNORKEL_SERVE_BATCH` (default 32), `SNORKEL_SERVE_ITEMS` (items
//! per connection per mode, default 512), `SNORKEL_SERVE_ROWS`
//! (corpus rows, default 512).

use std::sync::{Arc, Barrier};
use std::time::Instant;

use snorkel_context::{CandidateId, Corpus};
use snorkel_core::optimizer::ModelingStrategy;
use snorkel_incr::{IncrementalSession, SessionConfig};
use snorkel_nlp::tokenize;
use snorkel_serve::{
    frame, BinReply, Client, FrameClient, LabelServer, LfSpec, ServeConfig, VoteRow,
};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .map(|raw| {
            raw.parse()
                .unwrap_or_else(|_| panic!("{name}={raw:?} is not a number"))
        })
        .unwrap_or(default)
}

fn build_corpus(n: usize) -> Corpus {
    let mut corpus = Corpus::new();
    let doc = corpus.add_document("d");
    for i in 0..n {
        let verb = match i % 5 {
            0 | 1 => "causes",
            2 => "treats",
            3 => "worsens",
            _ => "mentions",
        };
        let text = format!("alpha{} {} beta{}", i % 7, verb, i % 5);
        let s = corpus.add_sentence(doc, &text, tokenize(&text));
        let a = corpus.add_span(s, 0, 1, Some("A"));
        let b = corpus.add_span(s, 2, 3, Some("B"));
        corpus.add_candidate(vec![a, b]);
    }
    corpus
}

fn primed_session(rows: usize) -> IncrementalSession {
    let corpus = build_corpus(rows);
    let ids: Vec<CandidateId> = corpus.candidate_ids().collect();
    let mut session = IncrementalSession::new(
        corpus,
        SessionConfig {
            force_strategy: Some(ModelingStrategy::GenerativeModel {
                epsilon: 0.0,
                correlations: Vec::new(),
                strengths: Vec::new(),
            }),
            ..SessionConfig::default()
        },
    );
    session.ingest_candidates(&ids);
    for spec in [
        "lf_causes KEYWORD 1 -1 causes",
        "lf_treats KEYWORD -1 1 treats",
        "lf_worsens KEYWORD 1 -1 worsens",
    ] {
        let spec = LfSpec::parse(spec).expect("valid spec");
        session.add_lf_tagged(spec.build().expect("buildable"), spec.content_tag());
    }
    session.refresh();
    session
}

/// Deterministic deployment-shaped traffic: queries rotate over a small
/// set of distinct vote signatures (cols ⊆ {0,1,2}, votes ±1), the
/// regime the posterior memo exists for.
fn vote_row(i: usize) -> VoteRow {
    const SIGS: [(&[u32], &[i8]); 8] = [
        (&[0], &[1]),
        (&[1], &[-1]),
        (&[2], &[1]),
        (&[0, 1], &[1, -1]),
        (&[0, 2], &[-1, 1]),
        (&[1, 2], &[-1, -1]),
        (&[0, 1, 2], &[1, -1, 1]),
        (&[0, 1, 2], &[-1, 1, -1]),
    ];
    let (cols, votes) = SIGS[i % SIGS.len()];
    (cols.to_vec(), votes.to_vec())
}

struct ModeResult {
    items_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Run one mode: `conns` threads, each performing round trips until it
/// has pushed `items` vote rows through, all released together.
/// `round_trip(conn_idx, item_idx)` returns how many items that trip
/// carried.
fn run_mode(
    conns: usize,
    items: usize,
    connect: impl Fn() -> Box<dyn FnMut(usize) -> usize + Send> + Sync,
) -> ModeResult {
    let barrier = Arc::new(Barrier::new(conns + 1));
    let mut handles = Vec::with_capacity(conns);
    for _ in 0..conns {
        let mut trip = connect();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut latencies_ns = Vec::new();
            let mut done = 0usize;
            while done < items {
                let t = Instant::now();
                let n = trip(done);
                latencies_ns.push(t.elapsed().as_nanos() as u64);
                done += n;
            }
            (done, latencies_ns)
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let mut total_items = 0usize;
    let mut latencies: Vec<u64> = Vec::new();
    for h in handles {
        let (done, lat) = h.join().expect("client thread");
        total_items += done;
        latencies.extend(lat);
    }
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let pct = |q: f64| -> f64 {
        let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
        latencies[idx] as f64 / 1e6
    };
    ModeResult {
        items_per_sec: total_items as f64 / elapsed,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
    }
}

fn main() {
    let conns = env_usize("SNORKEL_SERVE_CONNS", 16);
    let batch = env_usize("SNORKEL_SERVE_BATCH", 32).max(1);
    let items = env_usize("SNORKEL_SERVE_ITEMS", 512);
    let rows = env_usize("SNORKEL_SERVE_ROWS", 512);

    let server = LabelServer::start(
        primed_session(rows),
        ServeConfig {
            max_connections: conns + 8,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    // Warm the posterior memo so every mode measures serving, not the
    // first-touch posterior computations.
    {
        let rows: Vec<VoteRow> = (0..8).map(vote_row).collect();
        let mut warm = FrameClient::connect(addr).expect("warm connect");
        match warm.marginal(&rows).expect("warm batch") {
            BinReply::Marginal { .. } => {}
            other => panic!("unexpected warmup reply {other:?}"),
        }
    }

    println!("serve_throughput: conns={conns} batch={batch} items/conn={items} corpus={rows}");

    let text = run_mode(conns, items, || {
        let mut client = Client::connect(addr).expect("text connect");
        Box::new(move |i| {
            let (cols, votes) = vote_row(i);
            let entries: Vec<String> = cols
                .iter()
                .zip(&votes)
                .map(|(c, v)| format!("{c}:{v}"))
                .collect();
            let reply = client
                .request(&format!("MARGINAL {}", entries.join(",")))
                .expect("text round trip");
            assert!(reply.starts_with("OK "), "{reply}");
            1
        })
    });
    println!(
        "  text single:    {:>10.0} items/s  p50 {:.3} ms  p99 {:.3} ms",
        text.items_per_sec, text.p50_ms, text.p99_ms
    );

    let bin_single = run_mode(conns, items, || {
        let mut client = FrameClient::connect(addr).expect("frame connect");
        Box::new(move |i| {
            match client
                .marginal(std::slice::from_ref(&vote_row(i)))
                .expect("binary round trip")
            {
                BinReply::Marginal { .. } => 1,
                other => panic!("unexpected reply {other:?}"),
            }
        })
    });
    println!(
        "  binary single:  {:>10.0} items/s  p50 {:.3} ms  p99 {:.3} ms",
        bin_single.items_per_sec, bin_single.p50_ms, bin_single.p99_ms
    );

    let bin_batched = run_mode(conns, items, || {
        let mut client = FrameClient::connect(addr).expect("frame connect");
        Box::new(move |i| {
            let rows: Vec<VoteRow> = (i..i + batch).map(vote_row).collect();
            match client.marginal(&rows).expect("batched round trip") {
                BinReply::Marginal { probs, .. } => probs.len(),
                other => panic!("unexpected reply {other:?}"),
            }
        })
    });
    println!(
        "  binary batch={batch}: {:>8.0} items/s  p50 {:.3} ms  p99 {:.3} ms",
        bin_batched.items_per_sec, bin_batched.p50_ms, bin_batched.p99_ms
    );

    let speedup_batched = bin_batched.items_per_sec / text.items_per_sec;
    let speedup_single = bin_single.items_per_sec / text.items_per_sec;
    println!(
        "  batched binary vs text single: {speedup_batched:.2}× \
         (binary single vs text single: {speedup_single:.2}×)"
    );

    // Sanity-check the amortization claim itself, not just the wire
    // format: `frame::encode_marginal` exists and replies decode — a
    // malformed frame would have panicked every round trip above.
    let _ = frame::encode_ping();

    server.shutdown().expect("clean shutdown");

    snorkel_bench::report::emit(
        "serve_throughput",
        &[
            ("conns", conns as f64),
            ("batch", batch as f64),
            ("items_per_conn", items as f64),
            ("text_single_items_per_sec", text.items_per_sec),
            ("text_single_p50_ms", text.p50_ms),
            ("text_single_p99_ms", text.p99_ms),
            ("binary_single_items_per_sec", bin_single.items_per_sec),
            ("binary_single_p50_ms", bin_single.p50_ms),
            ("binary_single_p99_ms", bin_single.p99_ms),
            ("binary_batched_items_per_sec", bin_batched.items_per_sec),
            ("binary_batched_p50_ms", bin_batched.p50_ms),
            ("binary_batched_p99_ms", bin_batched.p99_ms),
            ("speedup_batched_vs_text", speedup_batched),
            ("speedup_single_vs_text", speedup_single),
        ],
    );

    snorkel_bench::report::enforce_floor(
        "SNORKEL_SERVE_MIN_SPEEDUP",
        "batched binary vs text single throughput",
        speedup_batched,
    );
}
