//! Cold vs. incremental refresh latency — the `snorkel-incr` acceptance
//! numbers, measured at full scale: a 25-LF suite over the synthetic
//! 10k-candidate CDR corpus.
//!
//! * `cold_pipeline/run_25lfs_10k` — a batch `Pipeline::run` (LF
//!   application + strategy + training from scratch), re-run per sample.
//! * `incremental/refresh_after_1lf_edit_25lfs_10k` — one LF edited in a
//!   primed `IncrementalSession`, then `refresh()` (1 column
//!   re-executed, Λ patched in place, training warm-started).
//! * `incremental/refresh_noop` — a refresh with nothing changed (the
//!   floor: cache bookkeeping + advantage bound + warm fit).
//!
//! The acceptance target (≥5× on the 1-LF edit) is asserted in
//! `crates/incr/tests/session_test.rs`; this bench measures the actual
//! ratio in release mode. Run with `cargo bench --bench incremental`.

use criterion::{criterion_group, Criterion};

use snorkel_core::optimizer::OptimizerConfig;
use snorkel_core::pipeline::{Pipeline, PipelineConfig};
use snorkel_datasets::{cdr, TaskConfig};
use snorkel_incr::{IncrementalSession, SessionConfig};
use snorkel_lf::{lf, BoxedLf};

const CANDIDATES: usize = 10_000;
const N_LFS: usize = 25;

fn optimizer() -> OptimizerConfig {
    OptimizerConfig {
        skip_structure_search: true,
        ..OptimizerConfig::default()
    }
}

/// CDR LFs are deterministic per spec (seed only shapes the corpus), so
/// a tiny spare build hands out behaviorally identical LF copies.
fn lf_number_10() -> BoxedLf {
    let spare = cdr::build(TaskConfig {
        num_candidates: 10,
        seed: 3,
    });
    spare.lfs.into_iter().nth(10).expect("LF 10")
}

/// A dev-loop refinement of an existing LF: same heuristic, now
/// abstaining on a hash-derived tenth of candidates. `salt` varies the
/// edit so each bench iteration is a genuinely new LF version.
fn refine(inner: BoxedLf, salt: u64) -> BoxedLf {
    lf(inner.name().to_string(), move |x| {
        // Cheap deterministic ~10% abstain mask, varied by the salt.
        if x.sentence().text().len() as u64 % 10 == salt % 10 {
            0
        } else {
            inner.label(x)
        }
    })
}

fn bench_cold_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("cold_pipeline");
    group.sample_size(10);
    let task = cdr::build(TaskConfig {
        num_candidates: CANDIDATES,
        seed: 3,
    });
    let suite: Vec<BoxedLf> = task.lfs.into_iter().take(N_LFS).collect();
    let pipeline = Pipeline::new(PipelineConfig {
        optimizer: optimizer(),
        ..PipelineConfig::default()
    });
    group.bench_function("run_25lfs_10k", |b| {
        b.iter(|| pipeline.run(&suite, &task.corpus, &task.candidates))
    });
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    let task = cdr::build(TaskConfig {
        num_candidates: CANDIDATES,
        seed: 3,
    });

    let mut session = IncrementalSession::new(
        task.corpus,
        SessionConfig {
            optimizer: optimizer(),
            ..SessionConfig::default()
        },
    );
    session.ingest_candidates(&task.candidates);
    for (j, f) in task.lfs.into_iter().take(N_LFS).enumerate() {
        session.add_lf_tagged(f, j as u64);
    }
    session.refresh(); // prime cache + model

    let mut salt = 0u64;
    group.bench_function("refresh_after_1lf_edit_25lfs_10k", |b| {
        b.iter(|| {
            salt += 1;
            session.edit_lf(refine(lf_number_10(), salt));
            session.refresh()
        })
    });

    group.bench_function("refresh_noop", |b| b.iter(|| session.refresh()));
    group.finish();
}

criterion_group!(benches, bench_cold_pipeline, bench_incremental);

/// Explicit median timing of cold-pipeline vs one-LF-edit refresh, for
/// the `BENCH_incremental.json` artifact and the CI regression floor
/// (`SNORKEL_INCR_MIN_SPEEDUP`). Separate from the criterion groups so
/// the recorded numbers come from one instrumented comparison instead of
/// scraped output.
fn measure_and_record() {
    let iters = 3;
    let task = cdr::build(TaskConfig {
        num_candidates: CANDIDATES,
        seed: 3,
    });
    let suite_source = cdr::build(TaskConfig {
        num_candidates: CANDIDATES,
        seed: 3,
    });
    let suite: Vec<BoxedLf> = suite_source.lfs.into_iter().take(N_LFS).collect();
    let pipeline = Pipeline::new(PipelineConfig {
        optimizer: optimizer(),
        ..PipelineConfig::default()
    });
    let cold = median_secs(iters, || {
        pipeline.run(&suite, &task.corpus, &task.candidates)
    });

    let mut session = IncrementalSession::new(
        task.corpus.clone(),
        SessionConfig {
            optimizer: optimizer(),
            ..SessionConfig::default()
        },
    );
    session.ingest_candidates(&task.candidates);
    let lf_source = cdr::build(TaskConfig {
        num_candidates: CANDIDATES,
        seed: 3,
    });
    for (j, f) in lf_source.lfs.into_iter().take(N_LFS).enumerate() {
        session.add_lf_tagged(f, j as u64);
    }
    session.refresh(); // prime
    let mut salt = 1000u64;
    let refresh = median_secs(iters, || {
        salt += 1;
        session.edit_lf(refine(lf_number_10(), salt));
        session.refresh()
    });

    let speedup = cold / refresh.max(1e-12);
    println!(
        "refresh-vs-cold: cold {:.1} ms, 1-LF-edit refresh {:.1} ms, speedup {speedup:.1}×",
        cold * 1e3,
        refresh * 1e3
    );
    snorkel_bench::report::emit(
        "incremental",
        &[
            ("cold_pipeline_secs", cold),
            ("refresh_secs", refresh),
            ("refresh_vs_cold_speedup", speedup),
            ("rows", CANDIDATES as f64),
            ("lfs", N_LFS as f64),
        ],
    );
    snorkel_bench::report::enforce_floor("SNORKEL_INCR_MIN_SPEEDUP", "refresh-vs-cold", speedup);
}

fn median_secs<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = std::time::Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    benches();
    measure_and_record();
}
