//! Million-candidate scale-out benchmark: pattern-deduplicated sharded
//! inference/training vs the row-wise baseline on a DryBell-shaped
//! synthetic corpus (huge row count, few distinct vote signatures).
//!
//! Run with `cargo bench -p snorkel-bench --bench scaleout`. Sizes are
//! env-tunable so CI can smoke-test the same binary at small scale:
//!
//! * `SNORKEL_SCALEOUT_ROWS`     — corpus rows (default 1_000_000)
//! * `SNORKEL_SCALEOUT_LFS`      — LF columns (default 25)
//! * `SNORKEL_SCALEOUT_PATTERNS` — base signatures (default 2_000)
//! * `SNORKEL_SCALEOUT_SHARDS`   — shard count (default 0 = all cores)
//!
//! Custom harness (no criterion): each stage is timed over a few
//! iterations and the median is reported, plus the row-wise / scale-out
//! speedup for `marginals`, `fit`, and the combined workload — the
//! acceptance target is ≥4× combined at 1M×25.

use std::time::{Duration, Instant};

use snorkel_core::model::{GenerativeModel, LabelScheme, Scaleout, TrainConfig};
use snorkel_datasets::synthetic::pattern_sparse_matrix;
use snorkel_matrix::{LabelMatrix, ShardedMatrix};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn median_time<R>(iters: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        samples.push(t.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

fn fmt(d: Duration) -> String {
    if d.as_secs_f64() >= 1.0 {
        format!("{:.2} s", d.as_secs_f64())
    } else {
        format!("{:.1} ms", d.as_secs_f64() * 1e3)
    }
}

fn main() {
    let rows = env_usize("SNORKEL_SCALEOUT_ROWS", 1_000_000);
    let lfs = env_usize("SNORKEL_SCALEOUT_LFS", 25);
    let patterns = env_usize("SNORKEL_SCALEOUT_PATTERNS", 2_000);
    let shards = env_usize("SNORKEL_SCALEOUT_SHARDS", 0);
    // Fewer fit repetitions at full scale — the row-wise baseline runs
    // for seconds per fit there.
    let fit_iters = if rows > 200_000 { 1 } else { 3 };

    println!("building {rows}×{lfs} pattern-sparse corpus ({patterns} base signatures)…");
    let t = Instant::now();
    let (lambda, _) = pattern_sparse_matrix(rows, lfs, patterns, 0.12, 0.75, 0.01, 7);
    println!(
        "  corpus built in {} ({} non-abstain votes, density {:.2})",
        fmt(t.elapsed()),
        lambda.nnz(),
        lambda.label_density()
    );

    let t = Instant::now();
    let plan = ShardedMatrix::build(&lambda, shards);
    println!(
        "  sharded plan: {} shards, {} unique patterns, dedup ratio {:.1} (built in {})",
        plan.num_shards(),
        plan.num_patterns(),
        plan.dedup_ratio(),
        fmt(t.elapsed()),
    );

    let rw_cfg = TrainConfig {
        scaleout: Scaleout::RowWise,
        ..TrainConfig::default()
    };
    let sh_cfg = TrainConfig {
        scaleout: Scaleout::Sharded { shards },
        ..TrainConfig::default()
    };

    // ---------------- fit ----------------
    let fit_rowwise = median_time(fit_iters, || {
        let mut gm = GenerativeModel::new(lfs, LabelScheme::Binary);
        gm.fit(&lambda, &rw_cfg);
        gm
    });
    let fit_sharded = median_time(fit_iters, || {
        let mut gm = GenerativeModel::new(lfs, LabelScheme::Binary);
        gm.fit_with(&lambda, &plan, &sh_cfg);
        gm
    });
    println!("fit/rowwise          {}", fmt(fit_rowwise));
    println!("fit/dedup_sharded    {}", fmt(fit_sharded));

    // ---------------- marginals ----------------
    let mut gm = GenerativeModel::new(lfs, LabelScheme::Binary);
    gm.fit_with(&lambda, &plan, &sh_cfg);
    let marg_rowwise = median_time(3, || gm.marginals_rowwise(&lambda));
    let marg_sharded = median_time(3, || gm.marginals_with(&lambda, &plan));
    println!("marginals/rowwise    {}", fmt(marg_rowwise));
    println!("marginals/dedup      {}", fmt(marg_sharded));

    // Output equivalence (the property the speedup is allowed to rely
    // on): inference bit-identical under fixed weights.
    check_identical(&gm, &lambda, &plan);

    let s_fit = fit_rowwise.as_secs_f64() / fit_sharded.as_secs_f64().max(1e-12);
    let s_marg = marg_rowwise.as_secs_f64() / marg_sharded.as_secs_f64().max(1e-12);
    let combined = (fit_rowwise + marg_rowwise).as_secs_f64()
        / (fit_sharded + marg_sharded).as_secs_f64().max(1e-12);
    println!("scaleout speedup: fit {s_fit:.1}×, marginals {s_marg:.1}×, combined {combined:.1}×");

    snorkel_bench::report::emit(
        "scaleout",
        &[
            ("rows", rows as f64),
            ("lfs", lfs as f64),
            ("unique_patterns", plan.num_patterns() as f64),
            ("dedup_ratio", plan.dedup_ratio()),
            ("fit_rowwise_secs", fit_rowwise.as_secs_f64()),
            ("fit_sharded_secs", fit_sharded.as_secs_f64()),
            ("marginals_rowwise_secs", marg_rowwise.as_secs_f64()),
            ("marginals_sharded_secs", marg_sharded.as_secs_f64()),
            ("fit_speedup", s_fit),
            ("marginals_speedup", s_marg),
            ("combined_speedup", combined),
        ],
    );
    snorkel_bench::report::enforce_floor(
        "SNORKEL_SCALEOUT_MIN_SPEEDUP",
        "dedup-vs-rowwise combined",
        combined,
    );
}

fn check_identical(gm: &GenerativeModel, lambda: &LabelMatrix, plan: &ShardedMatrix) {
    let a = gm.marginals_rowwise(lambda);
    let b = gm.marginals_with(lambda, plan);
    assert_eq!(a, b, "dedup marginals must be bit-identical to row-wise");
    println!("  (dedup marginals verified bit-identical to row-wise)");
}
