//! Bench-result artifacts and regression floors.
//!
//! CI runs the smoke benches on every push; these helpers make the
//! numbers durable and enforceable:
//!
//! * [`emit`] writes `BENCH_<name>.json` into `$SNORKEL_BENCH_JSON_DIR`
//!   (no-op when unset) — the artifact CI uploads, starting the bench
//!   trajectory record.
//! * [`enforce_floor`] reads a floor from an env var and exits non-zero
//!   when a measured speedup regresses below it — the gate that keeps
//!   "incremental beats cold" and "dedup beats row-wise" true claims.

use std::io::Write;

/// Write `BENCH_<name>.json` with the given numeric fields (plus a
/// `"name"` field and a `"metrics"` field holding the process-global
/// Prometheus exposition, so every artifact records the run's internal
/// counters/timings alongside its headline numbers) into the directory
/// named by `SNORKEL_BENCH_JSON_DIR`. Does nothing when the variable is
/// unset; panics on I/O failure (CI must notice a missing artifact).
pub fn emit(name: &str, fields: &[(&str, f64)]) {
    let Ok(dir) = std::env::var("SNORKEL_BENCH_JSON_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).expect("create bench JSON dir");
    let mut body = String::from("{");
    body.push_str(&format!("\"name\":\"{name}\""));
    for (key, value) in fields {
        // JSON has no NaN/Inf; clamp to null for robustness.
        if value.is_finite() {
            body.push_str(&format!(",\"{key}\":{value}"));
        } else {
            body.push_str(&format!(",\"{key}\":null"));
        }
    }
    body.push_str(&format!(
        ",\"metrics\":\"{}\"",
        json_escape(&snorkel_obs::global().expose())
    ));
    body.push_str("}\n");
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut f = std::fs::File::create(&path).expect("create bench JSON");
    f.write_all(body.as_bytes()).expect("write bench JSON");
    println!("bench artifact: {}", path.display());
}

/// Minimal JSON string escaping for the embedded exposition text.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 16);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// If `env` is set, parse it as an `f64` floor and exit(1) when
/// `value < floor`. Prints the verdict either way so CI logs show the
/// margin.
pub fn enforce_floor(env: &str, what: &str, value: f64) {
    let Ok(raw) = std::env::var(env) else {
        return;
    };
    let floor: f64 = raw
        .parse()
        .unwrap_or_else(|_| panic!("{env}={raw:?} is not a number"));
    if value < floor {
        eprintln!("FAIL: {what} speedup {value:.2}× is below the {floor:.2}× floor ({env})");
        std::process::exit(1);
    }
    println!("{what} speedup {value:.2}× ≥ {floor:.2}× floor ({env}) — ok");
}
