//! The §3 wall-clock claims: the optimizer's 1.8× pipeline speedup
//! (skipping generative training on Chem) and the elbow point's
//! training-time savings on the ε sweep.

use std::time::Instant;

use snorkel_core::model::{GenerativeModel, LabelScheme, TrainConfig};
use snorkel_core::optimizer::{elbow_point, ModelingStrategy, OptimizerConfig};
use snorkel_core::pipeline::{Pipeline, PipelineConfig};
use snorkel_core::structure::{structure_sweep, StructureConfig};
use snorkel_datasets::{chem, spouses, user_study};
use snorkel_lf::LfExecutor;

use crate::experiments::Scale;
use crate::markdown_table;

/// Speedup report: optimizer-gated pipeline vs always-train-GM on Chem,
/// and elbow-ε vs smallest-ε generative training cost on CDR.
pub fn speedup(scale: Scale) -> String {
    let mut out = String::from("## §3 timing claims\n\n");

    // Chem: MV (optimizer) vs forced GM, measured as full pipeline
    // executions — LF application included, as in the paper's
    // "per pipeline execution" framing.
    let task = chem::build(scale.task());
    let train_ids: Vec<_> = task.train.iter().map(|&r| task.candidates[r]).collect();
    let optimized = Pipeline::new(PipelineConfig {
        optimizer: OptimizerConfig {
            skip_structure_search: true,
            ..OptimizerConfig::default()
        },
        ..PipelineConfig::default()
    });
    let forced = Pipeline::new(PipelineConfig {
        force_strategy: Some(ModelingStrategy::GenerativeModel {
            epsilon: 0.0,
            correlations: Vec::new(),
            strengths: Vec::new(),
        }),
        ..PipelineConfig::default()
    });
    let t0 = Instant::now();
    let (_, report_opt) = optimized.run(&task.lfs, &task.corpus, &train_ids);
    let opt_time = t0.elapsed();
    let t1 = Instant::now();
    let (_, report_gm) = forced.run(&task.lfs, &task.corpus, &train_ids);
    let gm_time = t1.elapsed();
    let ratio = gm_time.as_secs_f64() / opt_time.as_secs_f64().max(1e-9);
    out.push_str(&format!(
        "### Chem pipeline speedup (paper: 1.8×)\n\n\
         Optimizer chose {:?}. Full pipeline (LF application + modeling): \
         optimizer-gated {:.1} ms vs always-GM {:.1} ms → **{:.1}× speedup** \
         (modeling stage alone: {:.1} ms vs {:.1} ms).\n\n",
        match report_opt.strategy {
            ModelingStrategy::MajorityVote => "MV",
            ModelingStrategy::MomentMatching => "MoM",
            ModelingStrategy::GenerativeModel { .. } => "GM",
        },
        1e3 * opt_time.as_secs_f64(),
        1e3 * gm_time.as_secs_f64(),
        ratio,
        1e3 * (report_opt.timings.strategy_selection + report_opt.timings.training).as_secs_f64(),
        1e3 * (report_gm.timings.strategy_selection + report_gm.timings.training).as_secs_f64(),
    ));

    // Spouses user-study pool (the paper's 125-LF redundant suite, where
    // fitting at ε = 0.02 took 57 minutes vs 4 at ε = 0.5): training
    // cost at the elbow ε vs at the smallest ε.
    let task = spouses::build(scale.task());
    let participants = user_study::sample_participants(scale.seed.wrapping_add(77));
    let pool = user_study::pooled_lfs(&participants, scale.seed.wrapping_add(78));
    let train_ids: Vec<_> = task.train.iter().map(|&r| task.candidates[r]).collect();
    let lambda = LfExecutor::new().apply(&pool, &task.corpus, &train_ids);
    let epsilons: Vec<f64> = (1..=25).rev().map(|i| i as f64 * 0.02).collect();
    let t2 = Instant::now();
    let sweep = structure_sweep(&lambda, &epsilons, &StructureConfig::default());
    let sweep_time = t2.elapsed();
    let counts: Vec<(f64, usize)> = sweep.iter().map(|(e, c, _)| (*e, *c)).collect();
    let elbow = elbow_point(&counts);
    let elbow_pairs = &sweep[elbow].2.pairs;
    let full_pairs = &sweep.last().expect("non-empty sweep").2.pairs;

    let time_fit = |pairs: &[(usize, usize)]| {
        let t = Instant::now();
        let mut gm =
            GenerativeModel::new(lambda.num_lfs(), LabelScheme::Binary).with_correlations(pairs);
        gm.fit(&lambda, &TrainConfig::default());
        t.elapsed()
    };
    let elbow_time = time_fit(elbow_pairs);
    let full_time = time_fit(full_pairs);
    let saving = 100.0 * (1.0 - elbow_time.as_secs_f64() / full_time.as_secs_f64().max(1e-9));

    out.push_str(&format!(
        "### User-study-pool structure tradeoff, {} LFs (paper: elbow saves up to 61% of training time)\n\n",
        lambda.num_lfs(),
    ));
    out.push_str(&markdown_table(
        &["Quantity", "Value"],
        &[
            vec![
                "ε sweep (25 values)".into(),
                format!("{:.1} ms", 1e3 * sweep_time.as_secs_f64()),
            ],
            vec![
                format!(
                    "GM fit at elbow ε={:.2} ({} correlations)",
                    sweep[elbow].0,
                    elbow_pairs.len()
                ),
                format!("{:.1} ms", 1e3 * elbow_time.as_secs_f64()),
            ],
            vec![
                format!(
                    "GM fit at ε={:.2} ({} correlations)",
                    sweep.last().unwrap().0,
                    full_pairs.len()
                ),
                format!("{:.1} ms", 1e3 * full_time.as_secs_f64()),
            ],
            vec![
                "Training-time saving at elbow".into(),
                format!("{saving:.0}%"),
            ],
        ],
    ));
    out
}
