//! One function per paper table/figure; each returns the rendered
//! report so the thin binaries (and `run_all`) can print or save it.

pub mod figures;
pub mod study;
pub mod tables;
pub mod timing;

/// Experiment scale, read from `SNORKEL_SCALE` (candidates per relation
/// task) and `SNORKEL_SEED`. Defaults keep every binary laptop-fast; the
/// paper's own candidate counts (Table 2) are 4–100× larger and can be
/// requested via the environment.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Candidates per relation-extraction task.
    pub candidates: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Read from the environment (`SNORKEL_SCALE`, `SNORKEL_SEED`).
    pub fn from_env() -> Self {
        let candidates = std::env::var("SNORKEL_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(2500);
        let seed = std::env::var("SNORKEL_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        Scale { candidates, seed }
    }

    /// Task config at this scale.
    pub fn task(&self) -> snorkel_datasets::TaskConfig {
        snorkel_datasets::TaskConfig {
            num_candidates: self.candidates,
            seed: self.seed,
        }
    }
}
