//! The §4.2 user study (Figures 7–8, Table 8).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use snorkel_core::model::{GenerativeModel, LabelScheme, TrainConfig};
use snorkel_datasets::user_study::{participant_lfs, sample_participants, Education, SkillLevel};
use snorkel_datasets::{spouses, RelationTask};
use snorkel_disc::metrics::f1_score;
use snorkel_disc::{LogisticRegression, TextFeaturizer};
use snorkel_lf::{LfExecutor, Vote};
use snorkel_linalg::Summary;

use crate::experiments::Scale;
use crate::{best_f1_threshold, logreg_config, markdown_table, predict_at, TEXT_BUCKETS};

/// Outcome for one simulated participant.
#[derive(Clone, Debug)]
pub struct ParticipantOutcome {
    /// Participant id.
    pub id: usize,
    /// Derived skill score.
    pub skill: f64,
    /// Number of LFs the participant wrote.
    pub num_lfs: usize,
    /// End-model F1 on the Spouses test split.
    pub f1: f64,
    /// Education bucket.
    pub education: Education,
    /// Python skill.
    pub python: SkillLevel,
    /// ML experience.
    pub machine_learning: SkillLevel,
    /// Text-mining experience.
    pub text_mining: SkillLevel,
}

/// Train one participant's Snorkel pipeline end to end.
fn run_participant(
    task: &RelationTask,
    x_train: &[snorkel_linalg::SparseVec],
    x_dev: &[snorkel_linalg::SparseVec],
    x_test: &[snorkel_linalg::SparseVec],
    gold_dev: &[Vote],
    gold_test: &[Vote],
    p: &snorkel_datasets::user_study::Participant,
    seed: u64,
) -> ParticipantOutcome {
    let lfs = participant_lfs(p, seed);
    let train_ids: Vec<_> = task.train.iter().map(|&r| task.candidates[r]).collect();
    let lambda = LfExecutor::new().apply(&lfs, &task.corpus, &train_ids);
    let mut gm = GenerativeModel::new(lambda.num_lfs(), LabelScheme::Binary);
    let cfg = TrainConfig {
        class_balance: snorkel_core::model::ClassBalance::Uniform,
        ..TrainConfig::default()
    };
    gm.fit(&lambda, &cfg);
    let soft = gm.prob_positive(&lambda);
    let mut disc = LogisticRegression::new(TEXT_BUCKETS);
    disc.fit(x_train, &soft, &logreg_config());
    let thr = best_f1_threshold(&disc.predict_proba_all(x_dev), gold_dev);
    let f1 = f1_score(&predict_at(&disc.predict_proba_all(x_test), thr), gold_test);
    ParticipantOutcome {
        id: p.id,
        skill: p.skill,
        num_lfs: lfs.len(),
        f1,
        education: p.education,
        python: p.python,
        machine_learning: p.machine_learning,
        text_mining: p.text_mining,
    }
}

/// Hand-label baseline: a disc model trained on `n_labels` crowdsourced
/// labels (gold with 10% flip noise — the paper's AMT labels were
/// majority-of-three crowd votes, not perfect).
fn run_hand_baseline(
    task: &RelationTask,
    x_train: &[snorkel_linalg::SparseVec],
    x_dev: &[snorkel_linalg::SparseVec],
    x_test: &[snorkel_linalg::SparseVec],
    gold_dev: &[Vote],
    gold_test: &[Vote],
    label_fraction: f64,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows: Vec<usize> = (0..task.train.len()).collect();
    for i in (1..rows.len()).rev() {
        let j = rng.gen_range(0..=i);
        rows.swap(i, j);
    }
    let take = ((task.train.len() as f64 * label_fraction).round() as usize).max(1);
    let mut labels: Vec<Vote> = vec![0; task.train.len()];
    for &r in &rows[..take] {
        let g = task.gold[task.train[r]];
        labels[r] = if rng.gen::<f64>() < 0.1 { -g } else { g };
    }
    let mut disc = LogisticRegression::new(TEXT_BUCKETS);
    disc.fit_hard(x_train, &labels, &logreg_config());
    let thr = best_f1_threshold(&disc.predict_proba_all(x_dev), gold_dev);
    f1_score(&predict_at(&disc.predict_proba_all(x_test), thr), gold_test)
}

/// Run the full user-study simulation and render Figures 7–8 + Table 8.
pub fn user_study_report(scale: Scale) -> String {
    let task = spouses::build(scale.task());
    let featurizer = TextFeaturizer::with_buckets(TEXT_BUCKETS);
    let train_ids: Vec<_> = task.train.iter().map(|&r| task.candidates[r]).collect();
    let dev_ids: Vec<_> = task.dev.iter().map(|&r| task.candidates[r]).collect();
    let test_ids: Vec<_> = task.test.iter().map(|&r| task.candidates[r]).collect();
    let x_train = featurizer.featurize_all(&task.corpus, &train_ids);
    let x_dev = featurizer.featurize_all(&task.corpus, &dev_ids);
    let x_test = featurizer.featurize_all(&task.corpus, &test_ids);
    let gold_dev = task.gold_of(&task.dev);
    let gold_test = task.gold_of(&task.test);

    let participants = sample_participants(scale.seed.wrapping_add(77));
    let outcomes: Vec<ParticipantOutcome> = participants
        .iter()
        .map(|p| {
            run_participant(
                &task,
                &x_train,
                &x_dev,
                &x_test,
                &gold_dev,
                &gold_test,
                p,
                scale.seed.wrapping_add(78),
            )
        })
        .collect();

    // 14 hand-label baselines, one per participant. The paper's "7 hours
    // of labeling" bought 2,500 of 22,195 training candidates (≈11%) —
    // scale the same fraction to our corpus size.
    let hand: Vec<f64> = (0..outcomes.len())
        .map(|i| {
            run_hand_baseline(
                &task,
                &x_train,
                &x_dev,
                &x_test,
                &gold_dev,
                &gold_test,
                2500.0 / 22195.0,
                scale.seed.wrapping_add(100 + i as u64),
            )
        })
        .collect();

    let snorkel_scores: Vec<f64> = outcomes.iter().map(|o| o.f1).collect();
    let s_summary = Summary::of(&snorkel_scores);
    let h_summary = Summary::of(&hand);
    let beat = outcomes
        .iter()
        .zip(&hand)
        .filter(|(o, &h)| o.f1 >= h)
        .count();

    let mut out = String::from("## User study (Figures 7–8, Table 8)\n\n");
    out.push_str(&format!(
        "Paper: mean Snorkel user 30.4 F1 vs mean hand-supervision 20.9 F1; 8 of 14 \
         participants matched or beat their hand-label baseline; best user 48.7 F1.\n\n\
         Simulated: mean Snorkel {:.1} F1 (min {:.1}, max {:.1}) vs mean hand baseline \
         {:.1} F1; {} of {} participants matched or beat their baseline.\n\n",
        100.0 * s_summary.mean(),
        100.0 * s_summary.min(),
        100.0 * s_summary.max(),
        100.0 * h_summary.mean(),
        beat,
        outcomes.len(),
    ));

    // Figure 7: per-participant scores.
    let mut rows: Vec<Vec<String>> = outcomes
        .iter()
        .zip(&hand)
        .map(|(o, &h)| {
            vec![
                format!("P{:02}", o.id),
                format!("{:.2}", o.skill),
                o.num_lfs.to_string(),
                format!("{:.1}", 100.0 * o.f1),
                format!("{:.1}", 100.0 * h),
                if o.f1 >= h {
                    "✓".into()
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    rows.sort_by(|a, b| {
        b[3].parse::<f64>()
            .unwrap()
            .total_cmp(&a[3].parse::<f64>().unwrap())
    });
    out.push_str("### Figure 7 — participant scores vs hand-label baselines\n\n");
    out.push_str(&markdown_table(
        &[
            "Participant",
            "Skill",
            "# LFs",
            "Snorkel F1",
            "Hand F1",
            "≥ baseline",
        ],
        &rows,
    ));

    // Figure 8: F1 by background factor.
    out.push_str("\n### Figure 8 — F1 by participant background\n\n");
    for (factor, extract) in [
        ("Education", 0usize),
        ("Python", 1),
        ("Machine Learning", 2),
        ("Text Mining", 3),
    ] {
        let mut groups: std::collections::BTreeMap<String, Vec<f64>> =
            std::collections::BTreeMap::new();
        for o in &outcomes {
            let key = match extract {
                0 => format!("{:?}", o.education),
                1 => format!("{:?}", o.python),
                2 => format!("{:?}", o.machine_learning),
                _ => format!("{:?}", o.text_mining),
            };
            groups.entry(key).or_default().push(o.f1);
        }
        let rows: Vec<Vec<String>> = groups
            .into_iter()
            .map(|(k, v)| {
                let s = Summary::of(&v);
                vec![
                    k,
                    v.len().to_string(),
                    format!("{:.1}", 100.0 * s.mean()),
                    format!("{:.1}", 100.0 * s.median()),
                ]
            })
            .collect();
        out.push_str(&format!("**{factor}**\n\n"));
        out.push_str(&markdown_table(
            &["Level", "n", "Mean F1", "Median F1"],
            &rows,
        ));
        out.push('\n');
    }

    // Table 8: profile marginals.
    out.push_str("### Table 8 — self-reported skill levels\n\n");
    let mut rows8 = Vec::new();
    for (name, extract) in [
        ("Python", 1usize),
        ("Machine Learning", 2),
        ("Text Mining", 3),
    ] {
        let count = |lvl: SkillLevel| {
            outcomes
                .iter()
                .filter(|o| match extract {
                    1 => o.python == lvl,
                    2 => o.machine_learning == lvl,
                    _ => o.text_mining == lvl,
                })
                .count()
                .to_string()
        };
        rows8.push(vec![
            name.to_string(),
            count(SkillLevel::New),
            count(SkillLevel::Beginner),
            count(SkillLevel::Intermediate),
            count(SkillLevel::Advanced),
        ]);
    }
    out.push_str(&markdown_table(
        &["Subject", "New", "Beg.", "Int.", "Adv."],
        &rows8,
    ));
    out
}
