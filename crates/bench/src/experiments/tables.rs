//! Tables 1–7 of the paper.

use snorkel_core::model::{GenerativeModel, LabelScheme, TrainConfig};

use snorkel_core::optimizer::{advantage_upper_bound, choose_strategy, OptimizerConfig};
use snorkel_core::vote::modeling_advantage;
use snorkel_datasets::{cdr, chem, crowd, ehr, radiology, spouses, LfType, RelationTask};
use snorkel_disc::metrics::{accuracy, precision_recall_f1, roc_auc};
use snorkel_disc::{
    LogisticRegression, Mlp, MlpConfig, SoftmaxConfig, SoftmaxRegression, TextFeaturizer,
};

use crate::experiments::Scale;
use crate::{
    eval_text_task, fmt_prf, logreg_config, markdown_table, pct, unweighted_soft_labels,
    TEXT_BUCKETS,
};

fn binary_tasks(scale: Scale) -> Vec<RelationTask> {
    vec![
        cdr::build(scale.task()),
        chem::build(scale.task()),
        ehr::build(scale.task()),
        spouses::build(scale.task()),
    ]
}

/// Table 1: modeling advantage `A_w`, optimizer bound `A~*`, selected
/// strategy, and label density per binary task.
pub fn table1(scale: Scale) -> String {
    let mut rows = Vec::new();

    // Radiology first (separate task type), then the relation tasks —
    // matching the paper's row order where possible.
    let rad = radiology::build(scale.task());
    let rad_lambda = rad.label_matrix(&rad.train);
    let rad_test = rad.label_matrix(&rad.test);
    rows.push(advantage_row(
        "Radiology",
        &rad_lambda,
        &rad_test,
        &rad.gold_of(&rad.test),
    ));

    for task in binary_tasks(scale) {
        let lambda = task.train_matrix();
        let lambda_test = task.label_matrix(&task.test);
        rows.push(advantage_row(
            &task.name,
            &lambda,
            &lambda_test,
            &task.gold_of(&task.test),
        ));
    }

    let mut out = String::from("## Table 1 — modeling advantage and strategy selection\n\n");
    out.push_str(
        "Paper values for reference: Radiology Aw=7.0 A~*=12.4 GM d=2.3; CDR 4.9/7.9 GM 1.8; \
         Spouses 4.4/4.6 GM 1.4; Chem 0.1/0.3 MV 1.2; EHR 2.8/4.8 GM 1.2.\n\n",
    );
    out.push_str(&markdown_table(
        &["Dataset", "Aw (%)", "A~* (%)", "Modeling Strategy", "d_Λ"],
        &rows,
    ));
    out
}

fn advantage_row(
    name: &str,
    lambda_train: &snorkel_matrix::LabelMatrix,
    lambda_test: &snorkel_matrix::LabelMatrix,
    gold_test: &[snorkel_lf::Vote],
) -> Vec<String> {
    let cfg = OptimizerConfig {
        skip_structure_search: true,
        ..OptimizerConfig::default()
    };
    let bound = advantage_upper_bound(lambda_train, &cfg);
    let decision = choose_strategy(lambda_train, &cfg);
    let strategy = match decision.strategy {
        snorkel_core::optimizer::ModelingStrategy::MajorityVote => "MV",
        snorkel_core::optimizer::ModelingStrategy::MomentMatching => "MoM",
        snorkel_core::optimizer::ModelingStrategy::GenerativeModel { .. } => "GM",
    };
    let mut gm = GenerativeModel::new(lambda_train.num_lfs(), LabelScheme::Binary);
    gm.fit(lambda_train, &TrainConfig::default());
    let aw = modeling_advantage(lambda_test, gm.accuracy_weights(), gold_test);
    vec![
        name.to_string(),
        pct(aw),
        pct(bound),
        strategy.to_string(),
        format!("{:.1}", lambda_train.label_density()),
    ]
}

/// Table 2 (task summary statistics) and Table 7 (split sizes).
pub fn table2_and_7(scale: Scale) -> String {
    let mut rows2 = Vec::new();
    let mut rows7 = Vec::new();

    for task in binary_tasks(scale) {
        rows2.push(vec![
            task.name.clone(),
            task.lfs.len().to_string(),
            pct(task.pct_positive()),
            task.num_docs().to_string(),
            task.candidates.len().to_string(),
        ]);
        rows7.push(vec![
            task.name.clone(),
            task.train.len().to_string(),
            task.dev.len().to_string(),
            task.test.len().to_string(),
        ]);
    }
    let rad = radiology::build(scale.task());
    rows2.push(vec![
        "Radiology".into(),
        rad.lfs.len().to_string(),
        pct(rad.gold.iter().filter(|&&g| g == 1).count() as f64 / rad.gold.len() as f64),
        rad.corpus.num_documents().to_string(),
        rad.candidates.len().to_string(),
    ]);
    rows7.push(vec![
        "Radiology".into(),
        rad.train.len().to_string(),
        rad.dev.len().to_string(),
        rad.test.len().to_string(),
    ]);
    let crowd_task = crowd::build(snorkel_datasets::TaskConfig {
        num_candidates: 632,
        seed: scale.seed,
    });
    rows2.push(vec![
        "Crowd".into(),
        crowd_task.lfs.len().to_string(),
        "-".into(),
        crowd_task.corpus.num_documents().to_string(),
        crowd_task.candidates.len().to_string(),
    ]);
    rows7.push(vec![
        "Crowd".into(),
        crowd_task.train.len().to_string(),
        crowd_task.dev.len().to_string(),
        crowd_task.test.len().to_string(),
    ]);

    let mut out = String::from("## Table 2 — task summary statistics\n\n");
    out.push_str(
        "Paper: Chem 16 LFs 4.1% 1753 docs 65398 cands; EHR 24/36.8/47827/225607; \
         CDR 33/24.6/900/8272; Spouses 11/8.3/2073/22195; Radiology 18/36.0/3851/3851; \
         Crowd 102/-/505/505.\n\n",
    );
    out.push_str(&markdown_table(
        &["Task", "# LFs", "% Pos.", "# Docs", "# Candidates"],
        &rows2,
    ));
    out.push_str("\n## Table 7 — split sizes\n\n");
    out.push_str(
        "Paper: Chem 65398/1292/1232; EHR 225607/913/604; CDR 8272/888/4620; \
         Spouses 22195/2796/2697; Radiology 3851/385/385; Crowd 505/63/64.\n\n",
    );
    out.push_str(&markdown_table(
        &["Task", "# Train.", "# Dev.", "# Test"],
        &rows7,
    ));
    out
}

/// Table 3: the four-arm relation-extraction evaluation.
pub fn table3(scale: Scale) -> String {
    let mut rows = Vec::new();
    for task in binary_tasks(scale) {
        let e = eval_text_task(&task);
        let lift_gen = 100.0 * (e.generative.f1 - e.distant_supervision.f1);
        let lift_disc = 100.0 * (e.discriminative.f1 - e.distant_supervision.f1);
        rows.push(vec![
            e.name.clone(),
            fmt_prf(&e.distant_supervision),
            fmt_prf(&e.generative),
            format!("{lift_gen:+.1}"),
            fmt_prf(&e.discriminative),
            format!("{lift_disc:+.1}"),
            fmt_prf(&e.hand_supervision),
        ]);
    }
    let mut out = String::from("## Table 3 — relation extraction from text (P / R / F1)\n\n");
    out.push_str(
        "Paper F1 (DS → Gen → Disc → Hand): Chem 17.6 → 33.8 → 54.1 → n/a; \
         EHR 72.2 → 74.9 → 81.4 → n/a; CDR 29.4 → 38.5 → 45.3 → 47.3; \
         Spouses 15.4 → 57.4 → 54.2 → 54.2.\n\n",
    );
    out.push_str(&markdown_table(
        &[
            "Task",
            "Distant Supervision",
            "Snorkel (Gen.)",
            "Lift",
            "Snorkel (Disc.)",
            "Lift",
            "Hand Supervision",
        ],
        &rows,
    ));
    out
}

/// Table 4: cross-modal tasks (Radiology AUC, Crowd accuracy).
pub fn table4(scale: Scale) -> String {
    let mut rows = Vec::new();

    // Radiology: text LFs → generative labels → MLP on image features.
    let rad = radiology::build(scale.task());
    let lambda = rad.label_matrix(&rad.train);
    let mut gm = GenerativeModel::new(lambda.num_lfs(), LabelScheme::Binary);
    let rad_cfg = TrainConfig {
        class_balance: snorkel_core::model::ClassBalance::Uniform,
        ..TrainConfig::default()
    };
    gm.fit(&lambda, &rad_cfg);
    let soft = gm.prob_positive(&lambda);
    let mlp_cfg = MlpConfig {
        input_dim: rad.image_dim,
        hidden_dim: 24,
        epochs: 40,
        ..MlpConfig::default()
    };
    let x_train = rad.images_of(&rad.train);
    let x_test = rad.images_of(&rad.test);
    let gold_test = rad.gold_of(&rad.test);
    let mut img_model = Mlp::new(&mlp_cfg);
    img_model.fit(&x_train, &soft, &mlp_cfg);
    let snorkel_auc = roc_auc(&img_model.predict_proba_all(&x_test), &gold_test);
    let mut hand_model = Mlp::new(&mlp_cfg);
    hand_model.fit_hard(&x_train, &rad.gold_of(&rad.train), &mlp_cfg);
    let hand_auc = roc_auc(&hand_model.predict_proba_all(&x_test), &gold_test);
    rows.push(vec![
        "Radiology (AUC)".into(),
        pct(snorkel_auc),
        pct(hand_auc),
    ]);

    // Crowd: worker LFs → generative labels → text model on tweets.
    let crowd_task = crowd::build(snorkel_datasets::TaskConfig {
        num_candidates: 632,
        seed: scale.seed,
    });
    let lambda = crowd_task.label_matrix(&crowd_task.train);
    let mut gm = GenerativeModel::new(lambda.num_lfs(), LabelScheme::MultiClass(5));
    let crowd_cfg = TrainConfig {
        class_balance: snorkel_core::model::ClassBalance::Uniform,
        ..TrainConfig::default()
    };
    gm.fit(&lambda, &crowd_cfg);
    let targets = gm.marginals(&lambda);
    let featurizer = TextFeaturizer::with_buckets(TEXT_BUCKETS);
    let train_ids: Vec<_> = crowd_task
        .train
        .iter()
        .map(|&r| crowd_task.candidates[r])
        .collect();
    let test_ids: Vec<_> = crowd_task
        .test
        .iter()
        .map(|&r| crowd_task.candidates[r])
        .collect();
    let x_train = featurizer.featurize_all(&crowd_task.corpus, &train_ids);
    let x_test = featurizer.featurize_all(&crowd_task.corpus, &test_ids);
    let gold_test = crowd_task.gold_of(&crowd_task.test);
    let sm_cfg = SoftmaxConfig {
        dim: TEXT_BUCKETS,
        classes: 5,
        epochs: 15,
        ..SoftmaxConfig::default()
    };
    let mut text_model = SoftmaxRegression::new(TEXT_BUCKETS, 5);
    text_model.fit(&x_train, &targets, &sm_cfg);
    let snorkel_acc = accuracy(&text_model.predict_votes(&x_test), &gold_test);
    let mut hand_model = SoftmaxRegression::new(TEXT_BUCKETS, 5);
    hand_model.fit_hard(&x_train, &crowd_task.gold_of(&crowd_task.train), &sm_cfg);
    let hand_acc = accuracy(&hand_model.predict_votes(&x_test), &gold_test);
    rows.push(vec!["Crowd (Acc)".into(), pct(snorkel_acc), pct(hand_acc)]);

    let mut out = String::from("## Table 4 — cross-modal tasks\n\n");
    out.push_str("Paper: Radiology AUC 72.0 (Snorkel) vs 76.2 (hand); Crowd Acc 65.6 vs 68.8.\n\n");
    out.push_str(&markdown_table(
        &["Task", "Snorkel (Disc.)", "Hand Supervision"],
        &rows,
    ));
    out
}

/// Table 5: disc model on generative labels vs on the unweighted LF
/// average, for all six tasks.
pub fn table5(scale: Scale) -> String {
    let mut rows = Vec::new();
    for task in binary_tasks(scale) {
        let e = eval_text_task(&task);
        rows.push(vec![
            e.name.clone(),
            pct(e.unweighted_disc.f1),
            pct(e.discriminative.f1),
            format!(
                "{:+.1}",
                100.0 * (e.discriminative.f1 - e.unweighted_disc.f1)
            ),
        ]);
    }

    // Radiology (AUC).
    let rad = radiology::build(scale.task());
    let lambda = rad.label_matrix(&rad.train);
    let mut gm = GenerativeModel::new(lambda.num_lfs(), LabelScheme::Binary);
    let rad_cfg = TrainConfig {
        class_balance: snorkel_core::model::ClassBalance::Uniform,
        ..TrainConfig::default()
    };
    gm.fit(&lambda, &rad_cfg);
    let soft = gm.prob_positive(&lambda);
    let unweighted = unweighted_soft_labels(&lambda);
    let mlp_cfg = MlpConfig {
        input_dim: rad.image_dim,
        hidden_dim: 24,
        epochs: 40,
        ..MlpConfig::default()
    };
    let x_train = rad.images_of(&rad.train);
    let x_test = rad.images_of(&rad.test);
    let gold_test = rad.gold_of(&rad.test);
    let mut weighted_model = Mlp::new(&mlp_cfg);
    weighted_model.fit(&x_train, &soft, &mlp_cfg);
    let mut unweighted_model = Mlp::new(&mlp_cfg);
    unweighted_model.fit(&x_train, &unweighted, &mlp_cfg);
    let auc_w = roc_auc(&weighted_model.predict_proba_all(&x_test), &gold_test);
    let auc_u = roc_auc(&unweighted_model.predict_proba_all(&x_test), &gold_test);
    rows.push(vec![
        "Radiology (AUC)".into(),
        pct(auc_u),
        pct(auc_w),
        format!("{:+.1}", 100.0 * (auc_w - auc_u)),
    ]);

    // Crowd (Acc): unweighted average of one-hot worker votes.
    let crowd_task = crowd::build(snorkel_datasets::TaskConfig {
        num_candidates: 632,
        seed: scale.seed,
    });
    let lambda = crowd_task.label_matrix(&crowd_task.train);
    let mut gm = GenerativeModel::new(lambda.num_lfs(), LabelScheme::MultiClass(5));
    let crowd_cfg = TrainConfig {
        class_balance: snorkel_core::model::ClassBalance::Uniform,
        ..TrainConfig::default()
    };
    gm.fit(&lambda, &crowd_cfg);
    let targets_gm = gm.marginals(&lambda);
    let mut targets_unw = Vec::with_capacity(lambda.num_points());
    for i in 0..lambda.num_points() {
        let (_, votes) = lambda.row(i);
        let mut t = vec![0.0f64; 5];
        if votes.is_empty() {
            t.fill(0.2);
        } else {
            for &v in votes {
                t[(v as usize) - 1] += 1.0 / votes.len() as f64;
            }
        }
        targets_unw.push(t);
    }
    let featurizer = TextFeaturizer::with_buckets(TEXT_BUCKETS);
    let train_ids: Vec<_> = crowd_task
        .train
        .iter()
        .map(|&r| crowd_task.candidates[r])
        .collect();
    let test_ids: Vec<_> = crowd_task
        .test
        .iter()
        .map(|&r| crowd_task.candidates[r])
        .collect();
    let x_train = featurizer.featurize_all(&crowd_task.corpus, &train_ids);
    let x_test = featurizer.featurize_all(&crowd_task.corpus, &test_ids);
    let gold_test = crowd_task.gold_of(&crowd_task.test);
    let sm_cfg = SoftmaxConfig {
        dim: TEXT_BUCKETS,
        classes: 5,
        epochs: 15,
        ..SoftmaxConfig::default()
    };
    let mut m_gm = SoftmaxRegression::new(TEXT_BUCKETS, 5);
    m_gm.fit(&x_train, &targets_gm, &sm_cfg);
    let mut m_unw = SoftmaxRegression::new(TEXT_BUCKETS, 5);
    m_unw.fit(&x_train, &targets_unw, &sm_cfg);
    let acc_gm = accuracy(&m_gm.predict_votes(&x_test), &gold_test);
    let acc_unw = accuracy(&m_unw.predict_votes(&x_test), &gold_test);
    rows.push(vec![
        "Crowd (Acc)".into(),
        pct(acc_unw),
        pct(acc_gm),
        format!("{:+.1}", 100.0 * (acc_gm - acc_unw)),
    ]);

    let mut out = String::from("## Table 5 — generative labels vs unweighted LF average\n\n");
    out.push_str(
        "Paper (unweighted → disc → lift): Chem 48.6 → 54.1 +5.5; EHR 80.9 → 81.4 +0.5; \
         CDR 42.0 → 45.3 +3.3; Spouses 52.8 → 54.2 +1.4; Crowd 62.5 → 65.6 +3.1; \
         Rad 67.0 → 72.0 +5.0.\n\n",
    );
    out.push_str(&markdown_table(
        &["Task", "Disc. on Unweighted LFs", "Disc. Model", "Lift"],
        &rows,
    ));
    out
}

/// Table 6: labeling-function type ablation on CDR.
pub fn table6(scale: Scale) -> String {
    let task = cdr::build(scale.task());
    let featurizer = TextFeaturizer::with_buckets(TEXT_BUCKETS);
    let train_ids: Vec<_> = task.train.iter().map(|&r| task.candidates[r]).collect();
    let test_ids: Vec<_> = task.test.iter().map(|&r| task.candidates[r]).collect();
    let x_train = featurizer.featurize_all(&task.corpus, &train_ids);
    let x_test = featurizer.featurize_all(&task.corpus, &test_ids);
    let gold_test = task.gold_of(&task.test);

    let stages: [(&str, Vec<LfType>); 4] = [
        ("Text Patterns", vec![LfType::Pattern]),
        (
            "+ Distant Supervision",
            vec![LfType::Pattern, LfType::DistantSupervision],
        ),
        (
            "+ Structure-based",
            vec![
                LfType::Pattern,
                LfType::DistantSupervision,
                LfType::StructureBased,
            ],
        ),
        (
            "+ Weak Classifiers",
            vec![
                LfType::Pattern,
                LfType::DistantSupervision,
                LfType::StructureBased,
                LfType::WeakClassifier,
            ],
        ),
    ];

    let mut rows = Vec::new();
    let mut prev_f1: Option<f64> = None;
    for (name, types) in stages {
        let idx = task.lf_indices_of(&types);
        let lambda = task.label_matrix_with_lfs(&task.train, &idx);
        let mut gm = GenerativeModel::new(lambda.num_lfs(), LabelScheme::Binary);
        let cfg6 = TrainConfig {
            class_balance: snorkel_core::model::ClassBalance::Uniform,
            ..TrainConfig::default()
        };
        gm.fit(&lambda, &cfg6);
        let soft = gm.prob_positive(&lambda);
        let mut disc = LogisticRegression::new(TEXT_BUCKETS);
        disc.fit(&x_train, &soft, &logreg_config());
        let prf = precision_recall_f1(&disc.predict_all(&x_test), &gold_test);
        let lift = prev_f1.map_or(String::new(), |p| format!("{:+.1}", 100.0 * (prf.f1 - p)));
        prev_f1 = Some(prf.f1);
        rows.push(vec![
            name.to_string(),
            pct(prf.precision),
            pct(prf.recall),
            pct(prf.f1),
            lift,
        ]);
    }

    let mut out = String::from("## Table 6 — LF type ablation on CDR\n\n");
    out.push_str(
        "Paper: Text Patterns 42.3/42.4/42.3; +DS 37.5/54.1/44.3 (+2.0); \
         +Structure 38.8/54.3/45.3 (+1.0). (We additionally report the \
         weak-classifier stage our suite includes.)\n\n",
    );
    out.push_str(&markdown_table(&["LF Type", "P", "R", "F1", "Lift"], &rows));
    out
}
