//! Figures 4, 5, and 6 of the paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use snorkel_core::bounds::{high_density_bound, low_density_bound};
use snorkel_core::model::{GenerativeModel, LabelScheme, TrainConfig};
use snorkel_core::optimizer::{advantage_upper_bound, elbow_point, OptimizerConfig};
use snorkel_core::structure::{structure_sweep, StructureConfig};
use snorkel_core::vote::modeling_advantage;
use snorkel_datasets::synthetic::{correlated_matrix, heterogeneous_matrix, Cluster};
use snorkel_datasets::{cdr, spouses, user_study};
use snorkel_disc::metrics::f1_score;
use snorkel_lf::LfExecutor;
use snorkel_matrix::LabelMatrix;

use crate::experiments::Scale;
use crate::markdown_table;

/// Figure 4: modeling advantage vs number of labeling functions on the
/// synthetic dataset (m = 1000, mean accuracy 75%, propensity 10%).
///
/// Series: empirical advantage of the learned generative model (`Aw`),
/// the optimal-weights advantage (`A*`, weights from true accuracies),
/// the optimizer's upper bound (`A~*`), and the closed-form low/high
/// density bounds.
pub fn fig4(scale: Scale) -> String {
    let m = 1000;
    let propensity = 0.1;
    let ns = [
        1usize, 2, 3, 5, 8, 12, 18, 27, 40, 60, 90, 135, 200, 300, 450,
    ];
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(scale.seed.wrapping_add(44));

    for &n in &ns {
        // Accuracies vary around the 75% mean (uniform 0.6–0.9): with
        // identical accuracies the optimal weighted vote degenerates to
        // majority vote and every advantage is zero.
        let accs: Vec<f64> = (0..n).map(|_| 0.6 + 0.3 * rng.gen::<f64>()).collect();
        let (lambda, gold) = heterogeneous_matrix(m, &accs, propensity, scale.seed + n as u64);

        let mut gm = GenerativeModel::new(n, LabelScheme::Binary);
        gm.fit(&lambda, &TrainConfig::default());
        let aw = modeling_advantage(&lambda, gm.accuracy_weights(), &gold);

        let w_star: Vec<f64> = accs.iter().map(|&a| 0.5 * (a / (1.0 - a)).ln()).collect();
        let a_star = modeling_advantage(&lambda, &w_star, &gold);

        let bound = advantage_upper_bound(&lambda, &OptimizerConfig::default());
        let mean_acc = accs.iter().sum::<f64>() / n as f64;
        let low = low_density_bound(n, propensity, mean_acc);
        let high = high_density_bound(n, propensity, mean_acc);

        rows.push(vec![
            n.to_string(),
            format!("{:.2}", lambda.label_density()),
            format!("{:.4}", aw),
            format!("{:.4}", a_star),
            format!("{:.4}", bound),
            format!("{:.4}", low.min(1.0)),
            format!("{:.4}", high),
        ]);
    }

    let mut out = String::from(
        "## Figure 4 — modeling advantage vs #LFs (synthetic: m=1000, ᾱ=75%, p_l=10%)\n\n",
    );
    out.push_str(
        "Expected shape: advantage near zero at low density, peaks in the mid-density \
         regime, and decays at high density where majority vote converges to optimal; \
         A~* upper-bounds A*, and the low-density bound caps the left flank.\n\n",
    );
    out.push_str(&markdown_table(
        &[
            "n",
            "d_Λ",
            "Aw (GM)",
            "A* (optimal)",
            "A~* (optimizer)",
            "low-density bound",
            "high-density bound",
        ],
        &rows,
    ));
    out
}

/// One panel of Figure 5: sweep ε, report correlations selected and the
/// resulting generative-model F1.
fn fig5_panel(
    title: &str,
    paper_note: &str,
    lambda_train: &LabelMatrix,
    lambda_eval: &LabelMatrix,
    gold_eval: &[snorkel_lf::Vote],
) -> String {
    let epsilons: Vec<f64> = (1..=12).rev().map(|i| i as f64 * 0.04).collect();
    let sweep = structure_sweep(lambda_train, &epsilons, &StructureConfig::default());
    let counts: Vec<(f64, usize)> = sweep.iter().map(|(e, c, _)| (*e, *c)).collect();
    let elbow = elbow_point(&counts);

    let mut rows = Vec::new();
    // Baseline: the independent model (ε = ∞, no correlations).
    {
        let mut gm = GenerativeModel::new(lambda_train.num_lfs(), LabelScheme::Binary);
        gm.fit(lambda_train, &TrainConfig::default());
        let f1 = f1_score(&gm.predicted_labels(lambda_eval), gold_eval);
        rows.push(vec![
            "∞ (independent)".into(),
            "0".into(),
            format!("{:.1}", 100.0 * f1),
            String::new(),
        ]);
    }
    for (i, (eps, count, report)) in sweep.iter().enumerate() {
        let mut gm = GenerativeModel::new(lambda_train.num_lfs(), LabelScheme::Binary)
            .with_weighted_correlations(&report.pairs, &report.weights);
        gm.fit(lambda_train, &TrainConfig::default());
        let pred = gm.predicted_labels(lambda_eval);
        let f1 = f1_score(&pred, gold_eval);
        rows.push(vec![
            format!("{eps:.2}"),
            count.to_string(),
            format!("{:.1}", 100.0 * f1),
            if i == elbow {
                "← elbow".into()
            } else {
                String::new()
            },
        ]);
    }

    let mut out = format!("### Figure 5 ({title})\n\n{paper_note}\n\n");
    out.push_str(&markdown_table(
        &["ε", "# correlations", "GM F1", ""],
        &rows,
    ));
    out
}

/// Figure 5: predictive performance and number of learned correlations
/// versus the correlation threshold ε, on (left) a simulation with more
/// than half the LFs correlated, (middle) CDR, and (right) the pooled
/// user-study LFs on Spouses.
pub fn fig5(scale: Scale) -> String {
    let mut out = String::from("## Figure 5 — structure learning tradeoff\n\n");

    // Left panel: simulated correlated LFs.
    // Example 3.1's regime: half the suite is three blocks of noisy
    // near-copies; the independent model badly over-counts them.
    let clusters = [
        Cluster {
            size: 4,
            accuracy: 0.5,
            deviation: 0.02,
        },
        Cluster {
            size: 4,
            accuracy: 0.5,
            deviation: 0.02,
        },
        Cluster {
            size: 4,
            accuracy: 0.55,
            deviation: 0.05,
        },
    ];
    let (lambda, gold, _) =
        correlated_matrix(1000, 8, 0.8, &clusters, 0.5, scale.seed.wrapping_add(55));
    out.push_str(&fig5_panel(
        "left: simulated labeling functions",
        "Paper shape: F1 jumps once the key correlations are modeled, then plateaus; \
         the correlation count explodes as ε → 0.",
        &lambda,
        &lambda,
        &gold,
    ));

    // Middle panel: CDR.
    let task = cdr::build(scale.task());
    let lambda_train = task.train_matrix();
    let lambda_test = task.label_matrix(&task.test);
    let gold_test = task.gold_of(&task.test);
    out.push('\n');
    out.push_str(&fig5_panel(
        "middle: CDR labeling functions",
        "Paper shape: performance improves as ε decreases until the model overfits; \
         the elbow avoids the overfit region at a fraction of the cost.",
        &lambda_train,
        &lambda_test,
        &gold_test,
    ));

    // Right panel: pooled user-study LFs on Spouses.
    let sp = spouses::build(scale.task());
    let participants = user_study::sample_participants(scale.seed.wrapping_add(77));
    let pool = user_study::pooled_lfs(&participants, scale.seed.wrapping_add(78));
    let train_ids: Vec<_> = sp.train.iter().map(|&r| sp.candidates[r]).collect();
    let test_ids: Vec<_> = sp.test.iter().map(|&r| sp.candidates[r]).collect();
    let lambda_train = LfExecutor::new().apply(&pool, &sp.corpus, &train_ids);
    let lambda_test = LfExecutor::new().apply(&pool, &sp.corpus, &test_ids);
    let gold_test = sp.gold_of(&sp.test);
    out.push('\n');
    out.push_str(&fig5_panel(
        &format!("right: all {} user-study LFs on Spouses", pool.len()),
        "Paper shape: with many redundant user-written LFs, structure learning \
         surpasses the best individual generative model.",
        &lambda_train,
        &lambda_test,
        &gold_test,
    ));
    out
}

/// Figure 6: modeling advantage vs number of CDR LFs (random subsets),
/// with the optimizer's bound and its MV/GM decision.
pub fn fig6(scale: Scale) -> String {
    let task = cdr::build(scale.task());
    let lambda_full = task.train_matrix();
    let lambda_test_full = task.label_matrix(&task.test);
    let gold_test = task.gold_of(&task.test);
    let n = lambda_full.num_lfs();
    let mut rng = StdRng::seed_from_u64(scale.seed.wrapping_add(66));
    let cfg = OptimizerConfig::default();

    let mut rows = Vec::new();
    for &k in &[3usize, 6, 9, 12, 15, 18, 21, 24, 27, 30, 33] {
        // Average over a few random LF subsets of size k.
        let reps = if k == n { 1 } else { 3 };
        let mut aw_sum = 0.0;
        let mut bound_sum = 0.0;
        for _ in 0..reps {
            let mut cols: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                cols.swap(i, j);
            }
            let subset: Vec<usize> = cols[..k].to_vec();
            let sub_train = lambda_full
                .select_columns(&subset)
                .expect("subset in range");
            let sub_test = lambda_test_full
                .select_columns(&subset)
                .expect("subset in range");
            let mut gm = GenerativeModel::new(k, LabelScheme::Binary);
            gm.fit(&sub_train, &TrainConfig::default());
            aw_sum += modeling_advantage(&sub_test, gm.accuracy_weights(), &gold_test);
            bound_sum += advantage_upper_bound(&sub_train, &cfg);
        }
        let aw = aw_sum / reps as f64;
        let bound = bound_sum / reps as f64;
        let choice = if bound < cfg.gamma { "MV" } else { "GM" };
        rows.push(vec![
            k.to_string(),
            format!("{:.4}", aw),
            format!("{:.4}", bound),
            choice.to_string(),
        ]);
    }

    let mut out = String::from("## Figure 6 — advantage vs #LFs on CDR subsets\n\n");
    out.push_str(
        "Paper shape: the advantage grows with the number of LFs; the optimizer \
         chooses MV during early development (few LFs) and GM later.\n\n",
    );
    out.push_str(&markdown_table(
        &["# LFs", "Aw (GM)", "A~* (optimizer)", "Choice"],
        &rows,
    ));
    out
}
