//! Regenerates Table 2 (task statistics) and Table 7 (split sizes).
fn main() {
    let scale = snorkel_bench::experiments::Scale::from_env();
    println!(
        "{}",
        snorkel_bench::experiments::tables::table2_and_7(scale)
    );
}
