//! Regenerates Figure 6 (advantage vs #LFs on CDR subsets).
fn main() {
    let scale = snorkel_bench::experiments::Scale::from_env();
    println!("{}", snorkel_bench::experiments::figures::fig6(scale));
}
