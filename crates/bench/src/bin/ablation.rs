//! Ablations of the modeling decisions this reproduction documents in
//! DESIGN.md §9 — each row shows what breaks when one of them is
//! reverted:
//!
//! 1. majority-vote initialization of the accuracy weights
//!    (vs the flat prior init);
//! 2. coverage-matched initialization of the propensity weights
//!    (vs zero init);
//! 3. vote-agreement correlation factors + redundancy-discounted
//!    correlated training (vs the independent model) on an
//!    Example 3.1-style suite.
//!
//! Run: `cargo run -p snorkel-bench --release --bin ablation`

use snorkel_bench::experiments::Scale;
use snorkel_bench::markdown_table;
use snorkel_core::model::{ClassBalance, GenerativeModel, LabelScheme, TrainConfig};
use snorkel_core::vote::{modeling_advantage, vote_accuracy};
use snorkel_datasets::synthetic::{correlated_matrix, Cluster};
use snorkel_datasets::{cdr, TaskConfig};

fn main() {
    let scale = Scale::from_env();
    println!("# Ablations of the label-model training decisions\n");

    // ------------------------------------------------------------------
    // 1 & 2: initialization ablations on CDR.
    // ------------------------------------------------------------------
    let task = cdr::build(TaskConfig {
        num_candidates: scale.candidates,
        seed: scale.seed,
    });
    let lambda = task.train_matrix();
    let lambda_test = task.label_matrix(&task.test);
    let gold_test = task.gold_of(&task.test);

    let mut rows = Vec::new();
    for (name, mv_init) in [("full (MV init)", true), ("flat prior init", false)] {
        let cfg = TrainConfig {
            class_balance: ClassBalance::Uniform,
            init_from_majority_vote: mv_init,
            ..TrainConfig::default()
        };
        let mut gm = GenerativeModel::new(lambda.num_lfs(), LabelScheme::Binary);
        gm.fit(&lambda, &cfg);
        let aw = modeling_advantage(&lambda_test, gm.accuracy_weights(), &gold_test);
        let acc = vote_accuracy(&gm.predicted_labels(&lambda_test), &gold_test);
        rows.push(vec![
            name.to_string(),
            format!("{aw:+.3}"),
            format!("{acc:.3}"),
        ]);
    }
    println!("## CDR: accuracy-weight initialization\n");
    println!(
        "{}",
        markdown_table(
            &["Initialization", "Advantage Aw", "GM label accuracy"],
            &rows
        )
    );

    // ------------------------------------------------------------------
    // 3: correlated block (Example 3.1 regime).
    // ------------------------------------------------------------------
    let clusters = [Cluster {
        size: 5,
        accuracy: 0.5,
        deviation: 0.0,
    }];
    let (lambda, gold, pairs) =
        correlated_matrix(3000, 3, 0.92, &clusters, 0.9, scale.seed.wrapping_add(9));

    let cfg = TrainConfig {
        class_balance: ClassBalance::Uniform,
        ..TrainConfig::default()
    };
    let mut indep = GenerativeModel::new(lambda.num_lfs(), LabelScheme::Binary);
    indep.fit(&lambda, &cfg);
    let mut corr =
        GenerativeModel::new(lambda.num_lfs(), LabelScheme::Binary).with_correlations(&pairs);
    corr.fit(&lambda, &cfg);

    let rows = vec![
        vec![
            "independent model".to_string(),
            format!(
                "{:.3}",
                vote_accuracy(&indep.predicted_labels(&lambda), &gold)
            ),
            format!(
                "{:.2}",
                indep.implied_accuracies()[3..].iter().sum::<f64>() / 5.0
            ),
        ],
        vec![
            "correlations modeled".to_string(),
            format!(
                "{:.3}",
                vote_accuracy(&corr.predicted_labels(&lambda), &gold)
            ),
            format!(
                "{:.2}",
                corr.implied_accuracies()[3..].iter().sum::<f64>() / 5.0
            ),
        ],
    ];
    println!("## Example 3.1 block (5 copies @ 50% acc vs 3 LFs @ 92%)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "Model",
                "Label accuracy",
                "Mean implied accuracy of the block"
            ],
            &rows,
        )
    );
    println!(
        "The paper's point: the independent MLE credits the coherent block \
         (implied accuracy ≫ its true 50%) and mislabels the data; modeling \
         the correlations restores both."
    );
}
