//! Regenerates Table 4 (cross-modal evaluation).
fn main() {
    let scale = snorkel_bench::experiments::Scale::from_env();
    println!("{}", snorkel_bench::experiments::tables::table4(scale));
}
