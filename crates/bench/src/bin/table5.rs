//! Regenerates Table 5 (generative labels vs unweighted LF average).
fn main() {
    let scale = snorkel_bench::experiments::Scale::from_env();
    println!("{}", snorkel_bench::experiments::tables::table5(scale));
}
