//! Regenerates Table 6 (LF type ablation on CDR).
fn main() {
    let scale = snorkel_bench::experiments::Scale::from_env();
    println!("{}", snorkel_bench::experiments::tables::table6(scale));
}
