//! Regenerates Figure 4 (modeling advantage vs label density).
fn main() {
    let scale = snorkel_bench::experiments::Scale::from_env();
    println!("{}", snorkel_bench::experiments::figures::fig4(scale));
}
