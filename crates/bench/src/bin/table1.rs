//! Regenerates Table 1 (modeling advantage & strategy selection).
fn main() {
    let scale = snorkel_bench::experiments::Scale::from_env();
    println!("{}", snorkel_bench::experiments::tables::table1(scale));
}
