//! Regenerates Figure 5 (structure-learning threshold sweep).
fn main() {
    let scale = snorkel_bench::experiments::Scale::from_env();
    println!("{}", snorkel_bench::experiments::figures::fig5(scale));
}
