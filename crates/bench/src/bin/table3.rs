//! Regenerates Table 3 (relation-extraction evaluation).
fn main() {
    let scale = snorkel_bench::experiments::Scale::from_env();
    println!("{}", snorkel_bench::experiments::tables::table3(scale));
}
