//! Regenerates the §4.2 user study (Figures 7–8, Table 8).
fn main() {
    let scale = snorkel_bench::experiments::Scale::from_env();
    println!(
        "{}",
        snorkel_bench::experiments::study::user_study_report(scale)
    );
}
