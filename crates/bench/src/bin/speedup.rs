//! Regenerates the §3 timing claims (optimizer speedup, elbow savings).
fn main() {
    let scale = snorkel_bench::experiments::Scale::from_env();
    println!("{}", snorkel_bench::experiments::timing::speedup(scale));
}
