//! # snorkel-bench
//!
//! Harness utilities shared by the per-table / per-figure binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure from the
//! paper's evaluation section (see DESIGN.md §4 for the index); this
//! library holds the evaluation plumbing they share: the four training
//! arms of Table 3 (distant supervision, generative model, noise-aware
//! discriminative model, hand supervision), the unweighted-average arm
//! of Table 5, and small Markdown/TSV printers.

#![forbid(unsafe_code)]
// The experiment helpers mirror the paper's table columns; bundling their
// eight knobs into config structs would only rename the problem.
#![allow(clippy::too_many_arguments)]

pub mod experiments;
pub mod report;

use snorkel_core::model::{ClassBalance, GenerativeModel, LabelScheme, TrainConfig};
use snorkel_core::optimizer::OptimizerConfig;
use snorkel_core::pipeline::{Pipeline, PipelineConfig};
use snorkel_datasets::RelationTask;
use snorkel_disc::metrics::{precision_recall_f1, Prf};
use snorkel_disc::{LogRegConfig, LogisticRegression, TextFeaturizer};
use snorkel_lf::Vote;
use snorkel_matrix::LabelMatrix;

/// Feature-hash bucket count used by every text model in the harness.
pub const TEXT_BUCKETS: u32 = 1 << 16;

/// Default logistic-regression config for the harness.
pub fn logreg_config() -> LogRegConfig {
    LogRegConfig {
        dim: TEXT_BUCKETS,
        epochs: 12,
        learning_rate: 0.05,
        ..LogRegConfig::default()
    }
}

/// The per-task evaluation of Table 3 (plus the Table 5 arm).
#[derive(Clone, Debug)]
pub struct TextTaskEval {
    /// Task name.
    pub name: String,
    /// Distant-supervision baseline (disc model on DS-derived labels).
    pub distant_supervision: Prf,
    /// Snorkel (Gen.): generative-model predictions on test.
    pub generative: Prf,
    /// Snorkel (Disc.): disc model on the generative model's labels.
    pub discriminative: Prf,
    /// Disc model trained on the *unweighted* LF average (Table 5 arm).
    pub unweighted_disc: Prf,
    /// Hand supervision: disc model on gold training labels.
    pub hand_supervision: Prf,
    /// Training label density.
    pub label_density: f64,
}

/// Classic distant-supervision labels for a task: positive iff any
/// positive-voting DS labeling function fires, else negative. (This is
/// how a KB is used *without* Snorkel — heuristic alignment only.)
pub fn distant_supervision_labels(task: &RelationTask, rows: &[usize]) -> Vec<Vote> {
    let ds = task.lf_indices_of(&[snorkel_datasets::LfType::DistantSupervision]);
    // EHR has no KB; its prior art is the legacy regex labeler.
    let ds = if ds.is_empty() {
        task.lf_indices_of(&[snorkel_datasets::LfType::WeakClassifier])
    } else {
        ds
    };
    let lambda = task.label_matrix_with_lfs(rows, &ds);
    (0..lambda.num_points())
        .map(|i| {
            let (_, votes) = lambda.row(i);
            if votes.contains(&1) {
                1
            } else {
                -1
            }
        })
        .collect()
}

/// Soft labels from the unweighted average of LF outputs (Table 5's
/// "Disc. Model on Unweighted LFs" arm): `p = (mean vote + 1) / 2` over
/// the non-abstaining LFs, 0.5 when everything abstained.
pub fn unweighted_soft_labels(lambda: &LabelMatrix) -> Vec<f64> {
    (0..lambda.num_points())
        .map(|i| {
            let (_, votes) = lambda.row(i);
            if votes.is_empty() {
                0.5
            } else {
                let mean: f64 = votes.iter().map(|&v| v as f64).sum::<f64>() / votes.len() as f64;
                (mean + 1.0) / 2.0
            }
        })
        .collect()
}

/// Class balance estimated from labeled dev gold (add-one smoothed) —
/// the balance Snorkel users pass to the label model in practice.
pub fn dev_class_balance(gold_dev: &[Vote], classes: usize) -> ClassBalance {
    let mut counts = vec![1.0f64; classes];
    let scheme = if classes == 2 {
        LabelScheme::Binary
    } else {
        LabelScheme::MultiClass(classes as u8)
    };
    for &g in gold_dev {
        if let Some(c) = scheme.class_of_vote(g) {
            counts[c] += 1.0;
        }
    }
    let total: f64 = counts.iter().sum();
    ClassBalance::Fixed(counts.into_iter().map(|c| c / total).collect())
}

/// Pick the decision threshold maximizing F1 on dev scores — the
/// paper's protocol ("hyperparameters selected … using a small labeled
/// development set"); on imbalanced tasks the F1-optimal threshold sits
/// well below 0.5.
pub fn best_f1_threshold(scores: &[f64], gold: &[Vote]) -> f64 {
    let mut best = (0.5, -1.0);
    for i in 1..40 {
        let thr = i as f64 / 40.0;
        let pred: Vec<Vote> = scores
            .iter()
            .map(|&s| if s > thr { 1 } else { -1 })
            .collect();
        let f1 = snorkel_disc::metrics::f1_score(&pred, gold);
        if f1 > best.1 {
            best = (thr, f1);
        }
    }
    best.0
}

/// Hard predictions from scores at a threshold.
pub fn predict_at(scores: &[f64], thr: f64) -> Vec<Vote> {
    scores
        .iter()
        .map(|&s| if s > thr { 1 } else { -1 })
        .collect()
}

/// Fit the generative model for a label matrix with the given
/// correlation structure and default training settings.
pub fn fit_generative(lambda: &LabelMatrix, correlations: &[(usize, usize)]) -> GenerativeModel {
    let mut gm = GenerativeModel::new(
        lambda.num_lfs(),
        LabelScheme::from_cardinality(lambda.cardinality()),
    )
    .with_correlations(correlations);
    gm.fit(lambda, &TrainConfig::default());
    gm
}

/// Run the full four-arm evaluation of one relation-extraction task.
/// Every arm's decision threshold is tuned for F1 on the dev split —
/// the paper's protocol for hyperparameter selection.
pub fn eval_text_task(task: &RelationTask) -> TextTaskEval {
    let featurizer = TextFeaturizer::with_buckets(TEXT_BUCKETS);
    let train_ids: Vec<_> = task.train.iter().map(|&r| task.candidates[r]).collect();
    let dev_ids: Vec<_> = task.dev.iter().map(|&r| task.candidates[r]).collect();
    let test_ids: Vec<_> = task.test.iter().map(|&r| task.candidates[r]).collect();
    let x_train = featurizer.featurize_all(&task.corpus, &train_ids);
    let x_dev = featurizer.featurize_all(&task.corpus, &dev_ids);
    let x_test = featurizer.featurize_all(&task.corpus, &test_ids);
    let gold_dev = task.gold_of(&task.dev);
    let gold_test = task.gold_of(&task.test);
    let gold_train = task.gold_of(&task.train);

    let lambda_train = task.train_matrix();
    let lambda_dev = task.label_matrix(&task.dev);
    let lambda_test = task.label_matrix(&task.test);

    // A linear model evaluated with a dev-tuned threshold.
    let eval_model = |model: &LogisticRegression| {
        let thr = best_f1_threshold(&model.predict_proba_all(&x_dev), &gold_dev);
        precision_recall_f1(
            &predict_at(&model.predict_proba_all(&x_test), thr),
            &gold_test,
        )
    };

    // Arm 1: distant supervision.
    let ds_labels = distant_supervision_labels(task, &task.train);
    let mut ds_model = LogisticRegression::new(TEXT_BUCKETS);
    ds_model.fit_hard(&x_train, &ds_labels, &logreg_config());
    let ds_prf = eval_model(&ds_model);

    // Arm 2: Snorkel generative — pipeline chooses the strategy. The
    // label model runs with the paper's uniform class prior; the class
    // imbalance is handled by the dev-tuned decision threshold instead
    // (a fixed informative prior compresses the posteriors of one-sided
    // LFs under the symmetric accuracy factor — see model docs).
    let train_cfg = TrainConfig {
        class_balance: ClassBalance::Uniform,
        ..TrainConfig::default()
    };
    let pipe = Pipeline::new(PipelineConfig {
        optimizer: OptimizerConfig::default(),
        train: train_cfg,
        ..PipelineConfig::default()
    });
    let (soft_rows, report) = pipe.run_from_matrix(&lambda_train);
    let soft: Vec<f64> = soft_rows.iter().map(|r| r[0]).collect();
    // Label-model predictions on test rows (same weights, test votes),
    // thresholded on dev posteriors. Any weighted backend (generative,
    // moment) has real posteriors to threshold; the MV backend does not
    // — score it as the hard majority vote, like the paper.
    let gen_prf = if report.backend == snorkel_core::label_model::BACKEND_MAJORITY_VOTE {
        precision_recall_f1(&snorkel_core::vote::majority_vote(&lambda_test), &gold_test)
    } else {
        let prob_positive = |lambda: &LabelMatrix| -> Vec<f64> {
            report
                .model
                .marginals(lambda, None)
                .into_iter()
                .map(|p| p[0])
                .collect()
        };
        let thr = best_f1_threshold(&prob_positive(&lambda_dev), &gold_dev);
        precision_recall_f1(&predict_at(&prob_positive(&lambda_test), thr), &gold_test)
    };

    // Arm 3: Snorkel discriminative.
    let mut disc = LogisticRegression::new(TEXT_BUCKETS);
    disc.fit(&x_train, &soft, &logreg_config());
    let disc_prf = eval_model(&disc);

    // Table 5 arm: unweighted LF average.
    let unweighted = unweighted_soft_labels(&lambda_train);
    let mut unw_model = LogisticRegression::new(TEXT_BUCKETS);
    unw_model.fit(&x_train, &unweighted, &logreg_config());
    let unw_prf = eval_model(&unw_model);

    // Arm 4: hand supervision (gold training labels).
    let mut hand = LogisticRegression::new(TEXT_BUCKETS);
    hand.fit_hard(&x_train, &gold_train, &logreg_config());
    let hand_prf = eval_model(&hand);

    TextTaskEval {
        name: task.name.clone(),
        distant_supervision: ds_prf,
        generative: gen_prf,
        discriminative: disc_prf,
        unweighted_disc: unw_prf,
        hand_supervision: hand_prf,
        label_density: lambda_train.label_density(),
    }
}

/// Render a Markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!(
        "|{}\n",
        headers.iter().map(|_| "---|").collect::<String>()
    ));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Format a PRF triple as `P / R / F1` percentages.
pub fn fmt_prf(p: &Prf) -> String {
    format!(
        "{:.1} / {:.1} / {:.1}",
        100.0 * p.precision,
        100.0 * p.recall,
        100.0 * p.f1
    )
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unweighted_soft_labels_map_votes() {
        let mut b = snorkel_matrix::LabelMatrixBuilder::new(3, 2);
        b.set(0, 0, 1);
        b.set(0, 1, 1);
        b.set(1, 0, 1);
        b.set(1, 1, -1);
        let lambda = b.build();
        let soft = unweighted_soft_labels(&lambda);
        assert_eq!(soft, vec![1.0, 0.5, 0.5]);
    }

    #[test]
    fn markdown_is_well_formed() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
    }
}
