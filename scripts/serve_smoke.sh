#!/usr/bin/env bash
# Serve smoke: start the labeling server on a loopback port, drive
# MARGINAL/APPLY/PREDICT/REFRESH/SNAPSHOT from the script client, hammer
# it with concurrent clients while an LF edit lands mid-stream
# (torn-read check), assert a clean shutdown and a loadable snapshot,
# then restart from the snapshot and assert the warm start re-executed
# zero LFs and still serves the distilled model.
#
# The wire grammar, reply shapes, and lock discipline exercised here are
# specified normatively in docs/PROTOCOL.md; the snapshot file handed
# between the two server lives is specified in docs/SNAPSHOT_FORMAT.md.
#
# Run from the repo root (CI runs it under a job timeout):
#   bash scripts/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${SNORKEL_SERVE_PORT:-7341}"
SNAP_DIR=target/serve-smoke
SNAP="$SNAP_DIR/server.snap"
mkdir -p "$SNAP_DIR"
rm -f "$SNAP"

cargo build --release --example serving
BIN=target/release/examples/serving

SRV_PID=""
cleanup() {
    if [[ -n "$SRV_PID" ]] && kill -0 "$SRV_PID" 2>/dev/null; then
        kill "$SRV_PID" 2>/dev/null || true
    fi
}
trap cleanup EXIT

wait_listening() {
    for _ in $(seq 1 100); do
        if "$BIN" client --port "$PORT" PING >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.2
    done
    echo "FAIL: server never started listening" >&2
    exit 1
}

expect() { # expect <substring> <<< "$output"
    local needle="$1" line
    line="$(cat)"
    echo "$line"
    case "$line" in
        *"$needle"*) ;;
        *)
            echo "FAIL: expected $needle in: $line" >&2
            exit 1
            ;;
    esac
}

echo "== first life: cold start, serve, snapshot, shut down =="
"$BIN" server --port "$PORT" --rows 3000 --snapshot "$SNAP" --auto-snapshot-ms 2000 &
SRV_PID=$!
wait_listening

"$BIN" client --port "$PORT" "MARGINAL 0:1,1:-1" | expect "OK gen="
"$BIN" client --port "$PORT" "APPLY 0 1 2 3 chem1 causes disease2" | expect "votes="
# The distilled model answers for candidates absent from Λ (PREDICT
# hashes raw feature names; PREDICT_TEXT featurizes server-side).
"$BIN" client --port "$PORT" "PREDICT btw=cause u=chem9" | expect "disc_gen="
"$BIN" client --port "$PORT" "PREDICT_TEXT 0 1 2 3 chemX causes diseaseY" | expect "OK gen="
# Reads do not advance the session generation.
"$BIN" client --port "$PORT" "STATS" | expect "gen=0"
# ≥1k concurrent marginal queries with one LF edit landing mid-stream;
# the hammer exits non-zero on any torn read and reverts the edit.
"$BIN" hammer --port "$PORT" --clients 8 --queries 150 | expect "no torn reads"
# Capture a zero-coverage posterior AFTER the hammer's edit+revert (each
# REFRESH warm-retrains the disc model) so the kill/resume comparison
# below sees exactly the model the snapshot will carry.
PRED_BEFORE="$("$BIN" client --port "$PORT" "PREDICT_TEXT 0 1 2 3 chemX causes diseaseY")"
echo "$PRED_BEFORE" | expect "disc_gen="
"$BIN" client --port "$PORT" "SNAPSHOT" | expect "OK bytes="
"$BIN" client --port "$PORT" "STATS" | expect "rows=3000"
# STATS reports the active label-model backend (the example forces the
# generative backend) and the session generation — the hammer's edit
# and revert performed exactly two refreshes.
"$BIN" client --port "$PORT" "STATS" | expect "backend=generative"
"$BIN" client --port "$PORT" "STATS" | expect "gen=2"
"$BIN" client --port "$PORT" "SHUTDOWN" | expect "OK bye"

# Graceful shutdown: the server process must exit 0 on its own.
wait "$SRV_PID"
SRV_PID=""
echo "server exited cleanly"

echo "== snapshot must load =="
"$BIN" verify-snap "$SNAP" | expect "snapshot OK"

echo "== second life: resume warm from the snapshot =="
"$BIN" server --port "$PORT" --rows 3000 --resume "$SNAP" &
SRV_PID=$!
wait_listening

"$BIN" client --port "$PORT" "MARGINAL 0:1,1:-1" | expect "OK gen="
# The resumed session thawed the snapshot's tagged model section: the
# backend is live before any refresh.
"$BIN" client --port "$PORT" "STATS" | expect "backend=generative"
# The v3 DISC section thawed too: the distilled model answers the same
# zero-coverage query with the identical posterior (floats round-trip
# bit-exactly, and responses use shortest-round-trip formatting).
PRED_AFTER="$("$BIN" client --port "$PORT" "PREDICT_TEXT 0 1 2 3 chemX causes diseaseY")"
echo "$PRED_AFTER" | expect "disc_gen="
if [[ "${PRED_BEFORE##*p=}" != "${PRED_AFTER##*p=}" ]]; then
    echo "FAIL: distilled posterior changed across kill/resume" >&2
    echo "  before: $PRED_BEFORE" >&2
    echo "  after:  $PRED_AFTER" >&2
    exit 1
fi
# The resumed server relabels everything from cache: zero LF runs.
"$BIN" client --port "$PORT" "REFRESH" | expect "lf_invocations=0"
# The refresh bumped the session generation and kept the backend.
"$BIN" client --port "$PORT" "STATS" | expect "gen=1"
"$BIN" client --port "$PORT" "SHUTDOWN" | expect "OK bye"
wait "$SRV_PID"
SRV_PID=""

echo "serve smoke OK"
