#!/usr/bin/env bash
# Serve smoke: start the labeling server on a loopback port, drive
# MARGINAL/APPLY/PREDICT/REFRESH/SNAPSHOT from the script client, hammer
# it with concurrent clients while an LF edit lands mid-stream
# (torn-read check), ingest rows through the streaming plane, assert a
# clean shutdown and a loadable snapshot, then restart from the
# snapshot and assert the warm start re-executed zero LFs, still serves
# the distilled model, and carried the streaming state (drift score and
# lifetime row totals) across the process boundary.
#
# The third life runs a replicated pair: a WAL-backed leader plus an
# op-log-tailing follower. Writes land on the leader only (the follower
# answers `ERR readonly`), the follower converges to the leader's LSN
# with bit-identical marginals, survives a `kill -9` mid-tail (resuming
# from its own durable WAL), and finally PROMOTEs to a leader that
# accepts writes.
#
# The wire grammar, reply shapes, and lock discipline exercised here are
# specified normatively in docs/PROTOCOL.md; the snapshot file handed
# between the two server lives is specified in docs/SNAPSHOT_FORMAT.md;
# the op log and follower semantics are specified in
# docs/REPLICATION.md.
#
# Run from the repo root (CI runs it under a job timeout):
#   bash scripts/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${SNORKEL_SERVE_PORT:-7341}"
FPORT="${SNORKEL_SERVE_FOLLOWER_PORT:-$((PORT + 1))}"
SNAP_DIR=target/serve-smoke
SNAP="$SNAP_DIR/server.snap"
mkdir -p "$SNAP_DIR"
rm -f "$SNAP"

cargo build --release --example serving
BIN=target/release/examples/serving

SRV_PID=""
FLW_PID=""
cleanup() {
    for pid in "$SRV_PID" "$FLW_PID"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
        fi
    done
}
trap cleanup EXIT

wait_listening() { # wait_listening <port>
    local port="$1"
    for _ in $(seq 1 100); do
        if "$BIN" client --port "$port" PING >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.2
    done
    echo "FAIL: server on port $port never started listening" >&2
    exit 1
}

stats_field() { # stats_field <port> <key>
    "$BIN" client --port "$1" STATS | sed -E "s/.*$2=([^ ]+).*/\1/"
}

# Poll until the follower's applied LSN equals the leader's tip.
wait_converged() { # wait_converged <leader_port> <follower_port>
    local tip
    tip="$(stats_field "$1" lsn)"
    for _ in $(seq 1 150); do
        if [[ "$(stats_field "$2" lsn)" == "$tip" ]]; then
            return 0
        fi
        sleep 0.2
    done
    echo "FAIL: follower never converged to leader lsn=$tip" >&2
    exit 1
}

expect() { # expect <substring> <<< "$output"
    local needle="$1" line
    line="$(cat)"
    echo "$line"
    case "$line" in
        *"$needle"*) ;;
        *)
            echo "FAIL: expected $needle in: $line" >&2
            exit 1
            ;;
    esac
}

echo "== first life: cold start, serve, snapshot, shut down =="
"$BIN" server --port "$PORT" --rows 3000 --snapshot "$SNAP" --auto-snapshot-ms 2000 &
SRV_PID=$!
wait_listening "$PORT"

"$BIN" client --port "$PORT" "MARGINAL 0:1,1:-1" | expect "OK gen="
"$BIN" client --port "$PORT" "APPLY 0 1 2 3 chem1 causes disease2" | expect "votes="
# The distilled model answers for candidates absent from Λ (PREDICT
# hashes raw feature names; PREDICT_TEXT featurizes server-side).
"$BIN" client --port "$PORT" "PREDICT btw=cause u=chem9" | expect "disc_gen="
"$BIN" client --port "$PORT" "PREDICT_TEXT 0 1 2 3 chemX causes diseaseY" | expect "OK gen="
# Reads do not advance the session generation.
"$BIN" client --port "$PORT" "STATS" | expect "gen=0"
# Binary plane, cross-process: one OP_MARGINAL frame carrying 8 rows
# must equal 8 individual text MARGINAL requests bit-for-bit.
"$BIN" bincheck --port "$PORT" --batch 8 | expect "binary batch OK"
# ≥1k concurrent marginal queries with one LF edit landing mid-stream;
# the hammer exits non-zero on any torn read and reverts the edit.
"$BIN" hammer --port "$PORT" --clients 8 --queries 150 | expect "no torn reads"
# STATS carries the LF-cache and posterior-memo occupancy fields. A
# MARGINAL probe first, so the memo has caught up with the hammer's
# edit+revert (its generation advances lazily, on the next query).
"$BIN" client --port "$PORT" "MARGINAL 0:1,1:-1" >/dev/null
STATS_LINE="$("$BIN" client --port "$PORT" STATS)"
echo "$STATS_LINE"
case "$STATS_LINE" in
    *"cache_cols="*"cache_cap="*"memo_size="*"memo_gen=2"*) ;;
    *)
        echo "FAIL: STATS is missing cache/memo occupancy fields: $STATS_LINE" >&2
        exit 1
        ;;
esac

echo "== mid-run METRICS scrape =="
# The exposition must show the traffic above: nonzero request counters
# and a non-empty MARGINAL latency histogram, across all three layers.
SCRAPE="$("$BIN" client --port "$PORT" METRICS)"
# head closes its stdin after one line; feed it from a herestring, not a
# pipeline, so the writer can't die of SIGPIPE under `pipefail`.
head -n 1 <<<"$SCRAPE" | expect "OK series="
if ! echo "$SCRAPE" | grep -E 'snorkel_serve_requests_total\{verb="MARGINAL"\} [1-9]' >/dev/null; then
    echo "FAIL: MARGINAL request counter is zero or missing in mid-run METRICS" >&2
    exit 1
fi
if ! echo "$SCRAPE" | grep -E 'snorkel_serve_request_seconds_count\{verb="MARGINAL"\} [1-9]' >/dev/null; then
    echo "FAIL: MARGINAL latency histogram is empty in mid-run METRICS" >&2
    exit 1
fi
if ! echo "$SCRAPE" | grep -E 'snorkel_incr_refreshes_total [1-9]' >/dev/null; then
    echo "FAIL: incr refresh counter is zero in mid-run METRICS" >&2
    exit 1
fi
if ! echo "$SCRAPE" | grep -E 'snorkel_lf_invocations_total\{lf="lf_causes"\} [1-9]' >/dev/null; then
    echo "FAIL: per-LF invocation counter is zero in mid-run METRICS" >&2
    exit 1
fi
echo "mid-run scrape OK"
# SLOWLOG returns the slowest recent spans, header first.
SLOW="$("$BIN" client --port "$PORT" "SLOWLOG 3")"
head -n 1 <<<"$SLOW" | expect "OK count="
echo "== streaming plane: ingest three rows =="
# The ingested texts are exactly what demo_corpus would generate at
# indices 3000–3002, so the second life's re-supplied corpus
# (--rows 3003) stays consistent with the snapshot's candidate
# registry and cached LF columns.
"$BIN" client --port "$PORT" "INGEST 0 1 2 3 chem8 causes disease4" | expect "total=3001"
"$BIN" client --port "$PORT" "INGEST 0 1 2 3 chem9 causes disease5" | expect "total=3002"
"$BIN" client --port "$PORT" "INGEST 0 1 2 3 chem10 treats disease6" | expect "total=3003"
# The admission gate is idle between requests, and the streaming plane
# is active: STATS reports the queue and a numeric drift score.
"$BIN" client --port "$PORT" "STATS" | expect "ingest_queue=0/16"
STATS_LINE="$("$BIN" client --port "$PORT" STATS)"
DRIFT_BEFORE="$(sed -E 's/.*drift_score=([^ ]+).*/\1/' <<<"$STATS_LINE")"
if [[ "$DRIFT_BEFORE" == "-" ]]; then
    echo "FAIL: streaming plane inactive after INGEST: $STATS_LINE" >&2
    exit 1
fi
SCRAPE="$("$BIN" client --port "$PORT" METRICS)"
if ! echo "$SCRAPE" | grep -E 'snorkel_stream_ingest_rows_total 3$' >/dev/null; then
    echo "FAIL: stream ingest-rows counter did not count the 3 ingests" >&2
    exit 1
fi
if ! echo "$SCRAPE" | grep -E 'snorkel_serve_requests_total\{verb="INGEST"\} 3$' >/dev/null; then
    echo "FAIL: INGEST verb counter did not count the 3 requests" >&2
    exit 1
fi
echo "ingest OK (drift_score=$DRIFT_BEFORE)"

# Capture a zero-coverage posterior AFTER the hammer's edit+revert (each
# REFRESH warm-retrains the disc model) so the kill/resume comparison
# below sees exactly the model the snapshot will carry.
PRED_BEFORE="$("$BIN" client --port "$PORT" "PREDICT_TEXT 0 1 2 3 chemX causes diseaseY")"
echo "$PRED_BEFORE" | expect "disc_gen="
"$BIN" client --port "$PORT" "SNAPSHOT" | expect "OK bytes="
"$BIN" client --port "$PORT" "STATS" | expect "rows=3003"
# STATS reports the active label-model backend (the example forces the
# generative backend) and the session generation — the hammer's edit
# and revert performed exactly two refreshes.
"$BIN" client --port "$PORT" "STATS" | expect "backend=generative"
"$BIN" client --port "$PORT" "STATS" | expect "gen=2"
"$BIN" client --port "$PORT" "SHUTDOWN" | expect "OK bye"

# Graceful shutdown: the server process must exit 0 on its own.
wait "$SRV_PID"
SRV_PID=""
echo "server exited cleanly"

# Drain wrote the final exposition next to the final snapshot.
if [[ ! -s "$SNAP.metrics" ]]; then
    echo "FAIL: no metrics dump at $SNAP.metrics after drain" >&2
    exit 1
fi
grep -q 'snorkel_serve_requests_total' "$SNAP.metrics" \
    || { echo "FAIL: metrics dump is missing serve counters" >&2; exit 1; }
echo "drain metrics dump OK"

echo "== snapshot must load =="
"$BIN" verify-snap "$SNAP" | expect "snapshot OK"

echo "== second life: resume warm from the snapshot =="
# --rows 3003: the first life's three INGESTs grew the registry, and
# the operator-resupplied corpus must cover every frozen candidate.
"$BIN" server --port "$PORT" --rows 3003 --resume "$SNAP" &
SRV_PID=$!
wait_listening "$PORT"

# Counters reset with the process, gauges rebuild from the thawed
# session: before this life's first MARGINAL, its request counter must
# read 0 while the thawed generation/row gauges are already correct.
SCRAPE="$("$BIN" client --port "$PORT" METRICS)"
if ! echo "$SCRAPE" | grep -E 'snorkel_serve_requests_total\{verb="MARGINAL"\} 0$' >/dev/null; then
    echo "FAIL: MARGINAL request counter did not reset across restart" >&2
    exit 1
fi
if ! echo "$SCRAPE" | grep -E 'snorkel_incr_refresh_generation [1-9]' >/dev/null; then
    echo "FAIL: refresh-generation gauge was not rebuilt from the thawed session" >&2
    exit 1
fi
if ! echo "$SCRAPE" | grep -E 'snorkel_incr_rows 3003$' >/dev/null; then
    echo "FAIL: rows gauge was not rebuilt from the thawed session" >&2
    exit 1
fi
echo "restart counter-reset / gauge-rebuild OK"

# The v4 STRM section thawed: before any ingest in this life, the
# drift score equals the frozen one (not "-", which would mean the
# streaming plane restarted from scratch).
STATS_LINE="$("$BIN" client --port "$PORT" STATS)"
DRIFT_AFTER="$(sed -E 's/.*drift_score=([^ ]+).*/\1/' <<<"$STATS_LINE")"
if [[ "$DRIFT_AFTER" != "$DRIFT_BEFORE" ]]; then
    echo "FAIL: drift score changed across kill/resume" >&2
    echo "  before: $DRIFT_BEFORE" >&2
    echo "  after:  $DRIFT_AFTER" >&2
    exit 1
fi
echo "thawed streaming state OK (drift_score=$DRIFT_AFTER)"

"$BIN" client --port "$PORT" "MARGINAL 0:1,1:-1" | expect "OK gen="
# The binary plane serves the thawed state too, still bit-identical to
# the text plane.
"$BIN" bincheck --port "$PORT" --batch 4 | expect "binary batch OK"
# The resumed session thawed the snapshot's tagged model section: the
# backend is live before any refresh.
"$BIN" client --port "$PORT" "STATS" | expect "backend=generative"
# The v3 DISC section thawed too: the distilled model answers the same
# zero-coverage query with the identical posterior (floats round-trip
# bit-exactly, and responses use shortest-round-trip formatting).
PRED_AFTER="$("$BIN" client --port "$PORT" "PREDICT_TEXT 0 1 2 3 chemX causes diseaseY")"
echo "$PRED_AFTER" | expect "disc_gen="
if [[ "${PRED_BEFORE##*p=}" != "${PRED_AFTER##*p=}" ]]; then
    echo "FAIL: distilled posterior changed across kill/resume" >&2
    echo "  before: $PRED_BEFORE" >&2
    echo "  after:  $PRED_AFTER" >&2
    exit 1
fi
# Ingest continues across the process boundary: the lifetime row total
# picks up where the snapshot left off (3003 + 1), while this life's
# process counter shows only its own traffic.
"$BIN" client --port "$PORT" "INGEST 0 1 2 3 chem0 worsens disease0" | expect "total=3004"
SCRAPE="$("$BIN" client --port "$PORT" METRICS)"
if ! echo "$SCRAPE" | grep -E 'snorkel_stream_ingest_rows_total 1$' >/dev/null; then
    echo "FAIL: stream ingest-rows counter did not restart with the process" >&2
    exit 1
fi
echo "cross-life ingest OK"
# The resumed server relabels everything from cache: zero LF runs.
"$BIN" client --port "$PORT" "REFRESH" | expect "lf_invocations=0"
# The refresh bumped the session generation and kept the backend.
"$BIN" client --port "$PORT" "STATS" | expect "gen=1"
"$BIN" client --port "$PORT" "SHUTDOWN" | expect "OK bye"
wait "$SRV_PID"
SRV_PID=""

echo "== third life: replicated pair (leader + tailing follower) =="
LSNAP="$SNAP_DIR/leader.snap"
LWAL="$SNAP_DIR/leader.wal"
FWAL="$SNAP_DIR/follower.wal"
rm -f "$LSNAP" "$LWAL" "$FWAL"

# Leader: resume the first life's snapshot with a fresh WAL. One REFRESH
# lands before the bootstrap snapshot so the follower starts from a
# nonzero replication mark and tails the rest of the log live.
"$BIN" server --port "$PORT" --rows 3003 --resume "$SNAP" \
    --snapshot "$LSNAP" --wal "$LWAL" &
SRV_PID=$!
wait_listening "$PORT"
"$BIN" client --port "$PORT" "STATS" | expect "role=leader"
"$BIN" client --port "$PORT" "REFRESH" | expect "OK "
"$BIN" client --port "$PORT" "STATS" | expect "lsn=1"
"$BIN" client --port "$PORT" "SNAPSHOT" | expect "OK bytes="

# Follower: bootstrap from the leader's snapshot (REPL mark lsn=1), tail
# the op log over the binary plane, journal to its own WAL.
"$BIN" server --port "$FPORT" --rows 3003 --resume "$LSNAP" \
    --follow "127.0.0.1:$PORT" --wal "$FWAL" &
FLW_PID=$!
wait_listening "$FPORT"
"$BIN" client --port "$FPORT" "STATS" | expect "role=follower"

# Writes land on the leader while the follower tails. The ingested
# texts continue demo_corpus at indices 3003+ so the re-supplied
# corpora on both nodes stay consistent with the registry.
"$BIN" client --port "$PORT" "INGEST 0 1 2 3 chem0 worsens disease0" | expect "total=3004"
"$BIN" client --port "$PORT" "INGEST 0 1 2 3 chem1 caused disease1" | expect "total=3005"
"$BIN" client --port "$PORT" "REFRESH EDIT lf_worsens KEYWORD 1 -1 worsens,mentions" | expect "OK "
wait_converged "$PORT" "$FPORT"

# Bit-identical replies at the same LSN: text replies use
# shortest-round-trip float formatting, so string equality is float
# bit equality.
for sig in "MARGINAL 0:1,1:-1" "MARGINAL 1:1,2:-1" "MARGINAL 0:-1,1:1,2:1"; do
    L_REPLY="$("$BIN" client --port "$PORT" "$sig")"
    F_REPLY="$("$BIN" client --port "$FPORT" "$sig")"
    if [[ "$L_REPLY" != "$F_REPLY" ]]; then
        echo "FAIL: divergent replies for $sig" >&2
        echo "  leader:   $L_REPLY" >&2
        echo "  follower: $F_REPLY" >&2
        exit 1
    fi
done
echo "leader/follower replies bit-identical at lsn=$(stats_field "$PORT" lsn)"

# The follower serves reads but refuses writes with a typed error.
("$BIN" client --port "$FPORT" "INGEST 0 1 2 3 chem2 mentions disease2" || true) \
    | expect "ERR readonly"
("$BIN" client --port "$FPORT" "REFRESH" || true) | expect "ERR readonly"

# Chaos: kill -9 the follower mid-tail, write more on the leader, then
# restart the follower from the same snapshot + its own WAL. It resumes
# from its last durable LSN and converges without operator help.
kill -9 "$FLW_PID"
wait "$FLW_PID" 2>/dev/null || true
FLW_PID=""
"$BIN" client --port "$PORT" "INGEST 0 1 2 3 chem2 mentions disease2" | expect "total=3006"
"$BIN" client --port "$PORT" "INGEST 0 1 2 3 chem3 causes disease3" | expect "total=3007"
"$BIN" client --port "$PORT" "REFRESH" | expect "OK "
"$BIN" server --port "$FPORT" --rows 3003 --resume "$LSNAP" \
    --follow "127.0.0.1:$PORT" --wal "$FWAL" &
FLW_PID=$!
wait_listening "$FPORT"
wait_converged "$PORT" "$FPORT"
for sig in "MARGINAL 0:1,1:-1" "MARGINAL 0:-1,1:1,2:1"; do
    L_REPLY="$("$BIN" client --port "$PORT" "$sig")"
    F_REPLY="$("$BIN" client --port "$FPORT" "$sig")"
    if [[ "$L_REPLY" != "$F_REPLY" ]]; then
        echo "FAIL: divergent replies after kill/resume for $sig" >&2
        echo "  leader:   $L_REPLY" >&2
        echo "  follower: $F_REPLY" >&2
        exit 1
    fi
done
echo "follower kill/resume OK (lsn=$(stats_field "$FPORT" lsn))"

# PROMOTE seals the follower's log and flips it to a write-accepting
# leader; promoting a leader is a typed error.
"$BIN" client --port "$FPORT" "PROMOTE" | expect "OK role=leader"
"$BIN" client --port "$FPORT" "STATS" | expect "role=leader"
("$BIN" client --port "$FPORT" "PROMOTE" || true) | expect "ERR already leader"
("$BIN" client --port "$PORT" "PROMOTE" || true) | expect "ERR already leader"
"$BIN" client --port "$FPORT" "INGEST 0 1 2 3 chem4 causes disease4" | expect "total=3008"

"$BIN" client --port "$PORT" "SHUTDOWN" | expect "OK bye"
wait "$SRV_PID"
SRV_PID=""
"$BIN" client --port "$FPORT" "SHUTDOWN" | expect "OK bye"
wait "$FLW_PID"
FLW_PID=""
echo "replicated pair OK"

echo "serve smoke OK"
