#!/usr/bin/env bash
# docs-check: the serve layer's wire protocol and snapshot format have
# normative specs (docs/PROTOCOL.md, docs/SNAPSHOT_FORMAT.md). This
# gate fails CI when a protocol verb or snapshot section name exists in
# `crates/serve` source but is missing from its spec — so the docs
# cannot silently drift behind the implementation.
#
# Run from the repo root:
#   bash scripts/docs_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- Protocol verbs: every request keyword parse_request matches on.
# Match arms look like:   "MARGINAL" => ...
verbs="$(grep -oE '"[A-Z][A-Z_]+" =>' crates/serve/src/protocol.rs \
    | tr -d '"' | awk '{print $1}' | sort -u)"
if [[ -z "$verbs" ]]; then
    echo "docs-check: BUG: found no verbs in crates/serve/src/protocol.rs" >&2
    exit 1
fi
for verb in $verbs; do
    if ! grep -qw "$verb" docs/PROTOCOL.md; then
        echo "docs-check: verb $verb is implemented in" \
             "crates/serve/src/protocol.rs but not documented in docs/PROTOCOL.md" >&2
        fail=1
    fi
done

# --- Snapshot sections: every TAG_* constant in snap.rs.
# Constants look like:   const TAG_SESS: u32 = u32::from_le_bytes(*b"SESS");
sections="$(grep -oE 'from_le_bytes\(\*b"[A-Z]{4}"\)' crates/serve/src/snap.rs \
    | grep -oE '[A-Z]{4}' | sort -u)"
if [[ -z "$sections" ]]; then
    echo "docs-check: BUG: found no section tags in crates/serve/src/snap.rs" >&2
    exit 1
fi
for section in $sections; do
    if ! grep -qw "$section" docs/SNAPSHOT_FORMAT.md; then
        echo "docs-check: snapshot section $section is implemented in" \
             "crates/serve/src/snap.rs but not documented in docs/SNAPSHOT_FORMAT.md" >&2
        fail=1
    fi
done

if [[ "$fail" -ne 0 ]]; then
    echo "docs-check: FAILED — update the spec(s) above" >&2
    exit 1
fi
echo "docs-check OK: $(echo "$verbs" | wc -w | tr -d ' ') verbs," \
     "$(echo "$sections" | wc -w | tr -d ' ') snapshot sections all documented"
