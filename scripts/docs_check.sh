#!/usr/bin/env bash
# docs-check: the serve layer's wire protocol, snapshot format, the
# observability surface, and the bench inventory have normative specs
# (docs/PROTOCOL.md, docs/SNAPSHOT_FORMAT.md, docs/OBSERVABILITY.md,
# docs/PERFORMANCE.md). This gate fails CI when a protocol verb,
# snapshot section, metric name, or bench binary exists in source but
# is missing from its spec — and when a spec names a metric or bench
# that does not exist — so the docs cannot silently drift from the
# implementation in either direction.
#
# Run from the repo root:
#   bash scripts/docs_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- Protocol verbs: every request keyword parse_request matches on.
# Match arms look like:   "MARGINAL" => ...
verbs="$(grep -oE '"[A-Z][A-Z_]+" =>' crates/serve/src/protocol.rs \
    | tr -d '"' | awk '{print $1}' | sort -u)"
if [[ -z "$verbs" ]]; then
    echo "docs-check: BUG: found no verbs in crates/serve/src/protocol.rs" >&2
    exit 1
fi
for verb in $verbs; do
    if ! grep -qw "$verb" docs/PROTOCOL.md; then
        echo "docs-check: verb $verb is implemented in" \
             "crates/serve/src/protocol.rs but not documented in docs/PROTOCOL.md" >&2
        fail=1
    fi
done

# --- Binary opcodes: every OP_* constant frame.rs defines.
# Constants look like:   pub const OP_MARGINAL: u8 = 0x02;
opcodes="$(grep -oE 'const OP_[A-Z_]+: u8' crates/serve/src/frame.rs \
    | grep -oE 'OP_[A-Z_]+' | sort -u)"
if [[ -z "$opcodes" ]]; then
    echo "docs-check: BUG: found no opcodes in crates/serve/src/frame.rs" >&2
    exit 1
fi
for opcode in $opcodes; do
    if ! grep -qw "$opcode" docs/PROTOCOL.md; then
        echo "docs-check: binary opcode $opcode is implemented in" \
             "crates/serve/src/frame.rs but not documented in docs/PROTOCOL.md" >&2
        fail=1
    fi
done

# --- Snapshot sections: every TAG_* constant in snap.rs.
# Constants look like:   const TAG_SESS: u32 = u32::from_le_bytes(*b"SESS");
sections="$(grep -oE 'from_le_bytes\(\*b"[A-Z]{4}"\)' crates/serve/src/snap.rs \
    | grep -oE '[A-Z]{4}' | sort -u)"
if [[ -z "$sections" ]]; then
    echo "docs-check: BUG: found no section tags in crates/serve/src/snap.rs" >&2
    exit 1
fi
for section in $sections; do
    if ! grep -qw "$section" docs/SNAPSHOT_FORMAT.md; then
        echo "docs-check: snapshot section $section is implemented in" \
             "crates/serve/src/snap.rs but not documented in docs/SNAPSHOT_FORMAT.md" >&2
        fail=1
    fi
done

# --- Metrics: two-way check against docs/OBSERVABILITY.md.
# Registered names are string literals like "snorkel_serve_requests_total"
# in the instrumented crates; documented names are the same tokens in the
# inventory tables.
metric_src_dirs="crates/serve/src crates/incr/src crates/lf/src crates/core/src crates/stream/src"
registered="$(grep -rhoE '"snorkel_(serve|incr|lf|core|stream|repl)_[a-z0-9_]*[a-z0-9]"' \
    $metric_src_dirs | tr -d '"' | sort -u)"
documented="$(grep -ohE 'snorkel_(serve|incr|lf|core|stream|repl)_[a-z0-9_]*[a-z0-9]' \
    docs/OBSERVABILITY.md | sort -u)"
if [[ -z "$registered" ]]; then
    echo "docs-check: BUG: found no registered metric names in $metric_src_dirs" >&2
    exit 1
fi
for name in $documented; do
    if ! grep -q "^$name$" <<<"$registered"; then
        echo "docs-check: metric $name is documented in docs/OBSERVABILITY.md" \
             "but never registered in any crate" >&2
        fail=1
    fi
done
for name in $registered; do
    if ! grep -q "^$name$" <<<"$documented"; then
        echo "docs-check: metric $name is registered in source but not" \
             "documented in docs/OBSERVABILITY.md" >&2
        fail=1
    fi
done

# --- Benches: two-way check against docs/PERFORMANCE.md.
# Every bench binary in crates/bench/benches/ must appear in the
# inventory as `benches/<name>.rs`, and every such token in the doc
# must correspond to a real bench file.
bench_files="$(ls crates/bench/benches/*.rs | xargs -n1 basename | sort -u)"
bench_documented="$(grep -ohE 'benches/[a-z0-9_]+\.rs' docs/PERFORMANCE.md \
    | sed 's|benches/||' | sort -u)"
if [[ -z "$bench_files" ]]; then
    echo "docs-check: BUG: found no bench files in crates/bench/benches" >&2
    exit 1
fi
for bench in $bench_files; do
    if ! grep -q "^$bench$" <<<"$bench_documented"; then
        echo "docs-check: bench crates/bench/benches/$bench exists but is" \
             "not in the docs/PERFORMANCE.md inventory" >&2
        fail=1
    fi
done
for bench in $bench_documented; do
    if ! grep -q "^$bench$" <<<"$bench_files"; then
        echo "docs-check: docs/PERFORMANCE.md documents benches/$bench but" \
             "crates/bench/benches/$bench does not exist" >&2
        fail=1
    fi
done

if [[ "$fail" -ne 0 ]]; then
    echo "docs-check: FAILED — update the spec(s) above" >&2
    exit 1
fi
echo "docs-check OK: $(echo "$verbs" | wc -w | tr -d ' ') verbs," \
     "$(echo "$opcodes" | wc -w | tr -d ' ') opcodes," \
     "$(echo "$sections" | wc -w | tr -d ' ') snapshot sections," \
     "$(echo "$registered" | wc -w | tr -d ' ') metrics," \
     "$(echo "$bench_files" | wc -w | tr -d ' ') benches all documented"
