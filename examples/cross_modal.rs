//! Cross-modal supervision (paper §4.1.2, Radiology task): labeling
//! functions read the *text report*; the classifier is trained on
//! *image features* the LFs never see.
//!
//! Run with: `cargo run --release --example cross_modal`

use snorkel::core::model::{GenerativeModel, LabelScheme, TrainConfig};
use snorkel::datasets::{radiology, TaskConfig};
use snorkel::disc::metrics::roc_auc;
use snorkel::disc::{Mlp, MlpConfig};

fn main() {
    let task = radiology::build(TaskConfig {
        num_candidates: 1500,
        seed: 5,
    });
    println!(
        "Radiology task: {} reports, {} text LFs, {}-dim image features",
        task.candidates.len(),
        task.lfs.len(),
        task.image_dim
    );

    // Text side: LFs over reports → generative model → soft labels.
    let lambda = task.label_matrix(&task.train);
    println!("text label matrix density: {:.2}", lambda.label_density());
    let mut gm = GenerativeModel::new(lambda.num_lfs(), LabelScheme::Binary);
    gm.fit(&lambda, &TrainConfig::default());
    let soft = gm.prob_positive(&lambda);

    // Image side: an MLP on the (synthetic) ResNet-style embeddings.
    let cfg = MlpConfig {
        input_dim: task.image_dim,
        hidden_dim: 24,
        epochs: 40,
        ..MlpConfig::default()
    };
    let mut image_model = Mlp::new(&cfg);
    image_model.fit(&task.images_of(&task.train), &soft, &cfg);

    let scores = image_model.predict_proba_all(&task.images_of(&task.test));
    let auc = roc_auc(&scores, &task.gold_of(&task.test));
    println!(
        "image-classifier test AUC from text-only supervision = {:.1}",
        100.0 * auc
    );

    // Compare against full hand supervision on the same architecture.
    let mut hand = Mlp::new(&cfg);
    hand.fit_hard(
        &task.images_of(&task.train),
        &task.gold_of(&task.train),
        &cfg,
    );
    let hand_auc = roc_auc(
        &hand.predict_proba_all(&task.images_of(&task.test)),
        &task.gold_of(&task.test),
    );
    println!("hand-supervised ceiling AUC = {:.1}", 100.0 * hand_auc);
}
