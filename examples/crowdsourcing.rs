//! Crowdsourcing as weak supervision (paper §4.1.2, Crowd task):
//! each crowdworker becomes a labeling function, the generative model
//! recovers worker reliability without gold labels, and a text model
//! learns to predict sentiment with no workers in the loop.
//!
//! Run with: `cargo run --release --example crowdsourcing`

use snorkel::core::model::{GenerativeModel, LabelScheme, TrainConfig};
use snorkel::datasets::{crowd, TaskConfig};
use snorkel::disc::metrics::accuracy;
use snorkel::disc::{SoftmaxConfig, SoftmaxRegression, TextFeaturizer};
use snorkel::linalg::stats::pearson;

fn main() {
    let task = crowd::build(TaskConfig {
        num_candidates: 632, // the paper's scale: 505 train + 63 dev + 64 test
        seed: 3,
    });
    println!(
        "Crowd task: {} tweets, {} workers-as-LFs, 5 classes",
        task.candidates.len(),
        task.lfs.len()
    );

    // Fit the generative model on worker votes (5-class Dawid-Skene).
    let lambda = task.label_matrix(&task.train);
    let mut gm = GenerativeModel::new(lambda.num_lfs(), LabelScheme::MultiClass(5));
    gm.fit(&lambda, &TrainConfig::default());

    // The learned per-worker accuracies track the simulation's truth.
    let implied = gm.implied_accuracies();
    let r = pearson(&implied, &task.worker_accuracies);
    println!("correlation(learned worker accuracy, true worker accuracy) = {r:.2}");

    // Train a tweet-text model on the probabilistic labels.
    let targets = gm.marginals(&lambda);
    let buckets = 1 << 14;
    let featurizer = TextFeaturizer::with_buckets(buckets);
    let train_ids: Vec<_> = task.train.iter().map(|&r| task.candidates[r]).collect();
    let test_ids: Vec<_> = task.test.iter().map(|&r| task.candidates[r]).collect();
    let x_train = featurizer.featurize_all(&task.corpus, &train_ids);
    let x_test = featurizer.featurize_all(&task.corpus, &test_ids);
    let cfg = SoftmaxConfig {
        dim: buckets,
        classes: 5,
        epochs: 15,
        ..SoftmaxConfig::default()
    };
    let mut model = SoftmaxRegression::new(buckets, 5);
    model.fit(&x_train, &targets, &cfg);

    // The test tweets were never graded by any worker.
    let acc = accuracy(&model.predict_votes(&x_test), &task.gold_of(&task.test));
    println!("worker-free test accuracy = {:.1}%", 100.0 * acc);
}
