//! Relation extraction end to end on the Spouses task: the paper's
//! §4.1.1 workflow with the full optimizer-driven pipeline.
//!
//! Run with: `cargo run --release --example spouses_extraction`

use snorkel::core::model::{ClassBalance, TrainConfig};
use snorkel::core::pipeline::{Pipeline, PipelineConfig};
use snorkel::core::ModelingStrategy;
use snorkel::datasets::{spouses, TaskConfig};
use snorkel::disc::metrics::{f1_score, precision_recall_f1};
use snorkel::disc::{LogRegConfig, LogisticRegression, TextFeaturizer};
use snorkel::lf::Vote;

fn main() {
    let task = spouses::build(TaskConfig {
        num_candidates: 2000,
        seed: 7,
    });
    println!(
        "Spouses task: {} candidates ({} train / {} dev / {} test), {} LFs, {:.1}% positive",
        task.candidates.len(),
        task.train.len(),
        task.dev.len(),
        task.test.len(),
        task.lfs.len(),
        100.0 * task.pct_positive()
    );

    // Apply LFs and let Algorithm 1 choose the modeling strategy. The
    // label model uses the paper's uniform class prior; class imbalance
    // is handled by a dev-tuned decision threshold below.
    let lambda = task.train_matrix();
    let pipeline = Pipeline::new(PipelineConfig {
        train: TrainConfig {
            class_balance: ClassBalance::Uniform,
            ..TrainConfig::default()
        },
        ..PipelineConfig::default()
    });
    let (soft_rows, report) = pipeline.run_from_matrix(&lambda);
    match &report.strategy {
        ModelingStrategy::MajorityVote => println!("optimizer chose: majority vote"),
        ModelingStrategy::MomentMatching => {
            println!("optimizer chose: closed-form moment backend")
        }
        ModelingStrategy::GenerativeModel {
            epsilon,
            correlations,
            ..
        } => println!(
            "optimizer chose: generative model (ε = {epsilon:.2}, {} correlations)",
            correlations.len()
        ),
    }
    println!(
        "predicted advantage bound A~* = {:.3}; strategy selection took {:?}",
        report.predicted_advantage, report.timings.strategy_selection
    );

    // Train the end model on the probabilistic labels.
    let soft: Vec<f64> = soft_rows.iter().map(|r| r[0]).collect();
    let buckets = 1 << 16;
    let featurizer = TextFeaturizer::with_buckets(buckets);
    let train_ids: Vec<_> = task.train.iter().map(|&r| task.candidates[r]).collect();
    let test_ids: Vec<_> = task.test.iter().map(|&r| task.candidates[r]).collect();
    let x_train = featurizer.featurize_all(&task.corpus, &train_ids);
    let x_test = featurizer.featurize_all(&task.corpus, &test_ids);
    let mut disc = LogisticRegression::new(buckets);
    disc.fit(
        &x_train,
        &soft,
        &LogRegConfig {
            dim: buckets,
            epochs: 12,
            learning_rate: 0.05,
            ..LogRegConfig::default()
        },
    );

    // Tune the decision threshold for F1 on the small labeled dev split
    // (the paper's hyperparameter protocol), then evaluate on test.
    let dev_ids: Vec<_> = task.dev.iter().map(|&r| task.candidates[r]).collect();
    let x_dev = featurizer.featurize_all(&task.corpus, &dev_ids);
    let gold_dev = task.gold_of(&task.dev);
    let dev_scores = disc.predict_proba_all(&x_dev);
    let mut best = (0.5, -1.0);
    for i in 1..40 {
        let thr = i as f64 / 40.0;
        let pred: Vec<Vote> = dev_scores
            .iter()
            .map(|&s| if s > thr { 1 } else { -1 })
            .collect();
        let f1 = f1_score(&pred, &gold_dev);
        if f1 > best.1 {
            best = (thr, f1);
        }
    }
    let thr = best.0;
    let pred: Vec<Vote> = disc
        .predict_proba_all(&x_test)
        .iter()
        .map(|&s| if s > thr { 1 } else { -1 })
        .collect();
    let prf = precision_recall_f1(&pred, &task.gold_of(&task.test));
    println!(
        "dev-tuned threshold {thr:.2}; test P/R/F1 = {:.1} / {:.1} / {:.1}",
        100.0 * prf.precision,
        100.0 * prf.recall,
        100.0 * prf.f1
    );
}
