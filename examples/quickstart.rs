//! Quickstart: the three-stage Snorkel flow on a tiny hand-built corpus.
//!
//! 1. Write labeling functions over candidates.
//! 2. Fit the generative label model — no ground truth involved.
//! 3. Train a discriminative model on the probabilistic labels.
//!
//! Run with: `cargo run --release --example quickstart`

use snorkel::core::model::{GenerativeModel, LabelScheme, TrainConfig};
use snorkel::disc::{LogRegConfig, LogisticRegression, TextFeaturizer};
use snorkel::lf::{lf, BoxedLf, KeywordBetweenLf, LfExecutor};
use snorkel::nlp::{CandidateExtractor, DictionaryTagger, DocumentIngester};

fn main() {
    // --- Build a miniature corpus -------------------------------------
    let mut tagger = DictionaryTagger::new();
    tagger.add_phrases(["magnesium", "aspirin", "ibuprofen"], "Chemical");
    tagger.add_phrases(["weakness", "headache", "nausea"], "Disease");
    let ingester = DocumentIngester::with_tagger(tagger);

    let mut corpus = snorkel::context::Corpus::new();
    for (i, text) in [
        "Magnesium causes weakness in rare cases. The cohort was small.",
        "Aspirin treats headache quickly. No adverse events were seen.",
        "Ibuprofen caused nausea in two patients. Dosing was adjusted.",
        "Aspirin and weakness were discussed. No causal link was found.",
        "Magnesium induced weakness again. The effect was dose dependent.",
        "Ibuprofen treats headache in most adults. Relief was rapid.",
    ]
    .iter()
    .enumerate()
    {
        ingester.ingest(&mut corpus, &format!("doc-{i}"), text);
    }
    let candidates = CandidateExtractor::new("Chemical", "Disease").extract(&mut corpus);
    println!("extracted {} candidates", candidates.len());

    // --- Stage 1: labeling functions ----------------------------------
    let lfs: Vec<BoxedLf> = vec![
        Box::new(KeywordBetweenLf::new(
            "lf_causes",
            &["causes", "caused", "induced"],
            1,
            0,
        )),
        Box::new(KeywordBetweenLf::new("lf_treats", &["treats"], -1, -1)),
        lf("lf_discussed", |x| {
            if x.words_between(0, 1).contains(&"and") {
                -1
            } else {
                0
            }
        }),
    ];

    // --- Stage 2: generative label model ------------------------------
    let lambda = LfExecutor::new().apply(&lfs, &corpus, &candidates);
    println!(
        "label matrix: {} points x {} LFs, density {:.2}",
        lambda.num_points(),
        lambda.num_lfs(),
        lambda.label_density()
    );
    let mut gm = GenerativeModel::new(lambda.num_lfs(), LabelScheme::Binary);
    gm.fit(&lambda, &TrainConfig::default());
    let soft = gm.prob_positive(&lambda);
    for (i, p) in soft.iter().enumerate() {
        let view = corpus.candidate(candidates[i]);
        println!(
            "  P(causes) = {:.2}  {} / {}",
            p,
            view.span(0).text(),
            view.span(1).text()
        );
    }

    // --- Stage 3: discriminative model --------------------------------
    let featurizer = TextFeaturizer::with_buckets(1 << 12);
    let xs = featurizer.featurize_all(&corpus, &candidates);
    let cfg = LogRegConfig {
        dim: 1 << 12,
        epochs: 20,
        ..LogRegConfig::default()
    };
    let mut disc = LogisticRegression::new(1 << 12);
    disc.fit(&xs, &soft, &cfg);
    println!(
        "discriminative probabilities: {:?}",
        disc.predict_proba_all(&xs)
            .iter()
            .map(|p| (p * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
}
