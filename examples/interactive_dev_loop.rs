//! The iterative LF-development loop (paper §2.1, appendix C), run on
//! the incremental engine: grow and edit a labeling-function suite
//! inside an [`snorkel::incr::IncrementalSession`], and watch each
//! `refresh()` recompute only what the edit touched — cached columns,
//! delta Λ patches, structure-sweep reuse, and warm-started training —
//! while the optimizer (Algorithm 1) decides on every turn whether
//! generative training is worth it yet.
//!
//! Run with: `cargo run --release --example interactive_dev_loop`

use snorkel::core::optimizer::{ModelingStrategy, OptimizerConfig};
use snorkel::datasets::{cdr, TaskConfig};
use snorkel::incr::{IncrementalSession, SessionConfig};
use snorkel::lf::{lf, LfExecutor};
use snorkel::matrix::stats::{empirical_accuracies, matrix_stats};

fn main() {
    let task = cdr::build(TaskConfig {
        num_candidates: 1200,
        seed: 1,
    });
    let train_ids: Vec<_> = task.train.iter().map(|&r| task.candidates[r]).collect();
    let dev_ids: Vec<_> = task.dev.iter().map(|&r| task.candidates[r]).collect();
    let dev_gold = task.gold_of(&task.dev);

    // Per-LF diagnostics on the dev split — computed up front, before the
    // corpus and suite move into the session; printed at the end. (This
    // is what a user reads before deciding which LF to refine next.)
    let lambda_dev = LfExecutor::new().apply(&task.lfs[..12], &task.corpus, &dev_ids);
    let dev_stats = matrix_stats(&lambda_dev);
    let dev_accs = empirical_accuracies(&lambda_dev, &dev_gold);
    let dev_names: Vec<String> = task.lfs[..12]
        .iter()
        .map(|f| f.name().to_string())
        .collect();

    let mut session = IncrementalSession::new(
        task.corpus,
        SessionConfig {
            optimizer: OptimizerConfig {
                skip_structure_search: true,
                ..OptimizerConfig::default()
            },
            ..SessionConfig::default()
        },
    );
    session.ingest_candidates(&train_ids);

    // Simulate development: start with 3 LFs, grow the suite in stages.
    // Each refresh only executes the columns added since the last one.
    let mut lfs = task.lfs.into_iter();
    let mut suite_size = 0usize;
    println!("-- growing the suite (each refresh executes only the new columns):");
    for stage in [3usize, 8, 15, 23, 33] {
        for (j, f) in (&mut lfs).take(stage - suite_size).enumerate() {
            session.add_lf_tagged(f, (suite_size + j) as u64);
        }
        suite_size = stage;
        let (_, report) = session.refresh();
        let stats = matrix_stats(session.label_matrix().expect("refreshed"));
        println!(
            "   {stage:2} LFs: coverage {:3.0}%, conflicts {:2.0}%, density {:5.2}, A~* {:.3} → {:24} | {} col(s) executed, {} cached, {:?}",
            100.0 * stats.coverage,
            100.0 * stats.conflict_rate,
            stats.label_density,
            report.predicted_advantage,
            match report.strategy {
                ModelingStrategy::MajorityVote => "majority vote is enough",
                ModelingStrategy::MomentMatching => "moment-match the accuracies",
                ModelingStrategy::GenerativeModel { .. } => "train the generative model",
            },
            report.columns_recomputed,
            report.columns_reused,
            report.timings.total,
        );
    }

    // The edit loop: refine one LF; only its column re-executes and
    // training restarts warm from the previous model.
    println!("\n-- editing one LF out of {suite_size}:");
    let name = session.lf_names()[4].to_string();
    session.edit_lf(lf(name.clone(), |x| {
        if x.words_between(0, 1).contains(&"induced") {
            1
        } else {
            0
        }
    }));
    let (_, report) = session.refresh();
    println!(
        "   edited {name:?}: {} column re-executed, {} served from cache, warm-start {}, {} train iters, refresh {:?}",
        report.columns_recomputed,
        report.columns_reused,
        report.warm_started,
        report.fit_epochs,
        report.timings.total,
    );
    let s = session.cache_stats();
    println!(
        "   cache: {} hits, {} misses, {} extensions so far",
        s.hits, s.misses, s.extensions
    );

    println!("\nper-LF dev diagnostics (first 12 LFs):");
    println!(
        "{:26} {:>6} {:>8} {:>8} {:>8}",
        "LF", "votes", "coverage", "conflict", "dev acc"
    );
    for (j, name) in dev_names.iter().enumerate() {
        println!(
            "{:26} {:>6} {:>7.1}% {:>7.1}% {:>8}",
            name,
            dev_stats.lfs[j].num_votes,
            100.0 * dev_stats.lfs[j].coverage,
            100.0 * dev_stats.lfs[j].conflict,
            dev_accs[j].map_or("-".to_string(), |a| format!("{:.0}%", 100.0 * a)),
        );
    }
}
