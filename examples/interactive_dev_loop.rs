//! The iterative LF-development loop (paper §2.1, appendix C): after
//! each labeling-function edit, inspect coverage / overlap / conflict,
//! check empirical accuracy on the small labeled dev split, and let the
//! optimizer tell you whether generative training is worth it yet —
//! "supervision as interactive programming".
//!
//! Run with: `cargo run --release --example interactive_dev_loop`

use snorkel::core::optimizer::{choose_strategy, ModelingStrategy, OptimizerConfig};
use snorkel::datasets::{cdr, TaskConfig};
use snorkel::lf::LfExecutor;
use snorkel::matrix::stats::{empirical_accuracies, matrix_stats};

fn main() {
    let task = cdr::build(TaskConfig {
        num_candidates: 1200,
        seed: 1,
    });
    let train_ids: Vec<_> = task.train.iter().map(|&r| task.candidates[r]).collect();
    let dev_ids: Vec<_> = task.dev.iter().map(|&r| task.candidates[r]).collect();
    let dev_gold = task.gold_of(&task.dev);

    // Simulate development: start with 3 LFs, grow the suite in stages.
    let cfg = OptimizerConfig {
        skip_structure_search: true,
        ..OptimizerConfig::default()
    };
    for stage in [3usize, 8, 15, 23, 33] {
        let suite = &task.lfs[..stage];
        let lambda = LfExecutor::new().apply(suite, &task.corpus, &train_ids);
        let stats = matrix_stats(&lambda);
        let decision = choose_strategy(&lambda, &cfg);
        println!(
            "-- {stage:2} LFs: coverage {:.0}%, conflicts {:.0}%, density {:.2}, A~* {:.3} → {}",
            100.0 * stats.coverage,
            100.0 * stats.conflict_rate,
            stats.label_density,
            decision.predicted_advantage,
            match decision.strategy {
                ModelingStrategy::MajorityVote => "majority vote is enough",
                ModelingStrategy::GenerativeModel { .. } => "train the generative model",
            }
        );
    }

    // Per-LF diagnostics on the dev set — what a user reads before
    // deciding which LF to refine next.
    println!("\nper-LF dev diagnostics (first 12 LFs):");
    let lambda_dev = LfExecutor::new().apply(&task.lfs, &task.corpus, &dev_ids);
    let stats = matrix_stats(&lambda_dev);
    let accs = empirical_accuracies(&lambda_dev, &dev_gold);
    println!("{:26} {:>6} {:>8} {:>8} {:>8}", "LF", "votes", "coverage", "conflict", "dev acc");
    for (j, lf) in task.lfs.iter().enumerate().take(12) {
        println!(
            "{:26} {:>6} {:>7.1}% {:>7.1}% {:>8}",
            lf.name(),
            stats.lfs[j].num_votes,
            100.0 * stats.lfs[j].coverage,
            100.0 * stats.lfs[j].conflict,
            accs[j].map_or("-".to_string(), |a| format!("{:.0}%", 100.0 * a)),
        );
    }
}
