//! The labeling service, end to end: durable snapshots + the concurrent
//! TCP server — and the client/driver the CI serve-smoke job uses.
//!
//! ```text
//! cargo run --release --example serving                  in-process demo
//! cargo run --release --example serving -- server \
//!     --port 7341 [--snapshot P] [--resume P] \
//!     [--auto-snapshot-ms N] [--rows N] [--lf "<spec>"]… \
//!     [--wal P] [--follow HOST:PORT]                      long-running server
//! cargo run --release --example serving -- client --port 7341 MARGINAL 0:1
//! cargo run --release --example serving -- hammer \
//!     --port 7341 --clients 8 --queries 150               torn-read check
//! cargo run --release --example serving -- bincheck \
//!     --port 7341 --batch 8              binary-vs-text equivalence check
//! cargo run --release --example serving -- verify-snap path/to.snap
//! ```
//!
//! The server mode builds a deterministic demo corpus and a suite of
//! wire-expressible LFs (overridable with repeated `--lf`), so a
//! `--resume` run can reconstruct behaviorally identical LFs and attach
//! them to the snapshot's fingerprints — verified against each spec's
//! content tag before serving, so a wrong spec fails loudly instead of
//! silently serving stale cached votes.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use snorkel::context::Corpus;
use snorkel::incr::{Fingerprint, IncrementalSession, SessionConfig};
use snorkel::lf::BoxedLf;
use snorkel::nlp::tokenize;
use snorkel::serve::{
    BinReply, Client, FrameClient, LabelServer, LfSpec, ReplMark, ServeConfig, Snapshot, VoteRow,
};

const DEFAULT_SPECS: [&str; 3] = [
    "lf_causes KEYWORD 1 -1 causes,caused",
    "lf_treats KEYWORD -1 1 treats,treated",
    "lf_worsens KEYWORD 1 -1 worsens,aggravates",
];

/// Always train the generative model: a served posterior should reflect
/// fitted LF accuracies, and the torn-read hammer needs an LF edit to
/// move the posterior it queries. Distillation is on, so the server
/// also answers `PREDICT`/`PREDICT_TEXT` for zero-coverage candidates.
fn gm_config() -> SessionConfig {
    let mut distill = snorkel::core::pipeline::DiscTrainerConfig::with_dim(1 << 14);
    // Demo-corpus scale: more epochs / smaller batches than the
    // deployment defaults so the linear model converges.
    distill.train.epochs = 15;
    distill.train.batch_size = 64;
    SessionConfig {
        force_strategy: Some(
            snorkel::core::optimizer::ModelingStrategy::GenerativeModel {
                epsilon: 0.0,
                correlations: Vec::new(),
                strengths: Vec::new(),
            },
        ),
        distill: Some(distill),
        ..SessionConfig::default()
    }
}

fn demo_corpus(rows: usize) -> Corpus {
    let mut corpus = Corpus::new();
    let doc = corpus.add_document("serving-demo");
    for i in 0..rows {
        let verb = match i % 6 {
            0 | 1 => "causes",
            2 => "treats",
            3 => "worsens",
            4 => "caused",
            _ => "mentions",
        };
        let text = format!("chem{} {} disease{}", i % 11, verb, i % 7);
        let s = corpus.add_sentence(doc, &text, tokenize(&text));
        let a = corpus.add_span(s, 0, 1, Some("Chemical"));
        let b = corpus.add_span(s, 2, 3, Some("Disease"));
        corpus.add_candidate(vec![a, b]);
    }
    corpus
}

fn parse_specs(raw: &[String]) -> Vec<LfSpec> {
    let sources: Vec<String> = if raw.is_empty() {
        DEFAULT_SPECS.iter().map(|s| s.to_string()).collect()
    } else {
        raw.to_vec()
    };
    sources
        .iter()
        .map(|s| LfSpec::parse(s).unwrap_or_else(|e| die(&format!("bad --lf {s:?}: {e}"))))
        .collect()
}

fn fresh_session(rows: usize, specs: &[LfSpec]) -> IncrementalSession {
    let corpus = demo_corpus(rows);
    let ids: Vec<_> = corpus.candidate_ids().collect();
    let mut session = IncrementalSession::new(corpus, gm_config());
    session.ingest_candidates(&ids);
    for spec in specs {
        let lf = spec.build().unwrap_or_else(|e| die(&e));
        session.add_lf_tagged(lf, spec.content_tag());
    }
    let (_, report) = session.refresh();
    let disc = session.distill();
    eprintln!(
        "cold start: {} rows × {} LFs, {} LF invocations, strategy {:?}, \
         distilled on {} rows",
        session.num_candidates(),
        session.num_lfs(),
        report.lf_invocations,
        report.strategy,
        disc.map_or(0, |d| d.rows_trained),
    );
    session
}

/// Resume from a snapshot: reconstruct each LF from its spec and verify
/// the spec's content tag against the frozen fingerprint before trusting
/// the cached columns. Also returns the snapshot's replication mark (if
/// any) so a `--wal`/`--follow` server resumes from the right LSN.
fn resumed_session(
    path: &std::path::Path,
    rows: usize,
    specs: &[LfSpec],
) -> (IncrementalSession, Option<ReplMark>) {
    let snapshot = Snapshot::read_file(path)
        .unwrap_or_else(|e| die(&format!("cannot load snapshot {}: {e}", path.display())));
    for (name, frozen_fp) in &snapshot.session.suite {
        let Some(spec) = specs.iter().find(|s| s.name() == name) else {
            die(&format!(
                "snapshot suite has LF {name:?} but no --lf spec matches"
            ));
        };
        let spec_fp = Fingerprint::of(spec.name(), spec.content_tag());
        if spec_fp != *frozen_fp {
            die(&format!(
                "spec for {name:?} does not match the snapshot's version \
                 (would serve stale cached votes) — pass the spec the \
                 snapshot was taken with"
            ));
        }
    }
    let lfs: Vec<BoxedLf> = snapshot
        .session
        .suite
        .iter()
        .map(|(name, _)| {
            let spec = specs.iter().find(|s| s.name() == name).expect("checked");
            spec.build().unwrap_or_else(|e| die(&e))
        })
        .collect();
    let mark = snapshot.repl;
    let session = IncrementalSession::thaw(demo_corpus(rows), gm_config(), snapshot.session, lfs)
        .unwrap_or_else(|e| die(&format!("thaw failed: {e}")));
    eprintln!(
        "warm start from {}: {} rows × {} LFs, 0 LF invocations{}",
        path.display(),
        session.num_candidates(),
        session.num_lfs(),
        mark.as_ref().map_or(String::new(), |m| format!(
            ", repl mark lsn={} gen={}",
            m.applied_lsn, m.generation
        )),
    );
    (session, mark)
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

struct Args {
    flags: std::collections::HashMap<String, Vec<String>>,
    positional: Vec<String>,
}

fn parse_args(args: &[String]) -> Args {
    let mut flags: std::collections::HashMap<String, Vec<String>> = Default::default();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => die(&format!("--{name} needs a value")),
            };
            flags.entry(name.to_string()).or_default().push(value);
            i += 2;
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    Args { flags, positional }
}

impl Args {
    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .get(name)
            .and_then(|v| v.first())
            .map(String::as_str)
    }

    fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .map(|v| v.parse().unwrap_or_else(|_| die(&format!("bad --{name}"))))
            .unwrap_or(default)
    }
}

fn addr_of(args: &Args) -> SocketAddr {
    let port = args.get_usize("port", 7341);
    format!("127.0.0.1:{port}").parse().expect("addr")
}

fn run_server(args: &Args) -> ! {
    let rows = args.get_usize("rows", 5000);
    let specs = parse_specs(args.flags.get("lf").map(Vec::as_slice).unwrap_or(&[]));
    let (session, repl_mark) = match args.get("resume") {
        Some(path) => resumed_session(&PathBuf::from(path), rows, &specs),
        None => (fresh_session(rows, &specs), None),
    };
    let config = ServeConfig {
        addr: format!("127.0.0.1:{}", args.get_usize("port", 7341)),
        snapshot_path: args.get("snapshot").map(PathBuf::from),
        auto_snapshot: args
            .flags
            .get("auto-snapshot-ms")
            .map(|_| Duration::from_millis(args.get_usize("auto-snapshot-ms", 5000) as u64)),
        wal_path: args.get("wal").map(PathBuf::from),
        follow: args.get("follow").map(str::to_string),
        repl_mark,
        ..ServeConfig::default()
    };
    let has_snapshot_path = config.snapshot_path.is_some();
    let server =
        LabelServer::start(session, config).unwrap_or_else(|e| die(&format!("bind failed: {e}")));
    println!("LISTENING {}", server.addr());
    match server.wait() {
        Ok(()) => {
            eprintln!(
                "server stopped cleanly{}",
                if has_snapshot_path {
                    " (final snapshot written)"
                } else {
                    ""
                }
            );
            std::process::exit(0);
        }
        Err(e) => die(&format!("shutdown snapshot failed: {e}")),
    }
}

fn run_client(args: &Args) -> ! {
    let line = args.positional.join(" ");
    if line.is_empty() {
        die("client needs a request line, e.g. client --port 7341 MARGINAL 0:1");
    }
    let mut client =
        Client::connect(addr_of(args)).unwrap_or_else(|e| die(&format!("connect: {e}")));
    // request_lines handles both framings: METRICS/SLOWLOG replies carry
    // a `lines=<k>` payload, every other verb comes back header-only.
    let (response, payload) = client
        .request_lines(&line)
        .unwrap_or_else(|e| die(&format!("request: {e}")));
    println!("{response}");
    for l in &payload {
        println!("{l}");
    }
    std::process::exit(if response.starts_with("OK") { 0 } else { 2 });
}

fn field<'a>(response: &'a str, key: &str) -> &'a str {
    response
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| die(&format!("no {key}= in {response:?}")))
}

/// N concurrent clients hammer one MARGINAL signature while an LF edit
/// lands mid-stream; every response must match the pre- or post-edit
/// posterior for its generation. The edit is reverted afterwards (a
/// cache hit), leaving the server state as found.
fn run_hammer(args: &Args) -> ! {
    let addr = addr_of(args);
    let clients = args.get_usize("clients", 8);
    let queries = args.get_usize("queries", 150);
    let sig = "MARGINAL 0:1,1:-1";
    let edit = "REFRESH EDIT lf_causes KEYWORD 1 -1 causes,mentions";
    let revert = format!("REFRESH EDIT {}", DEFAULT_SPECS[0]);

    let mut control = Client::connect(addr).unwrap_or_else(|e| die(&format!("connect: {e}")));
    let pre = control.request(sig).expect("pre query");
    let (pre_gen, pre_p) = (field(&pre, "gen").to_string(), field(&pre, "p").to_string());

    let edit_done = Arc::new(AtomicUsize::new(0));
    let responses: Vec<Vec<String>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..clients {
            let edit_done = Arc::clone(&edit_done);
            handles.push(scope.spawn(move || {
                let mut client =
                    Client::connect(addr).unwrap_or_else(|e| die(&format!("connect: {e}")));
                let mut out = Vec::with_capacity(queries + 1);
                while out.len() < queries || edit_done.load(Ordering::SeqCst) == 0 {
                    out.push(client.request(sig).expect("query"));
                }
                out.push(client.request(sig).expect("post-edit query"));
                out
            }));
        }
        std::thread::sleep(Duration::from_millis(30));
        let edited = control.request(edit).expect("edit");
        assert!(edited.starts_with("OK "), "edit failed: {edited}");
        edit_done.store(1, Ordering::SeqCst);
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    let post = control.request(sig).expect("post query");
    let (post_gen, post_p) = (
        field(&post, "gen").to_string(),
        field(&post, "p").to_string(),
    );
    let mut saw_pre = 0usize;
    let mut saw_post = 0usize;
    for response in responses.iter().flatten() {
        let (gen, p) = (field(response, "gen"), field(response, "p"));
        if gen == pre_gen && p == pre_p {
            saw_pre += 1;
        } else if gen == post_gen && p == post_p {
            saw_post += 1;
        } else {
            die(&format!(
                "torn read: {response:?} matches neither generation \
                 {pre_gen} ({pre_p}) nor {post_gen} ({post_p})"
            ));
        }
    }
    let reverted = control.request(&revert).expect("revert");
    assert!(reverted.starts_with("OK "), "revert failed: {reverted}");
    assert_eq!(
        field(&reverted, "lf_invocations"),
        "0",
        "reverting to the original spec must be a cache hit"
    );
    println!(
        "hammer OK: {} queries ({saw_pre} pre-edit, {saw_post} post-edit), no torn reads",
        saw_pre + saw_post
    );
    std::process::exit(0);
}

/// Cross-plane equivalence, cross-process: send one binary `OP_MARGINAL`
/// frame carrying `--batch` rows, then the same rows as individual text
/// `MARGINAL` lines, and require bit-identical posteriors. Text replies
/// use shortest-round-trip float formatting, so parsing them back yields
/// the exact f64 the server computed — any drift between the planes
/// (or a batch that doesn't hold one consistent generation) fails here.
fn run_bincheck(args: &Args) -> ! {
    let addr = addr_of(args);
    let batch = args.get_usize("batch", 8).max(1);
    const SIGS: [(&[u32], &[i8]); 6] = [
        (&[0], &[1]),
        (&[1], &[-1]),
        (&[2], &[1]),
        (&[0, 1], &[1, -1]),
        (&[1, 2], &[-1, 1]),
        (&[0, 1, 2], &[1, -1, 1]),
    ];
    let rows: Vec<VoteRow> = (0..batch)
        .map(|i| {
            let (cols, votes) = SIGS[i % SIGS.len()];
            (cols.to_vec(), votes.to_vec())
        })
        .collect();

    let mut frames =
        FrameClient::connect(addr).unwrap_or_else(|e| die(&format!("frame connect: {e}")));
    let (bin_gen, bin_probs) = match frames.marginal(&rows) {
        Ok(BinReply::Marginal { gen, probs }) => (gen, probs),
        Ok(BinReply::Err { message }) => die(&format!("binary batch refused: {message}")),
        Ok(other) => die(&format!("unexpected binary reply: {other:?}")),
        Err(e) => die(&format!("binary round trip: {e}")),
    };
    if bin_probs.len() != rows.len() {
        die(&format!(
            "binary batch returned {} rows for {} requests",
            bin_probs.len(),
            rows.len()
        ));
    }

    let mut text = Client::connect(addr).unwrap_or_else(|e| die(&format!("text connect: {e}")));
    for (i, ((cols, votes), bin_row)) in rows.iter().zip(&bin_probs).enumerate() {
        let entries: Vec<String> = cols
            .iter()
            .zip(votes)
            .map(|(c, v)| format!("{c}:{v}"))
            .collect();
        let reply = text
            .request(&format!("MARGINAL {}", entries.join(",")))
            .unwrap_or_else(|e| die(&format!("text round trip: {e}")));
        if !reply.starts_with("OK ") {
            die(&format!("text plane refused row {i}: {reply}"));
        }
        let text_gen: u64 = field(&reply, "gen")
            .parse()
            .unwrap_or_else(|_| die(&format!("bad gen in {reply:?}")));
        if text_gen != bin_gen {
            die(&format!(
                "generation skew: binary batch gen={bin_gen}, text row {i} gen={text_gen}"
            ));
        }
        let text_row: Vec<f64> = field(&reply, "p")
            .split(',')
            .map(|p| {
                p.parse()
                    .unwrap_or_else(|_| die(&format!("bad p in {reply:?}")))
            })
            .collect();
        let same_bits = text_row.len() == bin_row.len()
            && text_row
                .iter()
                .zip(bin_row)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !same_bits {
            die(&format!(
                "posterior mismatch on row {i}: binary {bin_row:?} vs text {text_row:?}"
            ));
        }
    }
    println!("binary batch OK: {batch} rows bit-identical across planes, gen={bin_gen}");
    std::process::exit(0);
}

fn run_verify_snap(args: &Args) -> ! {
    let Some(path) = args.positional.first() else {
        die("verify-snap needs a path");
    };
    match Snapshot::read_file(&PathBuf::from(path)) {
        Ok(snapshot) => {
            let s = &snapshot.session;
            println!(
                "snapshot OK: {} candidates, {} LFs, matrix={}, model={}, plan={}, \
                 disc={}, {} cached columns",
                s.candidates.len(),
                s.suite.len(),
                s.lambda.is_some(),
                s.model.is_some(),
                s.plan.is_some(),
                s.disc.is_some(),
                s.cache.columns.len(),
            );
            std::process::exit(0);
        }
        Err(e) => die(&format!("snapshot invalid: {e}")),
    }
}

/// In-process demo: serve, query, snapshot, kill, resume warm.
fn run_demo() {
    let dir = std::env::temp_dir().join(format!("snorkel-serving-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap_path = dir.join("demo.snap");
    let specs = parse_specs(&[]);

    println!("== first life ==");
    let session = fresh_session(2000, &specs);
    let server = LabelServer::start(
        session,
        ServeConfig {
            snapshot_path: Some(snap_path.clone()),
            auto_snapshot: Some(Duration::from_secs(30)),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    for req in [
        "STATS",
        "MARGINAL 0:1,1:-1",
        "MARGINAL 0:1,2:1",
        "APPLY 0 1 2 3 chem3 causes disease5",
        // The distilled model answers for candidates outside Λ.
        "PREDICT btw=cause u=chem3",
        "PREDICT_TEXT 0 1 2 3 chemX causes diseaseY",
        "REFRESH EDIT lf_treats KEYWORD -1 1 treats,cures",
        "MARGINAL 0:1,1:-1",
        "PREDICT btw=cause u=chem3",
    ] {
        println!("> {req}");
        println!("< {}", client.request(req).expect("request"));
    }
    // Multi-line verbs: a Prometheus scrape and the slowest requests.
    let (header, lines) = client.request_lines("METRICS").expect("metrics");
    println!("> METRICS\n< {header} (showing 6 of {} lines)", lines.len());
    for l in lines.iter().take(6) {
        println!("  {l}");
    }
    let (header, lines) = client.request_lines("SLOWLOG 3").expect("slowlog");
    println!("> SLOWLOG 3\n< {header}");
    for l in &lines {
        println!("  {l}");
    }
    for req in ["SNAPSHOT", "SHUTDOWN"] {
        println!("> {req}");
        println!("< {}", client.request(req).expect("request"));
    }
    server.wait().expect("clean shutdown");
    drop(client);

    println!("== second life (resumed from {}) ==", snap_path.display());
    // The suite at snapshot time had an edited lf_treats — resume with
    // exactly that spec set.
    let resumed_specs: Vec<String> = vec![
        DEFAULT_SPECS[0].into(),
        "lf_treats KEYWORD -1 1 treats,cures".into(),
        DEFAULT_SPECS[2].into(),
    ];
    let (session, _) = resumed_session(&snap_path, 2000, &parse_specs(&resumed_specs));
    let server = LabelServer::start(session, ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    for req in [
        "MARGINAL 0:1,1:-1",
        "PREDICT btw=cause u=chem3",
        "REFRESH",
        "STATS",
        "SHUTDOWN",
    ] {
        println!("> {req}");
        println!("< {}", client.request(req).expect("request"));
    }
    server.wait().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
    println!("demo complete: the resumed REFRESH reported lf_invocations=0 — warm start.");
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        None => run_demo(),
        Some("server") => run_server(&parse_args(&argv[1..])),
        Some("client") => run_client(&parse_args(&argv[1..])),
        Some("hammer") => run_hammer(&parse_args(&argv[1..])),
        Some("bincheck") => run_bincheck(&parse_args(&argv[1..])),
        Some("verify-snap") => run_verify_snap(&parse_args(&argv[1..])),
        Some(other) => die(&format!(
            "unknown mode {other:?} (server | client | hammer | bincheck | verify-snap, \
             or no args for the demo)"
        )),
    }
}
